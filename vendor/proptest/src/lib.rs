//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate, implementing exactly the API subset this workspace uses.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the real proptest cannot be resolved. This crate keeps the
//! property-test sources compiling and *meaningful*: strategies sample
//! deterministically from a per-test seeded RNG, every `proptest!` test runs
//! `ProptestConfig::cases` random cases, and `prop_assert!` failures report
//! the failing inputs. What it does **not** do is shrink failing cases or
//! persist regression files — acceptable trade-offs for an offline CI.
//!
//! Determinism: the RNG seed for each case is derived from the test's module
//! path, name, and case index, so failures are reproducible run-to-run and
//! machine-to-machine.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64 — tiny, high-quality-enough generator for test-case sampling.
/// Self-contained so this crate has zero dependencies (it cannot depend on
/// `bce-sim` without creating a cycle through dev-dependencies).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for test sampling.
        self.next_u64() % n
    }
}

/// FNV-1a hash of a string, used to derive per-test seeds.
#[doc(hidden)]
pub fn __fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each `proptest!` test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::*;

    /// A source of random values of one type. Unlike real proptest there is
    /// no value tree or shrinking — `sample` draws a concrete value directly.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(move |rng| self.sample(rng)))
        }
    }

    /// Type-erased strategy (the `S.boxed()` form real proptest provides).
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    // --- numeric ranges ---------------------------------------------------

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    signed_range_strategy!(i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.uniform() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.uniform() * (hi - lo)
        }
    }

    // --- tuples -----------------------------------------------------------

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

    // --- fixed-size arrays ------------------------------------------------

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|i| self[i].sample(rng))
        }
    }

    // --- string patterns --------------------------------------------------

    /// Real proptest interprets `&str` strategies as regexes. This stub
    /// supports the single form the workspace uses — `\PC{lo,hi}`, i.e. a
    /// string of `lo..=hi` arbitrary printable characters — and rejects
    /// anything else loudly rather than silently generating wrong data.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_printable_pattern(self).unwrap_or_else(|| {
                panic!(
                    "offline proptest stub only supports \\PC{{lo,hi}} string \
                     patterns, got {self:?}"
                )
            });
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            // Mix of ASCII, Latin-1, CJK, and astral-plane characters so the
            // consumer sees genuinely multi-byte "printable" input.
            (0..n)
                .map(|_| match rng.below(8) {
                    0..=4 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
                    5 => char::from_u32(0xA1 + rng.below(0xFF - 0xA1) as u32).unwrap(),
                    6 => char::from_u32(0x4E00 + rng.below(0x100) as u32).unwrap(),
                    _ => char::from_u32(0x1F300 + rng.below(0x100) as u32).unwrap(),
                })
                .collect()
        }
    }

    fn parse_printable_pattern(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_prefix("\\PC{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

// ---------------------------------------------------------------------------
// Input formatting for failure reports (autoref specialization so values
// without Debug still work)
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub mod __fmt {
    pub struct Wrap<'a, T>(pub &'a T);

    pub trait ViaDebug {
        fn __fmt_input(&self) -> String;
    }

    impl<T: std::fmt::Debug> ViaDebug for Wrap<'_, T> {
        fn __fmt_input(&self) -> String {
            format!("{:?}", self.0)
        }
    }

    pub trait ViaFallback {
        fn __fmt_input(&self) -> String;
    }

    impl<T> ViaFallback for &Wrap<'_, T> {
        fn __fmt_input(&self) -> String {
            format!("<{}>", std::any::type_name::<T>())
        }
    }
}

// ---------------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------------

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range; avoids NaN/inf which
            // the real `any::<f64>()` also excludes by default.
            let mag = rng.uniform();
            let scale = 10f64.powi((rng.below(17) as i32) - 8);
            if rng.next_u64() & 1 == 1 {
                mag * scale
            } else {
                -mag * scale
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Collections & option
// ---------------------------------------------------------------------------

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `Some` three times out of four, mirroring real proptest's default
    /// weighting toward interesting (non-`None`) values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Fails the enclosing proptest case, reporting the condition and inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                ::std::format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (The real crate resamples; skipping is equivalent for non-shrinking runs.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}` ({})\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                ::std::format!($($fmt)+),
                l
            ));
        }
    }};
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `fn name()` that samples and runs `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed_base = $crate::__fnv(::std::concat!(
                ::std::module_path!(), "::", ::std::stringify!($name)
            ));
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::new(
                    seed_base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut __inputs = ::std::string::String::new();
                $(
                    let __sample = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    {
                        #[allow(unused_imports)]
                        use $crate::__fmt::{ViaDebug as _, ViaFallback as _};
                        __inputs.push_str("\n  ");
                        __inputs.push_str(&(&$crate::__fmt::Wrap(&__sample)).__fmt_input());
                    }
                    let $arg = __sample;
                )+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(msg) = __result {
                    ::std::panic!(
                        "proptest `{}` failed at case {}/{}: {}\ninputs: {}",
                        ::std::stringify!($name), case, config.cases, msg, __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (1.5f64..2.5).sample(&mut rng);
            assert!((1.5..2.5).contains(&w));
            let x = (5usize..=5).sample(&mut rng);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn vec_sizes_respect_spec() {
        let mut rng = crate::TestRng::new(9);
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..10, 4).sample(&mut rng);
            assert_eq!(v.len(), 4);
            let w = crate::collection::vec(0u32..10, 2..6).sample(&mut rng);
            assert!((2..6).contains(&w.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32 })]

        #[test]
        fn macro_roundtrip(x in 0u64..1000, flip in any::<bool>()) {
            prop_assert!(x < 1000);
            prop_assert_eq!(flip, flip);
        }

        #[test]
        fn oneof_yields_listed_values(c in prop_oneof![Just('a'), Just('b')]) {
            prop_assert!(c == 'a' || c == 'b');
        }
    }
}

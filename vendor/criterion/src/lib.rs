//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness, covering the API subset this workspace's benches use.
//!
//! The build environment has no crates registry, so the real criterion cannot
//! be resolved. This crate keeps `cargo bench` working and useful: each
//! benchmark is timed with `std::time::Instant` over a few batches and the
//! per-iteration mean is printed. There is no warm-up analysis, outlier
//! rejection, or HTML report — just honest wall-clock numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target number of timed batches per benchmark (each batch runs enough
/// iterations to take a measurable amount of time).
const DEFAULT_SAMPLES: usize = 10;

/// Soft cap on total time spent per benchmark.
const TIME_BUDGET: Duration = Duration::from_secs(3);

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: DEFAULT_SAMPLES }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name: name.into(), sample_size, throughput: None }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Handed to each benchmark closure; records per-iteration timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F>(label: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: find an iteration count that takes ~10ms.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let budget_start = Instant::now();
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut taken = 0usize;
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
        taken += 1;
        if budget_start.elapsed() > TIME_BUDGET {
            break;
        }
    }

    let mean_ns = total.as_nanos() as f64 / (taken as u64 * iters) as f64;
    let best_ns = best.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (mean_ns * 1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} MiB/s", n as f64 / (mean_ns * 1e-9) / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("{label:<48} mean {:>12} best {:>12}{rate}", format_ns(mean_ns), format_ns(best_ns),);
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Re-export so `criterion::black_box` keeps working like the real crate.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}

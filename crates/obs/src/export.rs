//! JSONL trace export and (re-)import.
//!
//! Each [`TraceRecord`] becomes one flat JSON object per line:
//!
//! ```json
//! {"seq":4,"t":3600,"component":"fetch","kind":"rpc_reply","project":1,"cpu_secs":8640,"gpu_secs":0,"jobs":3}
//! ```
//!
//! The schema is intentionally flat — every variant's fields appear as
//! top-level keys next to `seq`/`t`/`component`/`kind` — so downstream
//! tools (jq, a spreadsheet, the CI smoke check) need no nested-path
//! handling. The workspace has no serde; the writer and the parser here
//! are hand-rolled against exactly this schema, and the round-trip is
//! property-tested (`tests/roundtrip.rs`).

use crate::trace::{TraceEvent, TraceRecord};
use bce_types::{JobId, ProjectId, SimTime};
use std::fmt::Write as _;

/// Format an `f64` as a JSON number. Rust's `Display` already produces
/// the shortest representation that round-trips, which is what we want
/// for byte-stable output; non-finite values (never produced by the
/// emulator) degrade to `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn push_ids(s: &mut String, key: &str, ids: &[JobId]) {
    let _ = write!(s, "\"{key}\":[");
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}", id.0);
    }
    s.push(']');
}

/// Serialize one record as a single JSON line (no trailing newline).
pub fn record_to_json(r: &TraceRecord) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"seq\":{},\"t\":{},\"component\":\"{}\",\"kind\":\"{}\",",
        r.seq,
        json_f64(r.t.secs()),
        r.event.component(),
        r.event.kind()
    );
    match &r.event {
        TraceEvent::Scheduled { started, preempted } => {
            push_ids(&mut s, "started", started);
            s.push(',');
            push_ids(&mut s, "preempted", preempted);
        }
        TraceEvent::JobFinished { job, project, met_deadline } => {
            let _ = write!(
                s,
                "\"job\":{},\"project\":{},\"met_deadline\":{}",
                job.0, project.0, met_deadline
            );
        }
        TraceEvent::JobErrored { job, project } => {
            let _ = write!(s, "\"job\":{},\"project\":{}", job.0, project.0);
        }
        TraceEvent::RpcReply { project, cpu_secs, gpu_secs, jobs } => {
            let _ = write!(
                s,
                "\"project\":{},\"cpu_secs\":{},\"gpu_secs\":{},\"jobs\":{}",
                project.0,
                json_f64(*cpu_secs),
                json_f64(*gpu_secs),
                jobs
            );
        }
        TraceEvent::RpcDown { project } | TraceEvent::RpcLost { project } => {
            let _ = write!(s, "\"project\":{}", project.0);
        }
        TraceEvent::FetchDeferred { project, until } => {
            let _ = write!(s, "\"project\":{},\"until\":{}", project.0, json_f64(until.secs()));
        }
        TraceEvent::AvailChanged { can_compute, can_gpu, net_up } => {
            let _ = write!(
                s,
                "\"can_compute\":{can_compute},\"can_gpu\":{can_gpu},\"net_up\":{net_up}"
            );
        }
        TraceEvent::TransferFailed { job, upload } => {
            let _ = write!(s, "\"job\":{},\"upload\":{}", job.0, upload);
        }
        TraceEvent::Crashed { tasks_rolled_back, exec_secs_lost, transfers_restarted } => {
            let _ = write!(
                s,
                "\"tasks_rolled_back\":{},\"exec_secs_lost\":{},\"transfers_restarted\":{}",
                tasks_rolled_back,
                json_f64(*exec_secs_lost),
                transfers_restarted
            );
        }
        TraceEvent::Recovered { secs } => {
            let _ = write!(s, "\"secs\":{}", json_f64(*secs));
        }
    }
    s.push('}');
    s
}

/// Serialize a whole run as JSONL (one record per line, trailing newline
/// after the last line iff any records exist).
pub fn to_jsonl<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&record_to_json(r));
        out.push('\n');
    }
    out
}

/// Error from [`parse_record`] / [`parse_jsonl`], with enough context to
/// point at the offending line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(f64),
    Bool(bool),
    Str(String),
    Arr(Vec<f64>),
}

/// Minimal parser for the flat objects this module writes: string keys;
/// number, bool, string or number-array values. Not a general JSON
/// parser and not meant to be one.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Val)>, String> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && (bytes[*i] as char).is_whitespace() {
            *i += 1;
        }
    };
    let expect = |i: &mut usize, c: u8| -> Result<(), String> {
        if *i < bytes.len() && bytes[*i] == c {
            *i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, i))
        }
    };
    fn parse_string(bytes: &[u8], i: &mut usize) -> Result<String, String> {
        if *i >= bytes.len() || bytes[*i] != b'"' {
            return Err(format!("expected string at byte {i}"));
        }
        *i += 1;
        let start = *i;
        while *i < bytes.len() && bytes[*i] != b'"' {
            if bytes[*i] == b'\\' {
                return Err("escape sequences are not part of the trace schema".to_string());
            }
            *i += 1;
        }
        if *i >= bytes.len() {
            return Err("unterminated string".to_string());
        }
        let s = std::str::from_utf8(&bytes[start..*i])
            .map_err(|_| "invalid utf-8 in string".to_string())?
            .to_string();
        *i += 1;
        Ok(s)
    }
    fn parse_number(bytes: &[u8], i: &mut usize) -> Result<f64, String> {
        let start = *i;
        while *i < bytes.len()
            && matches!(bytes[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *i += 1;
        }
        std::str::from_utf8(&bytes[start..*i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    skip_ws(&mut i);
    expect(&mut i, b'{')?;
    skip_ws(&mut i);
    if i < bytes.len() && bytes[i] == b'}' {
        return Ok(out);
    }
    loop {
        skip_ws(&mut i);
        let key = parse_string(bytes, &mut i)?;
        skip_ws(&mut i);
        expect(&mut i, b':')?;
        skip_ws(&mut i);
        let val = match bytes.get(i) {
            Some(b'"') => Val::Str(parse_string(bytes, &mut i)?),
            Some(b't') if line[i..].starts_with("true") => {
                i += 4;
                Val::Bool(true)
            }
            Some(b'f') if line[i..].starts_with("false") => {
                i += 5;
                Val::Bool(false)
            }
            Some(b'n') if line[i..].starts_with("null") => {
                i += 4;
                Val::Num(0.0)
            }
            Some(b'[') => {
                i += 1;
                let mut arr = Vec::new();
                skip_ws(&mut i);
                if i < bytes.len() && bytes[i] == b']' {
                    i += 1;
                } else {
                    loop {
                        skip_ws(&mut i);
                        arr.push(parse_number(bytes, &mut i)?);
                        skip_ws(&mut i);
                        match bytes.get(i) {
                            Some(b',') => i += 1,
                            Some(b']') => {
                                i += 1;
                                break;
                            }
                            _ => return Err(format!("expected ',' or ']' at byte {i}")),
                        }
                    }
                }
                Val::Arr(arr)
            }
            _ => Val::Num(parse_number(bytes, &mut i)?),
        };
        out.push((key, val));
        skip_ws(&mut i);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i += 1;
                break;
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
        }
    }
    skip_ws(&mut i);
    if i != bytes.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(out)
}

struct Fields(Vec<(String, Val)>);

impl Fields {
    fn num(&self, key: &str) -> Result<f64, String> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, Val::Num(v))) => Ok(*v),
            Some(_) => Err(format!("field '{key}' is not a number")),
            None => Err(format!("missing field '{key}'")),
        }
    }
    fn u64(&self, key: &str) -> Result<u64, String> {
        let v = self.num(key)?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("field '{key}' is not a non-negative integer"));
        }
        Ok(v as u64)
    }
    fn boolean(&self, key: &str) -> Result<bool, String> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, Val::Bool(v))) => Ok(*v),
            Some(_) => Err(format!("field '{key}' is not a bool")),
            None => Err(format!("missing field '{key}'")),
        }
    }
    fn str(&self, key: &str) -> Result<&str, String> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, Val::Str(v))) => Ok(v),
            Some(_) => Err(format!("field '{key}' is not a string")),
            None => Err(format!("missing field '{key}'")),
        }
    }
    fn job_ids(&self, key: &str) -> Result<Vec<JobId>, String> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, Val::Arr(v))) => Ok(v.iter().map(|n| JobId(*n as u64)).collect()),
            Some(_) => Err(format!("field '{key}' is not an array")),
            None => Err(format!("missing field '{key}'")),
        }
    }
    fn job(&self, key: &str) -> Result<JobId, String> {
        Ok(JobId(self.u64(key)?))
    }
    fn project(&self, key: &str) -> Result<ProjectId, String> {
        Ok(ProjectId(self.u64(key)? as u32))
    }
}

/// Parse one JSONL line back into a [`TraceRecord`]. `line_no` is used
/// only for error reporting.
pub fn parse_record(line: &str, line_no: usize) -> Result<TraceRecord, TraceParseError> {
    let err = |message: String| TraceParseError { line: line_no, message };
    let f = Fields(parse_flat_object(line).map_err(&err)?);
    let kind = f.str("kind").map_err(&err)?.to_string();
    let event = match kind.as_str() {
        "scheduled" => TraceEvent::Scheduled {
            started: f.job_ids("started").map_err(&err)?,
            preempted: f.job_ids("preempted").map_err(&err)?,
        },
        "job_finished" => TraceEvent::JobFinished {
            job: f.job("job").map_err(&err)?,
            project: f.project("project").map_err(&err)?,
            met_deadline: f.boolean("met_deadline").map_err(&err)?,
        },
        "job_errored" => TraceEvent::JobErrored {
            job: f.job("job").map_err(&err)?,
            project: f.project("project").map_err(&err)?,
        },
        "rpc_reply" => TraceEvent::RpcReply {
            project: f.project("project").map_err(&err)?,
            cpu_secs: f.num("cpu_secs").map_err(&err)?,
            gpu_secs: f.num("gpu_secs").map_err(&err)?,
            jobs: f.u64("jobs").map_err(&err)?,
        },
        "rpc_down" => TraceEvent::RpcDown { project: f.project("project").map_err(&err)? },
        "rpc_lost" => TraceEvent::RpcLost { project: f.project("project").map_err(&err)? },
        "fetch_deferred" => TraceEvent::FetchDeferred {
            project: f.project("project").map_err(&err)?,
            until: SimTime::from_secs(f.num("until").map_err(&err)?),
        },
        "avail_changed" => TraceEvent::AvailChanged {
            can_compute: f.boolean("can_compute").map_err(&err)?,
            can_gpu: f.boolean("can_gpu").map_err(&err)?,
            net_up: f.boolean("net_up").map_err(&err)?,
        },
        "transfer_failed" => TraceEvent::TransferFailed {
            job: f.job("job").map_err(&err)?,
            upload: f.boolean("upload").map_err(&err)?,
        },
        "crashed" => TraceEvent::Crashed {
            tasks_rolled_back: f.u64("tasks_rolled_back").map_err(&err)?,
            exec_secs_lost: f.num("exec_secs_lost").map_err(&err)?,
            transfers_restarted: f.u64("transfers_restarted").map_err(&err)?,
        },
        "recovered" => TraceEvent::Recovered { secs: f.num("secs").map_err(&err)? },
        other => return Err(err(format!("unknown kind '{other}'"))),
    };
    let component = f.str("component").map_err(&err)?;
    if component != event.component() {
        return Err(err(format!(
            "component '{component}' does not match kind '{kind}' (expected '{}')",
            event.component()
        )));
    }
    Ok(TraceRecord {
        seq: f.u64("seq").map_err(&err)?,
        t: SimTime::from_secs(f.num("t").map_err(&err)?),
        event,
    })
}

/// Parse a whole JSONL document (blank lines ignored).
pub fn parse_jsonl(s: &str) -> Result<Vec<TraceRecord>, TraceParseError> {
    s.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_record(l, i + 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips() {
        let r = TraceRecord {
            seq: 7,
            t: SimTime::from_secs(3600.5),
            event: TraceEvent::RpcReply {
                project: ProjectId(2),
                cpu_secs: 8640.25,
                gpu_secs: 0.0,
                jobs: 3,
            },
        };
        let line = record_to_json(&r);
        assert!(line.contains("\"kind\":\"rpc_reply\""));
        assert!(line.contains("\"component\":\"fetch\""));
        let back = parse_record(&line, 1).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn jsonl_round_trips_multiple_records() {
        let records = vec![
            TraceRecord {
                seq: 0,
                t: SimTime::from_secs(0.0),
                event: TraceEvent::Scheduled {
                    started: vec![JobId(1), JobId(2)],
                    preempted: vec![],
                },
            },
            TraceRecord {
                seq: 1,
                t: SimTime::from_secs(10.0),
                event: TraceEvent::AvailChanged { can_compute: true, can_gpu: false, net_up: true },
            },
        ];
        let doc = to_jsonl(&records);
        assert_eq!(doc.lines().count(), 2);
        assert_eq!(parse_jsonl(&doc).unwrap(), records);
    }

    #[test]
    fn parse_rejects_wrong_component() {
        let line = r#"{"seq":0,"t":1,"component":"sched","kind":"rpc_down","project":0}"#;
        let e = parse_record(line, 3).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("does not match"));
    }

    #[test]
    fn parse_rejects_missing_field_and_unknown_kind() {
        assert!(parse_record(r#"{"seq":0,"t":1,"component":"fetch","kind":"rpc_down"}"#, 1)
            .unwrap_err()
            .message
            .contains("missing field 'project'"));
        assert!(parse_record(r#"{"seq":0,"t":1,"component":"x","kind":"nope"}"#, 1)
            .unwrap_err()
            .message
            .contains("unknown kind"));
    }

    #[test]
    fn parse_ignores_blank_lines() {
        let doc =
            "\n{\"seq\":0,\"t\":2,\"component\":\"fault\",\"kind\":\"recovered\",\"secs\":5}\n\n";
        let recs = parse_jsonl(doc).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].event, TraceEvent::Recovered { secs: 5.0 });
    }

    #[test]
    fn json_f64_shortest_round_trip() {
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(86400.0), "86400");
        assert_eq!(json_f64(f64::NAN), "null");
        let v = 1.0 / 3.0;
        assert_eq!(json_f64(v).parse::<f64>().unwrap(), v);
    }
}

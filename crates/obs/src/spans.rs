//! Lightweight profiling spans.
//!
//! Two clocks coexist in this codebase and the profiler keeps them
//! strictly apart:
//!
//! * **Wall-clock spans** ([`Profiler::time`]) measure how long the host
//!   machine spent inside a region — RR simulation, event dispatch, the
//!   streaming executor. They feed `bce bench`'s perf report and are
//!   *never* stored in an [`EmulationResult`]-adjacent structure that a
//!   determinism fingerprint could see.
//! * **Sim-time spans** ([`Profiler::record_sim`]) accumulate simulated
//!   seconds attributed to a region (e.g. how much sim time the host
//!   spent unavailable). They are pure functions of the run and safe to
//!   report anywhere.
//!
//! A disabled profiler never calls `Instant::now()`: [`Profiler::time`]
//! runs the closure straight through, so the only residual cost is one
//! branch.

use std::fmt::Write as _;
use std::time::Instant;

/// Handle to a registered span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

#[derive(Debug, Clone, Default)]
struct SpanSlot {
    name: &'static str,
    count: u64,
    wall_nanos: u128,
    sim_secs: f64,
}

/// Span registry + accumulator. Create one per run (or per bench
/// session) with [`Profiler::enabled`]; the default is disabled.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    enabled: bool,
    spans: Vec<SpanSlot>,
}

impl Profiler {
    /// A profiler that measures nothing and never reads the clock.
    pub fn disabled() -> Self {
        Profiler::default()
    }

    pub fn enabled() -> Self {
        Profiler { enabled: true, spans: Vec::new() }
    }

    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register (or re-find) a span by name.
    pub fn span(&mut self, name: &'static str) -> SpanId {
        if let Some(i) = self.spans.iter().position(|s| s.name == name) {
            return SpanId(i);
        }
        self.spans.push(SpanSlot { name, ..Default::default() });
        SpanId(self.spans.len() - 1)
    }

    /// Run `f`, attributing its wall-clock time to `id` when enabled.
    #[inline]
    pub fn time<R>(&mut self, id: SpanId, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let r = f();
        let slot = &mut self.spans[id.0];
        slot.wall_nanos += start.elapsed().as_nanos();
        slot.count += 1;
        r
    }

    /// Attribute externally-measured wall nanoseconds to `id`.
    pub fn add_wall_nanos(&mut self, id: SpanId, nanos: u128) {
        if self.enabled {
            let slot = &mut self.spans[id.0];
            slot.wall_nanos += nanos;
            slot.count += 1;
        }
    }

    /// Attribute simulated seconds to `id` (deterministic).
    #[inline]
    pub fn record_sim(&mut self, id: SpanId, secs: f64) {
        if self.enabled {
            let slot = &mut self.spans[id.0];
            slot.sim_secs += secs;
            slot.count += 1;
        }
    }

    /// Freeze into a report, spans sorted by name.
    pub fn report(&self) -> ProfileReport {
        let mut spans: Vec<SpanReport> = self
            .spans
            .iter()
            .map(|s| SpanReport {
                name: s.name.to_string(),
                count: s.count,
                wall_ms: s.wall_nanos as f64 / 1e6,
                sim_secs: s.sim_secs,
            })
            .collect();
        spans.sort_by(|a, b| a.name.cmp(&b.name));
        ProfileReport { spans }
    }
}

/// One span's totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanReport {
    pub name: String,
    pub count: u64,
    pub wall_ms: f64,
    pub sim_secs: f64,
}

/// All spans, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    pub spans: Vec<SpanReport>,
}

impl ProfileReport {
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    pub fn span(&self, name: &str) -> Option<&SpanReport> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Aligned human-readable table.
    pub fn render(&self) -> String {
        let width = self.spans.iter().map(|s| s.name.len()).max().unwrap_or(4).max(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:width$}  {:>10}  {:>12}  {:>14}",
            "span", "count", "wall ms", "sim secs"
        );
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{:width$}  {:>10}  {:>12.3}  {:>14.1}",
                s.name, s.count, s.wall_ms, s.sim_secs
            );
        }
        out
    }

    /// Hand-rolled JSON array of span objects.
    pub fn to_json(&self) -> String {
        let mut s = String::from("[");
        for (i, sp) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"count\":{},\"wall_ms\":{},\"sim_secs\":{}}}",
                sp.name,
                sp.count,
                crate::export::json_f64(sp.wall_ms),
                crate::export::json_f64(sp.sim_secs)
            );
        }
        s.push(']');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_runs_closure_without_recording() {
        let mut p = Profiler::disabled();
        let id = p.span("rr");
        let v = p.time(id, || 42);
        assert_eq!(v, 42);
        assert!(p.report().span("rr").unwrap().count == 0);
    }

    #[test]
    fn enabled_profiler_accumulates_counts_and_time() {
        let mut p = Profiler::enabled();
        let id = p.span("dispatch");
        for _ in 0..3 {
            p.time(id, || std::hint::black_box(1 + 1));
        }
        p.record_sim(id, 10.0);
        p.record_sim(id, 2.5);
        let rep = p.report();
        let s = rep.span("dispatch").unwrap();
        assert_eq!(s.count, 5);
        assert!((s.sim_secs - 12.5).abs() < 1e-12);
    }

    #[test]
    fn span_registration_dedups_and_report_sorts() {
        let mut p = Profiler::enabled();
        let b = p.span("b");
        let a = p.span("a");
        assert_eq!(p.span("b"), b);
        p.record_sim(a, 1.0);
        let rep = p.report();
        assert_eq!(rep.spans[0].name, "a");
        assert_eq!(rep.spans[1].name, "b");
        assert!(rep.to_json().starts_with("[{\"name\":\"a\""));
        assert!(rep.render().contains("span"));
    }
}

//! # bce-obs — structured observability for the emulator stack
//!
//! One instrumentation API for every crate in the workspace:
//!
//! * [`trace`] — typed [`TraceEvent`] decision records emitted through
//!   the [`Tracer`] trait. The no-op sink compiles to a branch; string
//!   formatting happens only at export time.
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges and
//!   histograms with per-component scopes, frozen into one deterministic
//!   [`MetricsSnapshot`] schema read by the CLI, bench harness and fleet
//!   study alike.
//! * [`spans`] — a [`Profiler`] of wall-clock and deterministic sim-time
//!   spans feeding `bce bench`'s perf report.
//! * [`export`] — JSONL serialization of traces and the matching parser
//!   (`bce trace` and the CI schema smoke test are built on it).
//!
//! Design rules (see DESIGN.md §Instrumentation):
//!
//! 1. **Disabled means free.** No event construction, no allocation, no
//!    clock read when a sink/profiler is off.
//! 2. **Observation only.** Enabling any instrument must not change a
//!    single scheduling decision or result bit.
//! 3. **Deterministic when enabled.** Trace buffers and metric
//!    snapshots are pure functions of the run; wall-clock time lives
//!    only in profiler spans, which are reported out-of-band.

pub mod export;
pub mod metrics;
pub mod spans;
pub mod trace;

pub use export::{parse_jsonl, parse_record, record_to_json, to_jsonl, TraceParseError};
pub use metrics::{
    CounterId, GaugeId, HistogramId, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use spans::{ProfileReport, Profiler, SpanId, SpanReport};
pub use trace::{NoopTracer, TraceBuffer, TraceEvent, TraceRecord, TraceSink, Tracer};

//! Typed trace events and the [`Tracer`] emission API.
//!
//! A [`TraceEvent`] records one *decision* the emulated client (or the
//! fault layer) made — which tasks were started or preempted, what an RPC
//! returned, why work fetch stayed idle. Events are plain data: no string
//! is formatted at emission time. Rendering happens only at export time
//! ([`crate::export`]) or when a human asks for the decision log.
//!
//! The emission API is designed so that a disabled tracer costs nothing on
//! the hot path:
//!
//! * [`Tracer::emit`] takes a *closure* that builds the event. When the
//!   sink is disabled the closure is never called, so the event — and any
//!   `Vec` it would carry — is never constructed.
//! * [`TraceSink::Noop`] is a fieldless variant; `is_enabled()` is a
//!   discriminant test the optimizer folds away, and the zero-allocation
//!   guarantee is enforced by a counting-allocator test in the `client`
//!   crate's style (see `tests/noop_zero_alloc.rs`).
//!
//! Determinism contract: tracing is *observation only*. An enabled tracer
//! records what happened but must never influence what happens — the
//! emulator consults trace state only to decide whether to build an event.

use bce_types::{JobId, ProjectId, SimTime};

/// One typed decision record. Field names double as the JSONL schema (see
/// [`crate::export`]); variants carry ids and numbers, never strings.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The job scheduler changed the running set.
    Scheduled { started: Vec<JobId>, preempted: Vec<JobId> },
    /// A job completed and its deadline outcome is known.
    JobFinished { job: JobId, project: ProjectId, met_deadline: bool },
    /// A job failed permanently (transfer retry budget exhausted).
    JobErrored { job: JobId, project: ProjectId },
    /// A scheduler RPC round-trip succeeded.
    RpcReply { project: ProjectId, cpu_secs: f64, gpu_secs: f64, jobs: u64 },
    /// A scheduler RPC hit a scheduled server outage.
    RpcDown { project: ProjectId },
    /// A scheduler RPC was lost to an injected transient fault.
    RpcLost { project: ProjectId },
    /// Work fetch saw a shortfall but every candidate project was backed
    /// off; `until` is when the earliest project becomes eligible again.
    FetchDeferred { project: ProjectId, until: SimTime },
    /// Host availability changed.
    AvailChanged { can_compute: bool, can_gpu: bool, net_up: bool },
    /// A file transfer attempt failed (`upload=false` means download).
    TransferFailed { job: JobId, upload: bool },
    /// An injected host crash rolled back running work.
    Crashed { tasks_rolled_back: u64, exec_secs_lost: f64, transfers_restarted: u64 },
    /// All work lost to the last crash has been re-computed.
    Recovered { secs: f64 },
}

impl TraceEvent {
    /// Stable machine name of the variant; the `"kind"` key in JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Scheduled { .. } => "scheduled",
            TraceEvent::JobFinished { .. } => "job_finished",
            TraceEvent::JobErrored { .. } => "job_errored",
            TraceEvent::RpcReply { .. } => "rpc_reply",
            TraceEvent::RpcDown { .. } => "rpc_down",
            TraceEvent::RpcLost { .. } => "rpc_lost",
            TraceEvent::FetchDeferred { .. } => "fetch_deferred",
            TraceEvent::AvailChanged { .. } => "avail_changed",
            TraceEvent::TransferFailed { .. } => "transfer_failed",
            TraceEvent::Crashed { .. } => "crashed",
            TraceEvent::Recovered { .. } => "recovered",
        }
    }

    /// Which subsystem emitted the event; the `"component"` key in JSONL.
    pub fn component(&self) -> &'static str {
        match self {
            TraceEvent::Scheduled { .. } => "sched",
            TraceEvent::JobFinished { .. } | TraceEvent::JobErrored { .. } => "task",
            TraceEvent::RpcReply { .. }
            | TraceEvent::RpcDown { .. }
            | TraceEvent::RpcLost { .. }
            | TraceEvent::FetchDeferred { .. } => "fetch",
            TraceEvent::AvailChanged { .. } => "avail",
            TraceEvent::TransferFailed { .. } => "xfer",
            TraceEvent::Crashed { .. } | TraceEvent::Recovered { .. } => "fault",
        }
    }

    /// All kinds the schema defines, for CLI filter validation.
    pub const KINDS: &'static [&'static str] = &[
        "scheduled",
        "job_finished",
        "job_errored",
        "rpc_reply",
        "rpc_down",
        "rpc_lost",
        "fetch_deferred",
        "avail_changed",
        "transfer_failed",
        "crashed",
        "recovered",
    ];

    /// All components the schema defines, for CLI filter validation.
    pub const COMPONENTS: &'static [&'static str] =
        &["sched", "task", "fetch", "avail", "xfer", "fault"];

    /// Human one-liner for `bce trace` pretty output.
    pub fn describe(&self) -> String {
        match self {
            TraceEvent::Scheduled { started, preempted } => {
                format!("start {started:?}, preempt {preempted:?}")
            }
            TraceEvent::JobFinished { job, project, met_deadline } => {
                let ok = if *met_deadline { "met deadline" } else { "MISSED deadline" };
                format!("{job} of {project} finished ({ok})")
            }
            TraceEvent::JobErrored { job, project } => {
                format!("{job} of {project} errored: transfer retries exhausted")
            }
            TraceEvent::RpcReply { project, cpu_secs, gpu_secs, jobs } => {
                format!("RPC to {project}: asked {cpu_secs:.0}s CPU / {gpu_secs:.0}s GPU, got {jobs} jobs")
            }
            TraceEvent::RpcDown { project } => format!("RPC to {project}: server down"),
            TraceEvent::RpcLost { project } => {
                format!("RPC to {project}: lost in transit (transient)")
            }
            TraceEvent::FetchDeferred { project, until } => {
                format!(
                    "fetch deferred: all projects backed off, {project} eligible at t={:.0}s",
                    until.secs()
                )
            }
            TraceEvent::AvailChanged { can_compute, can_gpu, net_up } => {
                format!("availability: compute={can_compute} gpu={can_gpu} net={net_up}")
            }
            TraceEvent::TransferFailed { job, upload } => {
                let dir = if *upload { "upload" } else { "download" };
                format!("{dir} for {job} failed")
            }
            TraceEvent::Crashed { tasks_rolled_back, exec_secs_lost, transfers_restarted } => {
                format!(
                    "host crash: {tasks_rolled_back} task(s) rolled back ({exec_secs_lost:.0} exec-s lost), {transfers_restarted} transfer(s) restarted"
                )
            }
            TraceEvent::Recovered { secs } => {
                format!("recovered crash-lost work after {secs:.0}s")
            }
        }
    }
}

/// A timestamped, sequence-numbered event as stored in a buffer or a
/// JSONL file. `seq` is assigned by the recording sink and is strictly
/// increasing within a run, so ties at equal sim time keep emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    pub seq: u64,
    pub t: SimTime,
    pub event: TraceEvent,
}

/// Emission side of the API. Implemented by [`TraceSink`]; generic code
/// (and tests) can supply their own recorders.
pub trait Tracer {
    /// Cheap gate; callers may use it to skip *computing inputs* to an
    /// event, not just the event itself.
    fn is_enabled(&self) -> bool;

    /// Record an already-built event. Only called when enabled.
    fn record(&mut self, t: SimTime, event: TraceEvent);

    /// Emit an event lazily: `build` runs only when the sink is enabled,
    /// so a disabled sink never constructs the event.
    #[inline(always)]
    fn emit(&mut self, t: SimTime, build: impl FnOnce() -> TraceEvent)
    where
        Self: Sized,
    {
        if self.is_enabled() {
            self.record(t, build());
        }
    }
}

/// A tracer that records nothing. Exists for generic contexts; the
/// emulator itself uses [`TraceSink::Noop`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn record(&mut self, _t: SimTime, _event: TraceEvent) {}
}

/// Bounded in-memory recorder. When full, further events are counted in
/// `dropped` rather than grown into — population runs must not let a noisy
/// host balloon memory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
    next_seq: u64,
}

impl TraceBuffer {
    /// A buffer that keeps at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer { records: Vec::new(), capacity, dropped: 0, next_seq: 0 }
    }

    /// Like [`TraceBuffer::new`], but recycling a previously drained
    /// record vector (see [`TraceBuffer::into_records`]). The buffer is
    /// cleared and `dropped`/`seq` restart at zero — reuse only recycles
    /// the allocation, never prior state.
    pub fn with_buffer(capacity: usize, mut records: Vec<TraceRecord>) -> Self {
        records.clear();
        TraceBuffer { records, capacity, dropped: 0, next_seq: 0 }
    }

    /// Recorded events in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Events discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events offered to the buffer (recorded + dropped).
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Surrender the backing vector for reuse. The contract mirrors
    /// `MsgLog::into_entries`: the caller owns the records; handing the
    /// (cleared) vector back through [`TraceBuffer::with_buffer`] recycles
    /// the allocation for the next run.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl Tracer for TraceBuffer {
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&mut self, t: SimTime, event: TraceEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.records.len() < self.capacity {
            self.records.push(TraceRecord { seq, t, event });
        } else {
            self.dropped += 1;
        }
    }
}

/// The sink the emulator threads through a run: either off (the default,
/// provably allocation-free) or an owned bounded buffer.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum TraceSink {
    #[default]
    Noop,
    Buffer(TraceBuffer),
}

impl TraceSink {
    /// A recording sink with the given capacity (0 yields `Noop`).
    pub fn buffered(capacity: usize) -> Self {
        if capacity == 0 {
            TraceSink::Noop
        } else {
            TraceSink::Buffer(TraceBuffer::new(capacity))
        }
    }

    /// Extract the buffer, leaving `Noop` behind. Empty buffer if the
    /// sink never recorded.
    pub fn take_buffer(&mut self) -> TraceBuffer {
        match std::mem::take(self) {
            TraceSink::Noop => TraceBuffer::default(),
            TraceSink::Buffer(b) => b,
        }
    }
}

impl Tracer for TraceSink {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        matches!(self, TraceSink::Buffer(_))
    }

    #[inline]
    fn record(&mut self, t: SimTime, event: TraceEvent) {
        if let TraceSink::Buffer(b) = self {
            b.record(t, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::JobFinished { job: JobId(i), project: ProjectId(0), met_deadline: true }
    }

    #[test]
    fn buffer_records_in_order_with_seq() {
        let mut b = TraceBuffer::new(8);
        for i in 0..3 {
            b.emit(SimTime::from_secs(i as f64), || ev(i));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.records()[2].seq, 2);
        assert_eq!(b.records()[2].event, ev(2));
        assert_eq!(b.dropped(), 0);
        assert_eq!(b.emitted(), 3);
    }

    #[test]
    fn buffer_bounds_and_counts_drops() {
        let mut b = TraceBuffer::new(2);
        for i in 0..5 {
            b.record(SimTime::from_secs(0.0), ev(i));
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 3);
        assert_eq!(b.emitted(), 5);
    }

    #[test]
    fn with_buffer_resets_state_and_reuses_allocation() {
        let mut b = TraceBuffer::new(4);
        for i in 0..9 {
            b.record(SimTime::from_secs(0.0), ev(i));
        }
        assert!(b.dropped() > 0);
        let recycled = b.into_records();
        let cap = recycled.capacity();
        let b2 = TraceBuffer::with_buffer(4, recycled);
        assert_eq!(b2.len(), 0);
        assert_eq!(b2.dropped(), 0);
        assert_eq!(b2.emitted(), 0);
        assert_eq!(b2.records.capacity(), cap);
    }

    #[test]
    fn noop_sink_never_builds_the_event() {
        let mut sink = TraceSink::Noop;
        let mut built = false;
        sink.emit(SimTime::from_secs(1.0), || {
            built = true;
            ev(0)
        });
        assert!(!built);
        assert!(sink.take_buffer().is_empty());
    }

    #[test]
    fn sink_buffered_zero_capacity_is_noop() {
        assert!(!TraceSink::buffered(0).is_enabled());
        assert!(TraceSink::buffered(1).is_enabled());
    }

    #[test]
    fn kind_and_component_cover_every_variant() {
        let samples = vec![
            TraceEvent::Scheduled { started: vec![], preempted: vec![] },
            ev(0),
            TraceEvent::JobErrored { job: JobId(1), project: ProjectId(0) },
            TraceEvent::RpcReply { project: ProjectId(0), cpu_secs: 1.0, gpu_secs: 0.0, jobs: 2 },
            TraceEvent::RpcDown { project: ProjectId(0) },
            TraceEvent::RpcLost { project: ProjectId(0) },
            TraceEvent::FetchDeferred { project: ProjectId(0), until: SimTime::from_secs(5.0) },
            TraceEvent::AvailChanged { can_compute: true, can_gpu: false, net_up: true },
            TraceEvent::TransferFailed { job: JobId(1), upload: true },
            TraceEvent::Crashed {
                tasks_rolled_back: 1,
                exec_secs_lost: 2.0,
                transfers_restarted: 0,
            },
            TraceEvent::Recovered { secs: 10.0 },
        ];
        assert_eq!(samples.len(), TraceEvent::KINDS.len());
        for s in &samples {
            assert!(TraceEvent::KINDS.contains(&s.kind()), "{}", s.kind());
            assert!(TraceEvent::COMPONENTS.contains(&s.component()), "{}", s.component());
            assert!(!s.describe().is_empty());
        }
    }
}

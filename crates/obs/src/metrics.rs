//! A registry of named counters, gauges and histograms with per-component
//! scopes.
//!
//! The registry separates *registration* (name lookup, allocation) from
//! *recording* (an index into a dense `Vec`). Components register their
//! instruments once per run and hold typed ids ([`CounterId`] etc.);
//! every increment on the hot path is then a bounds-checked array add —
//! no hashing, no string comparison, no allocation.
//!
//! A [`MetricsSnapshot`] freezes the registry into a sorted,
//! deterministic `scope.name → value` table that the CLI, the bench
//! harness and the fleet study all render from the same schema.

use std::fmt::Write as _;

/// Handle to a monotone `u64` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to an `f64` gauge (last-write-wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a fixed-bound histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Clone)]
struct Slot<T> {
    scope: &'static str,
    name: &'static str,
    value: T,
}

#[derive(Debug, Clone, Default)]
struct Hist {
    /// Upper bounds of the finite buckets; an implicit `+inf` bucket
    /// follows. Must be sorted ascending.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

/// The registry. Cheap to create (three empty vectors); intended
/// lifetime is one emulation run or one bench session.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<Slot<u64>>,
    gauges: Vec<Slot<f64>>,
    histograms: Vec<Slot<Hist>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-find) a counter. Names are `'static` by design:
    /// instrument names are part of the schema, not runtime data.
    pub fn counter(&mut self, scope: &'static str, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|s| s.scope == scope && s.name == name) {
            return CounterId(i);
        }
        self.counters.push(Slot { scope, name, value: 0 });
        CounterId(self.counters.len() - 1)
    }

    pub fn gauge(&mut self, scope: &'static str, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|s| s.scope == scope && s.name == name) {
            return GaugeId(i);
        }
        self.gauges.push(Slot { scope, name, value: 0.0 });
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a histogram with the given ascending finite bucket upper
    /// bounds (an overflow bucket is implicit).
    pub fn histogram(
        &mut self,
        scope: &'static str,
        name: &'static str,
        bounds: &[f64],
    ) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|s| s.scope == scope && s.name == name) {
            return HistogramId(i);
        }
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must ascend");
        self.histograms.push(Slot {
            scope,
            name,
            value: Hist {
                bounds: bounds.to_vec(),
                counts: vec![0; bounds.len() + 1],
                count: 0,
                sum: 0.0,
            },
        });
        HistogramId(self.histograms.len() - 1)
    }

    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].value += 1;
    }

    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].value += n;
    }

    #[inline]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].value = v;
    }

    #[inline]
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].value
    }

    /// Record one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, v: f64) {
        let h = &mut self.histograms[id.0].value;
        let bucket = h.bounds.iter().position(|b| v <= *b).unwrap_or(h.bounds.len());
        h.counts[bucket] += 1;
        h.count += 1;
        h.sum += v;
    }

    /// Freeze into a deterministic snapshot: entries sorted by
    /// `scope.name` regardless of registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> =
            self.counters.iter().map(|s| (format!("{}.{}", s.scope, s.name), s.value)).collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, f64)> =
            self.gauges.iter().map(|s| (format!("{}.{}", s.scope, s.name), s.value)).collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .iter()
            .map(|s| {
                (
                    format!("{}.{}", s.scope, s.name),
                    HistogramSnapshot {
                        bounds: s.value.bounds.clone(),
                        counts: s.value.counts.clone(),
                        count: s.value.count,
                        sum: s.value.sum,
                    },
                )
            })
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A deterministic, sorted view of every instrument — the one schema the
/// CLI, bench harness and fleet study read.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up a counter by full `scope.name`.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Look up a gauge by full `scope.name`.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.binary_search_by(|(k, _)| k.as_str().cmp(key)).ok().map(|i| self.gauges[i].1)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render as an aligned `key  value` table.
    pub fn render(&self) -> String {
        let width = self
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .chain(self.gauges.iter().map(|(k, _)| k.len()))
            .chain(self.histograms.iter().map(|(k, _)| k.len()))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k:width$}  {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k:width$}  {v:.6}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(out, "{k:width$}  n={} mean={:.3}", h.count, h.mean());
        }
        out
    }

    /// Hand-rolled JSON object (the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{k}\":{v}");
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{k}\":{}", crate::export::json_f64(*v));
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{k}\":{{\"count\":{},\"sum\":{},\"bounds\":[",
                h.count,
                crate::export::json_f64(h.sum)
            );
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&crate::export::json_f64(*b));
            }
            s.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}");
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_dedup_and_count() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("client", "rpcs");
        let b = r.counter("client", "rpcs");
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 4);
        assert_eq!(r.counter_value(a), 5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("client.rpcs"), Some(5));
        assert_eq!(snap.counter("client.nope"), None);
    }

    #[test]
    fn snapshot_is_sorted_regardless_of_registration_order() {
        let mut r = MetricsRegistry::new();
        let z = r.counter("z", "last");
        let a = r.counter("a", "first");
        r.inc(z);
        r.add(a, 2);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "a.first");
        assert_eq!(snap.counters[1].0, "z.last");
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = MetricsRegistry::new();
        let g = r.gauge("merit", "idle_fraction");
        r.set(g, 0.5);
        r.set(g, 0.25);
        assert_eq!(r.snapshot().gauge("merit.idle_fraction"), Some(0.25));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("sched", "slice_secs", &[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 100.0] {
            r.observe(h, v);
        }
        let snap = r.snapshot();
        let hs = &snap.histograms[0].1;
        assert_eq!(hs.counts, vec![2, 1, 1]);
        assert_eq!(hs.count, 4);
        assert!((hs.mean() - 26.6).abs() < 1e-9);
    }

    #[test]
    fn json_renders_all_sections() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("s", "c");
        r.inc(c);
        let g = r.gauge("s", "g");
        r.set(g, 1.5);
        r.histogram("s", "h", &[1.0]);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"s.c\":1"));
        assert!(json.contains("\"s.g\":1.5"));
        assert!(json.contains("\"s.h\":{\"count\":0"));
    }
}

//! The disabled-tracer cost guarantee, enforced: emitting through
//! [`TraceSink::Noop`] (and [`NoopTracer`]) performs **zero** heap
//! allocations per event, even for variants that would carry `Vec`s.
//!
//! This works because [`Tracer::emit`] takes the event as a closure: a
//! disabled sink never runs the closure, so the `Vec`s are never built.
//! The test drives the same closures through a recording sink first to
//! prove they *would* allocate if called — otherwise a lazily-optimized
//! event could make the zero-count vacuous.
//!
//! Kept as its own integration-test binary (single `#[test]`) because a
//! `#[global_allocator]` is process-wide and concurrent tests would
//! pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bce_obs::{NoopTracer, TraceEvent, TraceSink, Tracer};
use bce_types::{JobId, ProjectId, SimTime};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;

/// Emit one of each "expensive" event shape — the `Scheduled` variant
/// carries two `Vec<JobId>`s, the others are plain but still must not be
/// built when disabled. `i` varies the contents so nothing is promotable
/// to a constant.
fn emit_round(tracer: &mut impl Tracer, i: u64) {
    let t = SimTime::from_secs(i as f64);
    tracer.emit(t, || TraceEvent::Scheduled {
        started: vec![JobId(i), JobId(i + 1)],
        preempted: vec![JobId(i + 2)],
    });
    tracer.emit(t, || TraceEvent::JobFinished {
        job: JobId(i),
        project: ProjectId((i % 5) as u32),
        met_deadline: i.is_multiple_of(2),
    });
    tracer.emit(t, || TraceEvent::RpcReply {
        project: ProjectId((i % 5) as u32),
        cpu_secs: i as f64,
        gpu_secs: 0.0,
        jobs: i,
    });
}

#[test]
fn noop_sink_emits_without_allocating() {
    // Control: the same closures through a recording sink DO allocate
    // (the buffer grows and the Scheduled vecs are built), proving the
    // measurement below is not vacuous.
    let mut recording = TraceSink::buffered(10_000);
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..1_000 {
        emit_round(&mut recording, i);
    }
    let recorded_allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert!(
        recorded_allocs >= 2_000,
        "recording sink should allocate for the Scheduled vecs, saw {recorded_allocs}"
    );

    // The guarantee: a Noop sink emits the identical stream for free.
    let mut noop = TraceSink::Noop;
    assert!(!noop.is_enabled());
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000 {
        emit_round(&mut noop, i);
    }
    let noop_allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(noop_allocs, 0, "TraceSink::Noop allocated {noop_allocs} times over 30k events");

    // Same promise for the standalone NoopTracer used in generic contexts.
    let mut noop = NoopTracer;
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000 {
        emit_round(&mut noop, i);
    }
    let noop_allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(noop_allocs, 0, "NoopTracer allocated {noop_allocs} times over 30k events");
}

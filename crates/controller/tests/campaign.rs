//! End-to-end tests of the resumable, panic-tolerant campaign runner.
//!
//! The crash-safety contract: a campaign killed mid-flight and resumed
//! from its checkpoint reports outcomes bit-identical to the
//! uninterrupted study, and a single panicking run is quarantined as a
//! structured `RunError` while every other run completes. Kills are
//! emulated deterministically with `CampaignOptions::stop_after_runs`,
//! whose on-disk state is exactly what a SIGKILL at that point leaves
//! (the real-signal variant lives in CI's resume-smoke job).

use bce_client::{ClientConfig, JobSchedPolicy};
use bce_controller::{
    population_campaign, population_study, CampaignCheckpoint, CampaignError, CampaignOptions,
    Metric, PopulationOutcome,
};
use bce_core::{EmulatorConfig, Scenario};
use bce_scenarios::{PopulationModel, PopulationSampler};
use bce_types::{Hardware, ProjectSpec, SimDuration};
use std::path::PathBuf;
use std::sync::Arc;

fn population(n: usize) -> Vec<Arc<Scenario>> {
    let mut sampler = PopulationSampler::new(PopulationModel::default(), 11);
    sampler.sample_many(n).into_iter().map(Arc::new).collect()
}

fn policies() -> Vec<(String, ClientConfig)> {
    vec![
        ("current".to_string(), ClientConfig::default()),
        (
            "wrr".to_string(),
            ClientConfig { sched_policy: JobSchedPolicy::WRR, ..ClientConfig::default() },
        ),
    ]
}

fn emu() -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_hours(2.0), ..Default::default() }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bce-campaign-{}-{name}.ckpt", std::process::id()))
}

fn assert_outcomes_identical(a: &[PopulationOutcome], b: &[PopulationOutcome]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.scenarios_run, y.scenarios_run);
        for m in Metric::ALL {
            let (mx, my) = (x.metric(m), y.metric(m));
            assert_eq!(mx.stats.count(), my.stats.count(), "{m:?}");
            assert_eq!(mx.stats.mean().to_bits(), my.stats.mean().to_bits(), "{m:?}");
            assert_eq!(mx.stats.std_dev().to_bits(), my.stats.std_dev().to_bits(), "{m:?}");
            assert_eq!(mx.stats.min().to_bits(), my.stats.min().to_bits(), "{m:?}");
            assert_eq!(mx.stats.max().to_bits(), my.stats.max().to_bits(), "{m:?}");
            assert_eq!(mx.p95.to_bits(), my.p95.to_bits(), "{m:?}");
        }
    }
}

#[test]
fn campaign_without_checkpointing_matches_population_study() {
    let scenarios = population(6);
    let report =
        population_campaign(&scenarios, &policies(), &emu(), 2, &CampaignOptions::default())
            .unwrap();
    assert!(report.errors.is_empty());
    assert_eq!(report.resumed_runs, 0);
    assert_eq!(report.completed_runs, 12);
    assert_eq!(report.total_runs, 12);
    let study = population_study(&scenarios, &policies(), &emu(), 1);
    assert_outcomes_identical(&report.outcomes, &study);
}

#[test]
fn killed_and_resumed_campaign_is_bit_identical() {
    let scenarios = population(8);
    let path = tmp("kill-resume");
    let _ = std::fs::remove_file(&path);
    let opts = CampaignOptions {
        checkpoint_path: Some(path.clone()),
        checkpoint_every_runs: 1,
        resume: false,
        stop_after_runs: None,
        ..Default::default()
    };
    let reference = population_study(&scenarios, &policies(), &emu(), 1);

    // "Kill" the campaign after 5 of its 16 runs. Mid-policy-0, so the
    // resumed half crosses a policy boundary too.
    let partial = population_campaign(
        &scenarios,
        &policies(),
        &emu(),
        2,
        &CampaignOptions { stop_after_runs: Some(5), ..opts.clone() },
    )
    .unwrap();
    assert_eq!(partial.completed_runs, 5);
    assert_eq!(partial.total_runs, 16);
    let ckpt = CampaignCheckpoint::read_from(&path).unwrap();
    assert_eq!(ckpt.completed(), 5);
    assert!(!ckpt.is_complete());

    // Resume — with a different thread count, which must not matter.
    let resumed = population_campaign(
        &scenarios,
        &policies(),
        &emu(),
        4,
        &CampaignOptions { resume: true, ..opts.clone() },
    )
    .unwrap();
    assert_eq!(resumed.resumed_runs, 5);
    assert_eq!(resumed.completed_runs, 16);
    assert!(resumed.errors.is_empty());
    assert_outcomes_identical(&resumed.outcomes, &reference);

    // A second resume sees the complete checkpoint and re-derives the
    // same outcomes without emulating anything.
    let again = population_campaign(
        &scenarios,
        &policies(),
        &emu(),
        1,
        &CampaignOptions { resume: true, ..opts },
    )
    .unwrap();
    assert_eq!(again.resumed_runs, 16);
    assert_outcomes_identical(&again.outcomes, &reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_after_newest_generation_corruption_is_bit_identical() {
    // The durability headline: kill a checkpointing campaign, corrupt
    // the newest on-disk generation (torn rename / bit rot), and resume.
    // The store must fall back to the previous generation, report the
    // recovery, and the finished campaign must still be bit-identical
    // to the uninterrupted study.
    let scenarios = population(6);
    let path = tmp("gen-fallback");
    let store = bce_statefile::CheckpointStore::with_real_io(&path, 3);
    for gen in store.generations_on_disk().unwrap_or_default() {
        let _ = std::fs::remove_file(store.generation_path(gen));
    }
    let _ = std::fs::remove_file(&path);
    let opts = CampaignOptions {
        checkpoint_path: Some(path.clone()),
        checkpoint_every_runs: 1,
        resume: false,
        stop_after_runs: Some(5),
        ..Default::default()
    };
    let reference = population_study(&scenarios, &policies(), &emu(), 1);

    let partial = population_campaign(&scenarios, &policies(), &emu(), 2, &opts).unwrap();
    assert_eq!(partial.completed_runs, 5);

    // Checkpoint-every-run left several generations; zero-fill a chunk
    // of the newest one.
    let gens = store.generations_on_disk().unwrap();
    assert!(gens.len() >= 2, "expected rotation to keep multiple generations, got {gens:?}");
    let newest = store.generation_path(*gens.last().unwrap());
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    let end = (mid + 64).min(bytes.len());
    for b in &mut bytes[mid..end] {
        *b = 0;
    }
    std::fs::write(&newest, &bytes).unwrap();

    let resumed = population_campaign(
        &scenarios,
        &policies(),
        &emu(),
        4,
        &CampaignOptions { resume: true, stop_after_runs: None, ..opts.clone() },
    )
    .unwrap();
    let recovery = resumed.recovery.expect("resume must report how the checkpoint was opened");
    assert!(recovery.recovered(), "corrupt newest generation must trigger fallback");
    assert_eq!(recovery.rejected.len(), 1);
    assert_eq!(recovery.opened_generation, Some(gens[gens.len() - 2]));
    // The rejected generation held run 5, so the fallback re-runs it.
    assert_eq!(resumed.resumed_runs, 4);
    assert_eq!(resumed.completed_runs, 12);
    assert!(resumed.errors.is_empty());
    assert_outcomes_identical(&resumed.outcomes, &reference);
    for gen in store.generations_on_disk().unwrap_or_default() {
        let _ = std::fs::remove_file(store.generation_path(gen));
    }
}

#[test]
fn repeated_kill_resume_cycles_converge_to_the_reference() {
    // Crash-loop discipline: kill after every 3 runs until done; the
    // final aggregate must still be bit-identical.
    let scenarios = population(5);
    let policies = &policies()[..1];
    let path = tmp("crashloop");
    let _ = std::fs::remove_file(&path);
    let reference = population_study(&scenarios, policies, &emu(), 1);

    let mut resume = false;
    let final_report = loop {
        let report = population_campaign(
            &scenarios,
            policies,
            &emu(),
            1,
            &CampaignOptions {
                checkpoint_path: Some(path.clone()),
                checkpoint_every_runs: 1,
                resume,
                stop_after_runs: Some(3),
                ..Default::default()
            },
        )
        .unwrap();
        resume = true;
        if report.completed_runs == report.total_runs {
            break report;
        }
    };
    assert_outcomes_identical(&final_report.outcomes, &reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn poison_run_in_campaign_is_quarantined_and_checkpoint_stays_resumable() {
    // 100 runs; scenario 42 is poisoned (a zero-app project, which
    // validation would reject — modelling a corrupt input) and panics
    // inside the emulator.
    let mut scenarios = population(100);
    scenarios[42] = Arc::new(
        bce_core::ScenarioBuilder::new("poisoned", Hardware::cpu_only(1, 1e9))
            .project(ProjectSpec::new(0, "p", 100.0))
            .build_unchecked(),
    );
    let policies = &policies()[..1];
    let path = tmp("poison");
    let _ = std::fs::remove_file(&path);
    let opts = CampaignOptions {
        checkpoint_path: Some(path.clone()),
        checkpoint_every_runs: 10,
        resume: false,
        stop_after_runs: None,
        ..Default::default()
    };

    let report = population_campaign(&scenarios, policies, &emu(), 4, &opts).unwrap();
    assert_eq!(report.total_runs, 100);
    assert_eq!(report.errors.len(), 1, "exactly one quarantined run");
    assert_eq!(report.errors[0].index, 42);
    assert!(report.errors[0].label.contains("poisoned"));
    assert!(!report.errors[0].message.is_empty());
    // The other 99 runs all completed and were aggregated.
    assert_eq!(report.outcomes[0].scenarios_run, 99);
    assert_eq!(report.outcomes[0].metric(Metric::Idle).stats.count(), 99);

    // The checkpoint left behind is complete, parseable and resumable —
    // and the resume reproduces the outcomes AND the recorded error
    // without re-running anything.
    let ckpt = CampaignCheckpoint::read_from(&path).unwrap();
    assert!(ckpt.is_complete());
    let resumed = population_campaign(
        &scenarios,
        policies,
        &emu(),
        2,
        &CampaignOptions { resume: true, ..opts },
    )
    .unwrap();
    assert_eq!(resumed.errors.len(), 1);
    assert_eq!(resumed.errors[0].index, 42);
    assert_outcomes_identical(&resumed.outcomes, &report.outcomes);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn campaign_checkpoint_xml_round_trips() {
    let scenarios = population(5);
    let path = tmp("roundtrip");
    let _ = std::fs::remove_file(&path);
    let opts = CampaignOptions {
        checkpoint_path: Some(path.clone()),
        checkpoint_every_runs: 0,
        resume: false,
        stop_after_runs: Some(4),
        ..Default::default()
    };
    let _ = population_campaign(&scenarios, &policies(), &emu(), 1, &opts).unwrap();
    let ckpt = CampaignCheckpoint::read_from(&path).unwrap();
    assert_eq!(ckpt.completed(), 4);
    let again = CampaignCheckpoint::from_xml_str(&ckpt.to_xml_string()).unwrap();
    assert_eq!(again.completed(), ckpt.completed());
    assert_eq!(again.total(), ckpt.total());
    assert_eq!(again.to_xml_string(), ckpt.to_xml_string(), "stable serialization");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mismatched_checkpoint_is_rejected_not_silently_restarted() {
    let scenarios = population(4);
    let path = tmp("mismatch");
    let _ = std::fs::remove_file(&path);
    let opts = CampaignOptions {
        checkpoint_path: Some(path.clone()),
        checkpoint_every_runs: 0,
        resume: false,
        stop_after_runs: None,
        ..Default::default()
    };
    let _ = population_campaign(&scenarios, &policies(), &emu(), 1, &opts).unwrap();

    // Different population → different fingerprint → Mismatch.
    let others = population(3);
    let err = population_campaign(
        &others,
        &policies(),
        &emu(),
        1,
        &CampaignOptions { resume: true, ..opts.clone() },
    )
    .unwrap_err();
    assert!(matches!(err, CampaignError::Mismatch(_)), "{err}");

    // Different emulation horizon → Mismatch too.
    let longer = EmulatorConfig { duration: SimDuration::from_hours(3.0), ..Default::default() };
    let err = population_campaign(
        &scenarios,
        &policies(),
        &longer,
        1,
        &CampaignOptions { resume: true, ..opts.clone() },
    )
    .unwrap_err();
    assert!(matches!(err, CampaignError::Mismatch(_)), "{err}");

    // Fewer policies → shape mismatch even before any label check.
    let err = population_campaign(
        &scenarios,
        &policies()[..1],
        &emu(),
        1,
        &CampaignOptions { resume: true, ..opts.clone() },
    )
    .unwrap_err();
    assert!(matches!(err, CampaignError::Mismatch(_)), "{err}");

    // Resume without a path is an error, not a silent fresh start.
    let err = population_campaign(
        &scenarios,
        &policies(),
        &emu(),
        1,
        &CampaignOptions {
            checkpoint_path: None,
            checkpoint_every_runs: 0,
            resume: true,
            stop_after_runs: None,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, CampaignError::Mismatch(_)), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_campaign_checkpoint_errors_cleanly() {
    for garbage in [
        "",
        "not xml at all",
        "<bce_campaign version=\"1\"></bce_campaign>",
        "<wrong_root version=\"1\"/>",
        "<bce_campaign version=\"99\"/>",
    ] {
        assert!(CampaignCheckpoint::from_xml_str(garbage).is_err(), "{garbage:?}");
    }

    let scenarios = population(3);
    let policies = &policies()[..1];
    let path = tmp("corrupt");
    let _ = std::fs::remove_file(&path);
    let opts = CampaignOptions {
        checkpoint_path: Some(path.clone()),
        checkpoint_every_runs: 0,
        resume: false,
        stop_after_runs: None,
        ..Default::default()
    };
    let _ = population_campaign(&scenarios, policies, &emu(), 1, &opts).unwrap();
    // The on-disk generation is framed binary; exercise the parser on
    // the serialized XML it round-trips to.
    let good = CampaignCheckpoint::read_from(&path).unwrap().to_xml_string();

    // Truncation at every prefix must error (or, for a prefix that is
    // itself well-formed, parse) — never panic.
    for cut in 0..good.len() {
        let _ = CampaignCheckpoint::from_xml_str(&good[..cut]);
    }

    // Rewind the completed count without touching the bitmap: the
    // prefix-consistency check must reject the document.
    let tampered = good.replacen("completed=\"3\"", "completed=\"2\"", 1);
    assert_ne!(tampered, good, "fixture assumes completed=\"3\" appears");
    assert!(matches!(CampaignCheckpoint::from_xml_str(&tampered), Err(CampaignError::Mismatch(_))));
    let _ = std::fs::remove_file(&path);
}

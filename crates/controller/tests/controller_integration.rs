//! Integration tests for the experiment controller against real
//! emulations: sweeps produce plottable series, comparisons produce
//! consistent tables, and text artifacts land on disk.

use bce_client::{ClientConfig, JobSchedPolicy};
use bce_controller::{compare_policies, line_chart, save_text, sweep, Metric, Series};
use bce_core::{EmulatorConfig, Scenario};
use bce_types::{AppClass, Hardware, ProjectSpec, SimDuration};

fn scenario(runtime: f64) -> Scenario {
    Scenario::new("ctl", Hardware::cpu_only(2, 1e9)).with_seed(77).with_project(
        ProjectSpec::new(0, "a", 100.0).with_app(AppClass::cpu(
            0,
            SimDuration::from_secs(runtime),
            SimDuration::from_hours(6.0),
        )),
    )
}

fn emu() -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_hours(2.0), ..Default::default() }
}

#[test]
fn sweep_series_and_csv_roundtrip() {
    let policies = vec![("G".to_string(), ClientConfig::default())];
    let r = sweep("runtime", &[400.0, 800.0], &policies, &emu(), 2, scenario);
    // More jobs complete with shorter runtimes.
    let jobs_short = r.by_policy[0].1[0].jobs_completed;
    let jobs_long = r.by_policy[0].1[1].jobs_completed;
    assert!(jobs_short > jobs_long, "{jobs_short} vs {jobs_long}");
    // Tables carry one row per parameter and render to CSV.
    let t = r.table(Metric::Idle);
    let csv = t.to_csv();
    assert_eq!(csv.lines().count(), 3); // header + 2 rows
    assert!(csv.starts_with("runtime,G"));
    // Chart renders without panicking on real data.
    let chart = line_chart("idle", &r.series(Metric::Idle), 40, 10);
    assert!(chart.contains("= G"));
}

#[test]
fn comparison_table_is_consistent_with_results() {
    let policies = vec![
        (
            "LOCAL".to_string(),
            ClientConfig { sched_policy: JobSchedPolicy::LOCAL, ..Default::default() },
        ),
        (
            "WRR".to_string(),
            ClientConfig { sched_policy: JobSchedPolicy::WRR, ..Default::default() },
        ),
    ];
    let c = compare_policies(&scenario(600.0), &policies, &emu(), 0);
    let rendered = c.table().render();
    for (label, r) in &c.results {
        assert!(rendered.contains(label.as_str()));
        assert!(rendered.contains(&r.jobs_completed.to_string()));
    }
}

#[test]
fn save_text_creates_directories() {
    let dir = std::env::temp_dir().join("bce-controller-test").join("nested");
    let path = dir.join("out.csv");
    let _ = std::fs::remove_file(&path);
    save_text(&path, "a,b\n1,2\n").unwrap();
    let content = std::fs::read_to_string(&path).unwrap();
    assert_eq!(content, "a,b\n1,2\n");
}

#[test]
fn chart_handles_single_point_series() {
    let s = Series::new("solo", vec![(1.0, 0.5)]);
    let out = line_chart("one point", &[s], 30, 8);
    assert!(out.contains('*'));
}

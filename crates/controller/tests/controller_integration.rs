//! Integration tests for the experiment controller against real
//! emulations: sweeps produce plottable series, comparisons produce
//! consistent tables, and text artifacts land on disk.

use bce_client::{ClientConfig, JobSchedPolicy};
use bce_controller::{
    compare_policies, line_chart, population_study, run_all, run_streaming, save_text, sweep,
    Metric, RunSpec, Series,
};
use bce_core::{EmulatorConfig, Scenario, ScenarioBuilder};
use bce_scenarios::{PopulationModel, PopulationSampler};
use bce_types::{AppClass, Hardware, ProjectSpec, SimDuration};
use std::sync::Arc;

fn scenario(runtime: f64) -> Scenario {
    ScenarioBuilder::new("ctl", Hardware::cpu_only(2, 1e9))
        .seed(77)
        .project(ProjectSpec::new(0, "a", 100.0).with_app(AppClass::cpu(
            0,
            SimDuration::from_secs(runtime),
            SimDuration::from_hours(6.0),
        )))
        .build_unchecked()
}

fn emu() -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_hours(2.0), ..Default::default() }
}

#[test]
fn sweep_series_and_csv_roundtrip() {
    let policies = vec![("G".to_string(), ClientConfig::default())];
    let r = sweep("runtime", &[400.0, 800.0], &policies, &emu(), 2, scenario);
    // More jobs complete with shorter runtimes.
    let jobs_short = r.by_policy[0].1[0].jobs_completed;
    let jobs_long = r.by_policy[0].1[1].jobs_completed;
    assert!(jobs_short > jobs_long, "{jobs_short} vs {jobs_long}");
    // Tables carry one row per parameter and render to CSV.
    let t = r.table(Metric::Idle);
    let csv = t.to_csv();
    assert_eq!(csv.lines().count(), 3); // header + 2 rows
    assert!(csv.starts_with("runtime,G"));
    // Chart renders without panicking on real data.
    let chart = line_chart("idle", &r.series(Metric::Idle), 40, 10);
    assert!(chart.contains("= G"));
}

#[test]
fn comparison_table_is_consistent_with_results() {
    let policies = vec![
        (
            "LOCAL".to_string(),
            ClientConfig { sched_policy: JobSchedPolicy::LOCAL, ..Default::default() },
        ),
        (
            "WRR".to_string(),
            ClientConfig { sched_policy: JobSchedPolicy::WRR, ..Default::default() },
        ),
    ];
    let c = compare_policies(&scenario(600.0), &policies, &emu(), 0);
    let rendered = c.table().render();
    for (label, r) in &c.results {
        assert!(rendered.contains(label.as_str()));
        assert!(rendered.contains(&r.jobs_completed.to_string()));
    }
}

#[test]
fn save_text_creates_directories() {
    let dir = std::env::temp_dir().join("bce-controller-test").join("nested");
    let path = dir.join("out.csv");
    let _ = std::fs::remove_file(&path);
    save_text(&path, "a,b\n1,2\n").unwrap();
    let content = std::fs::read_to_string(&path).unwrap();
    assert_eq!(content, "a,b\n1,2\n");
}

#[test]
fn chart_handles_single_point_series() {
    let s = Series::new("solo", vec![(1.0, 0.5)]);
    let out = line_chart("one point", &[s], 30, 8);
    assert!(out.contains('*'));
}

// ---------------------------------------------------------------------------
// Determinism matrix: every experiment driver must produce bit-identical
// output at any thread count, and the streaming reducer must see exactly
// what the batch API retains. This is the executor's core contract — the
// figure pipeline may be sharded across any number of workers without
// changing a single output bit.
// ---------------------------------------------------------------------------

const THREAD_MATRIX: [usize; 3] = [1, 2, 8];

fn two_policies() -> Vec<(String, ClientConfig)> {
    vec![
        ("GLOBAL".to_string(), ClientConfig::default()),
        (
            "LOCAL".to_string(),
            ClientConfig { sched_policy: JobSchedPolicy::LOCAL, ..Default::default() },
        ),
    ]
}

#[test]
fn population_study_bit_identical_across_threads() {
    let mut sampler = PopulationSampler::new(PopulationModel::default(), 17);
    let scenarios: Vec<Arc<Scenario>> = sampler.sample_many(6).into_iter().map(Arc::new).collect();
    let fingerprint = |threads: usize| {
        let outcomes = population_study(&scenarios, &two_policies(), &emu(), threads);
        outcomes
            .iter()
            .flat_map(|o| {
                o.per_metric.iter().flat_map(|ms| {
                    [
                        ms.stats.mean().to_bits(),
                        ms.stats.std_dev().to_bits(),
                        ms.stats.min().to_bits(),
                        ms.stats.max().to_bits(),
                        ms.p95.to_bits(),
                    ]
                })
            })
            .collect::<Vec<u64>>()
    };
    let base = fingerprint(THREAD_MATRIX[0]);
    for &threads in &THREAD_MATRIX[1..] {
        assert_eq!(base, fingerprint(threads), "population study diverged at {threads} threads");
    }
}

#[test]
fn sweep_bit_identical_across_threads() {
    let policies = two_policies();
    let params = [400.0, 700.0, 1000.0];
    let fingerprint = |threads: usize| {
        let r = sweep("runtime", &params, &policies, &emu(), threads, scenario);
        r.by_policy
            .iter()
            .flat_map(|(_, results)| results.iter().map(|res| res.bit_fingerprint()))
            .collect::<Vec<u64>>()
    };
    let base = fingerprint(THREAD_MATRIX[0]);
    for &threads in &THREAD_MATRIX[1..] {
        assert_eq!(base, fingerprint(threads), "sweep diverged at {threads} threads");
    }
}

#[test]
fn compare_bit_identical_across_threads() {
    let fingerprint = |threads: usize| {
        compare_policies(&scenario(600.0), &two_policies(), &emu(), threads)
            .results
            .iter()
            .map(|(l, r)| (l.clone(), r.bit_fingerprint()))
            .collect::<Vec<_>>()
    };
    let base = fingerprint(THREAD_MATRIX[0]);
    for &threads in &THREAD_MATRIX[1..] {
        assert_eq!(base, fingerprint(threads), "compare diverged at {threads} threads");
    }
}

#[test]
fn streaming_reducer_bit_identical_across_threads() {
    let mut sampler = PopulationSampler::new(PopulationModel::default(), 23);
    let scenarios: Vec<Arc<Scenario>> = sampler.sample_many(5).into_iter().map(Arc::new).collect();
    let emu_cfg = Arc::new(emu());
    let specs: Vec<RunSpec> = scenarios
        .iter()
        .map(|s| {
            RunSpec::new(s.name.clone(), s.clone(), ClientConfig::default())
                .with_emulator(emu_cfg.clone())
        })
        .collect();
    let batch: Vec<u64> =
        run_all(specs.clone(), 1).iter().map(|(_, r)| r.bit_fingerprint()).collect();
    for &threads in &THREAD_MATRIX {
        let mut streamed: Vec<u64> = Vec::new();
        run_streaming(&specs, threads, |_, _, r| streamed.push(r.bit_fingerprint()));
        assert_eq!(batch, streamed, "streaming diverged at {threads} threads");
    }
}

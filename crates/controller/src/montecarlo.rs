//! Monte-Carlo population studies (§6.2 future work): evaluate policies
//! over a whole sampled population of scenarios rather than hand-picked
//! points, and aggregate the figures-of-merit distributions.

use crate::run::{run_all, RunSpec};
use crate::sweep::Metric;
use crate::table::Table;
use bce_client::ClientConfig;
use bce_core::{EmulatorConfig, Scenario};
use bce_sim::OnlineStats;

/// Aggregated distribution of one metric over the population.
#[derive(Debug, Clone)]
pub struct MetricStats {
    pub metric: Metric,
    pub stats: OnlineStats,
    /// 95th percentile (exact, from the retained sample).
    pub p95: f64,
}

/// Population-level outcome for one policy.
#[derive(Debug, Clone)]
pub struct PopulationOutcome {
    pub label: String,
    pub per_metric: Vec<MetricStats>,
    pub scenarios_run: usize,
}

impl PopulationOutcome {
    pub fn metric(&self, m: Metric) -> &MetricStats {
        self.per_metric.iter().find(|s| s.metric == m).expect("all metrics present")
    }
}

/// Evaluate each policy over the given scenario population.
pub fn population_study(
    scenarios: &[Scenario],
    policies: &[(String, ClientConfig)],
    emulator: &EmulatorConfig,
    threads: usize,
) -> Vec<PopulationOutcome> {
    let mut outcomes = Vec::new();
    for (label, client) in policies {
        let specs: Vec<RunSpec> = scenarios
            .iter()
            .map(|s| {
                RunSpec::new(format!("{label}/{}", s.name), s.clone(), *client)
                    .with_emulator(emulator.clone())
            })
            .collect();
        let results = run_all(specs, threads);
        let per_metric = Metric::ALL
            .iter()
            .map(|&metric| {
                let mut stats = OnlineStats::new();
                let mut values: Vec<f64> = Vec::with_capacity(results.len());
                for (_, r) in &results {
                    let v = metric.extract(&r.merit);
                    stats.push(v);
                    values.push(v);
                }
                values.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let p95 = if values.is_empty() {
                    0.0
                } else {
                    values[((values.len() as f64 * 0.95) as usize).min(values.len() - 1)]
                };
                MetricStats { metric, stats, p95 }
            })
            .collect();
        outcomes.push(PopulationOutcome {
            label: label.clone(),
            per_metric,
            scenarios_run: scenarios.len(),
        });
    }
    outcomes
}

/// Summary table: one row per (policy, metric) with mean/sd/min/max/p95.
pub fn population_table(outcomes: &[PopulationOutcome]) -> Table {
    let mut t = Table::new(&["policy", "metric", "mean", "sd", "min", "max", "p95"]);
    for o in outcomes {
        for ms in &o.per_metric {
            t.row(&[
                o.label.clone(),
                ms.metric.name().to_string(),
                format!("{:.4}", ms.stats.mean()),
                format!("{:.4}", ms.stats.std_dev()),
                format!("{:.4}", ms.stats.min()),
                format!("{:.4}", ms.stats.max()),
                format!("{:.4}", ms.p95),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_scenarios::{PopulationModel, PopulationSampler};
    use bce_types::SimDuration;

    #[test]
    fn study_over_small_population() {
        let mut sampler = PopulationSampler::new(PopulationModel::default(), 3);
        let scenarios = sampler.sample_many(4);
        let policies = vec![("default".to_string(), ClientConfig::default())];
        let emu = EmulatorConfig { duration: SimDuration::from_hours(2.0), ..Default::default() };
        let outcomes = population_study(&scenarios, &policies, &emu, 0);
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        assert_eq!(o.scenarios_run, 4);
        assert_eq!(o.per_metric.len(), 5);
        let idle = o.metric(Metric::Idle);
        assert_eq!(idle.stats.count(), 4);
        assert!(idle.stats.mean() >= 0.0 && idle.stats.mean() <= 1.0);
        assert!(idle.p95 >= idle.stats.min() && idle.p95 <= idle.stats.max());
        let table = population_table(&outcomes).render();
        assert!(table.contains("default"));
        assert!(table.contains("monotony"));
    }
}

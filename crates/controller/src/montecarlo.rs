//! Monte-Carlo population studies (§6.2 future work): evaluate policies
//! over a whole sampled population of scenarios rather than hand-picked
//! points, and aggregate the figures-of-merit distributions.
//!
//! The study streams: the policy × scenario matrix is distributed as
//! `Arc`-shared specs (no scenario is ever cloned) and every
//! `EmulationResult` is folded into the per-policy accumulators the
//! moment it completes, so memory stays O(policies × metrics) plus one
//! retained `f64` per run per metric for the exact p95 — not
//! O(runs × results).

use crate::run::{run_streaming, RunSpec};
use crate::sweep::Metric;
use crate::table::Table;
use bce_client::ClientConfig;
use bce_core::{EmulatorConfig, Scenario};
use bce_sim::OnlineStats;
use std::sync::Arc;

/// Aggregated distribution of one metric over the population.
#[derive(Debug, Clone)]
pub struct MetricStats {
    pub metric: Metric,
    pub stats: OnlineStats,
    /// 95th percentile (exact, from the retained sample).
    pub p95: f64,
}

/// Population-level outcome for one policy.
#[derive(Debug, Clone)]
pub struct PopulationOutcome {
    pub label: String,
    pub per_metric: Vec<MetricStats>,
    pub scenarios_run: usize,
}

impl PopulationOutcome {
    pub fn metric(&self, m: Metric) -> &MetricStats {
        self.per_metric.iter().find(|s| s.metric == m).expect("all metrics present")
    }
}

/// Streaming accumulator for one policy: running moments plus the raw
/// sample of each metric (needed only for the exact p95). `pub(crate)`
/// so the campaign module can checkpoint and restore it.
pub(crate) struct PolicyAccum {
    pub(crate) stats: Vec<OnlineStats>,
    pub(crate) values: Vec<Vec<f64>>,
}

impl PolicyAccum {
    pub(crate) fn new(expected_runs: usize) -> Self {
        PolicyAccum {
            stats: vec![OnlineStats::new(); Metric::ALL.len()],
            values: vec![Vec::with_capacity(expected_runs); Metric::ALL.len()],
        }
    }

    /// Fold one run's figures of merit into every metric's accumulator.
    pub(crate) fn push(&mut self, merit: &bce_core::FiguresOfMerit) {
        for (k, metric) in Metric::ALL.iter().enumerate() {
            let v = metric.extract(merit);
            self.stats[k].push(v);
            self.values[k].push(v);
        }
    }

    pub(crate) fn finish(mut self, label: &str, scenarios_run: usize) -> PopulationOutcome {
        let per_metric = Metric::ALL
            .iter()
            .enumerate()
            .map(|(k, &metric)| {
                let values = &mut self.values[k];
                values.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let p95 = if values.is_empty() {
                    0.0
                } else {
                    values[((values.len() as f64 * 0.95) as usize).min(values.len() - 1)]
                };
                MetricStats { metric, stats: self.stats[k].clone(), p95 }
            })
            .collect();
        PopulationOutcome { label: label.to_string(), per_metric, scenarios_run }
    }
}

/// Evaluate each policy over the given scenario population.
///
/// Scenarios are shared by reference-count across every policy, so the
/// whole policy × scenario matrix is distributed without cloning a single
/// scenario, and the full matrix runs as one parallel batch.
pub fn population_study(
    scenarios: &[Arc<Scenario>],
    policies: &[(String, ClientConfig)],
    emulator: &EmulatorConfig,
    threads: usize,
) -> Vec<PopulationOutcome> {
    let n = scenarios.len();
    let specs = population_specs(scenarios, policies, emulator);

    let mut accums: Vec<PolicyAccum> = policies.iter().map(|_| PolicyAccum::new(n)).collect();
    run_streaming(&specs, threads, |i, _, result| {
        // `n == 0` means no specs, so the reducer is never called.
        accums[i / n].push(&result.merit);
    });

    policies.iter().zip(accums).map(|((label, _), accum)| accum.finish(label, n)).collect()
}

/// The policy × scenario spec matrix of a population study, in the
/// submission order both [`population_study`] and the resumable campaign
/// runner rely on: all of policy 0's scenarios, then policy 1's, …
pub(crate) fn population_specs(
    scenarios: &[Arc<Scenario>],
    policies: &[(String, ClientConfig)],
    emulator: &EmulatorConfig,
) -> Vec<RunSpec> {
    let emulator = Arc::new(emulator.clone());
    policies
        .iter()
        .flat_map(|(label, client)| {
            let emulator = emulator.clone();
            scenarios.iter().map(move |s| {
                RunSpec::new(format!("{label}/{}", s.name), s.clone(), *client)
                    .with_emulator(emulator.clone())
            })
        })
        .collect()
}

/// The standard sampled population shared by every front end (the
/// `bce population` command and the daemon's `/campaign` endpoint).
/// Both must build scenarios through this one function: identical
/// sampling is what makes a drained-and-resumed daemon campaign
/// byte-comparable against the CLI's uninterrupted reference table.
pub fn standard_population(hosts: usize, seed: u64) -> Vec<Arc<Scenario>> {
    let mut sampler =
        bce_scenarios::PopulationSampler::new(bce_scenarios::PopulationModel::default(), seed);
    sampler.sample_many(hosts).into_iter().map(Arc::new).collect()
}

/// The standard policy pair of the population study: the paper's
/// recommended combination (GLOBAL scheduling + hysteresis fetch)
/// against the original BOINC baseline (LOCAL + ORIG).
pub fn standard_policies() -> Vec<(String, ClientConfig)> {
    use bce_client::{FetchPolicy, JobSchedPolicy};
    vec![
        ("GLOBAL+HYST".to_string(), ClientConfig::default()),
        (
            "LOCAL+ORIG".to_string(),
            ClientConfig {
                sched_policy: JobSchedPolicy::LOCAL,
                fetch_policy: FetchPolicy::Orig,
                ..Default::default()
            },
        ),
    ]
}

/// The one-line header every population report starts with. Shared so
/// table-diffing scripts see the same bytes from the CLI and the daemon.
pub fn population_header(hosts: usize, days: f64, seed: u64) -> String {
    format!("population study: {hosts} hosts x {days} days (seed {seed})\n\n")
}

/// Summary table: one row per (policy, metric) with mean/sd/min/max/p95.
pub fn population_table(outcomes: &[PopulationOutcome]) -> Table {
    let mut t = Table::new(&["policy", "metric", "mean", "sd", "min", "max", "p95"]);
    for o in outcomes {
        for ms in &o.per_metric {
            t.row(&[
                o.label.clone(),
                ms.metric.name().to_string(),
                format!("{:.4}", ms.stats.mean()),
                format!("{:.4}", ms.stats.std_dev()),
                format!("{:.4}", ms.stats.min()),
                format!("{:.4}", ms.stats.max()),
                format!("{:.4}", ms.p95),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_scenarios::{PopulationModel, PopulationSampler};
    use bce_types::SimDuration;

    fn small_population(n: usize) -> Vec<Arc<Scenario>> {
        let mut sampler = PopulationSampler::new(PopulationModel::default(), 3);
        sampler.sample_many(n).into_iter().map(Arc::new).collect()
    }

    #[test]
    fn study_over_small_population() {
        let scenarios = small_population(4);
        let policies = vec![("default".to_string(), ClientConfig::default())];
        let emu = EmulatorConfig { duration: SimDuration::from_hours(2.0), ..Default::default() };
        let outcomes = population_study(&scenarios, &policies, &emu, 0);
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        assert_eq!(o.scenarios_run, 4);
        assert_eq!(o.per_metric.len(), 5);
        let idle = o.metric(Metric::Idle);
        assert_eq!(idle.stats.count(), 4);
        assert!(idle.stats.mean() >= 0.0 && idle.stats.mean() <= 1.0);
        assert!(idle.p95 >= idle.stats.min() && idle.p95 <= idle.stats.max());
        let table = population_table(&outcomes).render();
        assert!(table.contains("default"));
        assert!(table.contains("monotony"));
        // Sharing, not cloning: each scenario is still referenced only by
        // the caller once the study returns.
        for s in &scenarios {
            assert_eq!(Arc::strong_count(s), 1);
        }
    }

    #[test]
    fn empty_population_yields_empty_stats() {
        let policies = vec![("default".to_string(), ClientConfig::default())];
        let emu = EmulatorConfig { duration: SimDuration::from_hours(1.0), ..Default::default() };
        let outcomes = population_study(&[], &policies, &emu, 2);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].scenarios_run, 0);
        assert_eq!(outcomes[0].metric(Metric::Idle).stats.count(), 0);
    }
}

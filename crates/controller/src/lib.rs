//! # bce-controller — the experiment controller
//!
//! The paper's "controller script that does multiple BCE runs and
//! generates graphs summarizing the figures of merit" (§4.3): parallel
//! run execution, parameter sweeps, policy comparisons, Monte-Carlo
//! population studies, and terminal-friendly tables/plots plus CSV export.

pub mod campaign;
pub mod compare;
pub mod manifest;
pub mod montecarlo;
pub mod plot;
pub mod run;
pub mod sweep;
pub mod table;

pub use campaign::{
    population_campaign, CampaignCheckpoint, CampaignError, CampaignOptions, CampaignReport,
};
pub use compare::{compare_policies, Comparison};
pub use manifest::{
    fnv64, run_manifest, summary_json, CampaignManifest, ManifestError, ManifestOutcome,
};
pub use montecarlo::{
    population_header, population_study, population_table, standard_policies, standard_population,
    MetricStats, PopulationOutcome,
};
pub use plot::{bar_chart, line_chart, Series};
pub use run::{
    resolve_threads, run_all, run_all_reference, run_streaming, run_streaming_profiled,
    run_supervised, run_supervised_profiled, RunError, RunOutcome, RunSpec,
};
pub use sweep::{sweep, Metric, SweepResult};
pub use table::Table;

use std::io::Write as _;
use std::path::Path;

/// Write text (a rendered table, CSV, or chart) to a file, creating parent
/// directories. Experiment binaries use this to drop CSVs under
/// `target/figures/`.
pub fn save_text(path: impl AsRef<Path>, text: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(text.as_bytes())
}

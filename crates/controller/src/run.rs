//! Parallel experiment execution: the controller "does multiple BCE runs
//! and generates graphs summarizing the figures of merit" (§4.3). Runs are
//! independent emulations, parallelized across OS threads with
//! `std::thread::scope`; results come back in submission order so reports
//! stay deterministic.

use bce_client::ClientConfig;
use bce_core::{EmulationResult, Emulator, EmulatorConfig, Scenario};

/// One unit of work: a scenario plus client policy configuration.
#[derive(Clone)]
pub struct RunSpec {
    pub label: String,
    pub scenario: Scenario,
    pub client: ClientConfig,
    pub emulator: EmulatorConfig,
}

impl RunSpec {
    pub fn new(label: impl Into<String>, scenario: Scenario, client: ClientConfig) -> Self {
        RunSpec { label: label.into(), scenario, client, emulator: EmulatorConfig::default() }
    }

    pub fn with_emulator(mut self, cfg: EmulatorConfig) -> Self {
        self.emulator = cfg;
        self
    }
}

/// Execute all runs, using up to `threads` worker threads (0 = one per
/// available CPU). Results are returned in input order.
pub fn run_all(specs: Vec<RunSpec>, threads: usize) -> Vec<(String, EmulationResult)> {
    let nthreads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    };
    let n = specs.len();
    let mut results: Vec<Option<(String, EmulationResult)>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let specs_ref = &specs;
    let results_mx = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..nthreads.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = &specs_ref[i];
                let result =
                    Emulator::new(spec.scenario.clone(), spec.client, spec.emulator.clone()).run();
                let entry = (spec.label.clone(), result);
                results_mx.lock().expect("results lock")[i] = Some(entry);
            });
        }
    });

    results.into_iter().map(|r| r.expect("all runs completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::{AppClass, Hardware, ProjectSpec, SimDuration};

    fn tiny_scenario(seed: u64) -> Scenario {
        Scenario::new(format!("tiny{seed}"), Hardware::cpu_only(1, 1e9))
            .with_seed(seed)
            .with_project(ProjectSpec::new(0, "p", 100.0).with_app(AppClass::cpu(
                0,
                SimDuration::from_secs(500.0),
                SimDuration::from_hours(4.0),
            )))
    }

    fn short() -> EmulatorConfig {
        EmulatorConfig { duration: SimDuration::from_hours(3.0), ..Default::default() }
    }

    #[test]
    fn results_in_submission_order() {
        let specs: Vec<RunSpec> = (0..8)
            .map(|i| {
                RunSpec::new(format!("run{i}"), tiny_scenario(i), ClientConfig::default())
                    .with_emulator(short())
            })
            .collect();
        let results = run_all(specs, 4);
        assert_eq!(results.len(), 8);
        for (i, (label, r)) in results.iter().enumerate() {
            assert_eq!(label, &format!("run{i}"));
            assert!(r.jobs_completed > 0);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let mk = || {
            vec![
                RunSpec::new("a", tiny_scenario(1), ClientConfig::default()).with_emulator(short()),
                RunSpec::new("b", tiny_scenario(2), ClientConfig::default()).with_emulator(short()),
            ]
        };
        let par = run_all(mk(), 2);
        let ser = run_all(mk(), 1);
        for ((_, a), (_, b)) in par.iter().zip(&ser) {
            assert_eq!(a.jobs_completed, b.jobs_completed);
            assert_eq!(a.total_flops_used.to_bits(), b.total_flops_used.to_bits());
        }
    }

    #[test]
    fn empty_specs() {
        assert!(run_all(vec![], 4).is_empty());
    }
}

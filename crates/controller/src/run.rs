//! Population-scale experiment execution: the controller "does multiple
//! BCE runs and generates graphs summarizing the figures of merit" (§4.3).
//!
//! Runs are independent emulations distributed over OS threads. The
//! executor is built for populations of 100k+ scenarios:
//!
//! * **Zero-clone distribution** — a [`RunSpec`] shares its scenario and
//!   emulator configuration via `Arc`, so fanning N runs out to workers
//!   allocates nothing per run beyond the spec list itself.
//! * **Per-worker emulator reuse** — each worker owns one
//!   [`EmulatorArena`] and drives every run through it, so the event
//!   queue, RR-simulation scratch, task buffers and accounting sample are
//!   allocated once per worker, not once per run.
//! * **No lock on the hot path** — work is split statically (worker `w`
//!   runs spec indices `w, w + T, w + 2T, …`) and each worker streams its
//!   results through its own bounded channel; there is no shared mutex or
//!   result funnel.
//! * **Streaming reduction** — [`run_streaming`] hands each
//!   [`EmulationResult`] to a caller-supplied reducer *in submission
//!   order* as soon as it is available, so a caller that only aggregates
//!   keeps O(workers) results alive instead of O(runs).
//!
//! Determinism contract: every run is a deterministic function of its
//! spec, the reduction happens in submission order on the calling thread,
//! and arenas are cleared between runs — so results (and any reduction
//! over them) are bit-identical across thread counts and between fresh
//! and reused arenas.

use bce_client::ClientConfig;
use bce_core::{
    CheckpointPolicy, CheckpointState, EmulationResult, Emulator, EmulatorArena, EmulatorConfig,
    Scenario,
};
use bce_obs::Profiler;
use std::sync::Arc;

/// A run that panicked inside the emulator, quarantined by the
/// supervised executor instead of tearing down the whole campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// Submission index of the failed spec.
    pub index: usize,
    /// Label of the failed spec.
    pub label: String,
    /// The panic message (or a placeholder for non-string payloads).
    pub message: String,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "run {} ({}) panicked: {}", self.index, self.label, self.message)
    }
}
impl std::error::Error for RunError {}

/// What the supervised executor delivers per run: the result, or the
/// quarantined panic.
pub type RunOutcome = Result<EmulationResult, RunError>;

/// Extract a human-readable message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One unit of work: a scenario plus client policy configuration. The
/// scenario and emulator config are shared (`Arc`), so cloning a spec —
/// or building thousands of specs over the same inputs — is O(1) per spec.
#[derive(Clone)]
pub struct RunSpec {
    pub label: String,
    pub scenario: Arc<Scenario>,
    pub client: ClientConfig,
    pub emulator: Arc<EmulatorConfig>,
}

impl RunSpec {
    pub fn new(
        label: impl Into<String>,
        scenario: impl Into<Arc<Scenario>>,
        client: ClientConfig,
    ) -> Self {
        RunSpec {
            label: label.into(),
            scenario: scenario.into(),
            client,
            emulator: Arc::new(EmulatorConfig::default()),
        }
    }

    pub fn with_emulator(mut self, cfg: impl Into<Arc<EmulatorConfig>>) -> Self {
        self.emulator = cfg.into();
        self
    }

    fn emulate(&self, arena: &mut EmulatorArena) -> EmulationResult {
        let emu = Emulator::new(self.scenario.clone(), self.client, self.emulator.clone());
        let Some(policy) = &self.emulator.checkpoint else {
            return emu.run_in(arena);
        };
        self.emulate_checkpointed(emu, arena, policy)
    }

    /// Crash-safe run path: resume from this spec's checkpoint file if a
    /// valid one exists, otherwise run while writing a checkpoint every
    /// `policy.every` of simulated time. The file is removed once the run
    /// completes, and the result is bit-identical to a straight run.
    fn emulate_checkpointed(
        &self,
        emu: Emulator,
        arena: &mut EmulatorArena,
        policy: &CheckpointPolicy,
    ) -> EmulationResult {
        let path = policy.dir.join(checkpoint_file_name(&self.label));
        if let Ok(ckpt) = CheckpointState::read_from(&path) {
            // A stale or foreign checkpoint (different scenario/config)
            // fails the resume guards; fall through to a fresh run then.
            if let Ok(result) = emu.resume_in(&ckpt, arena) {
                let _ = std::fs::remove_file(&path);
                return result;
            }
        }
        let _ = std::fs::create_dir_all(&policy.dir);
        let result = emu.run_with_checkpoints_in(arena, policy.every, |ckpt| {
            // Best-effort: a failed write degrades crash-safety, not the
            // run itself.
            let _ = ckpt.write_atomic(&path);
        });
        let _ = std::fs::remove_file(&path);
        result
    }
}

/// Stable, filesystem-safe checkpoint file name for a run label: a
/// sanitized prefix for the human, an FNV-1a hash of the full label for
/// uniqueness (labels may differ only in characters the sanitizer folds).
fn checkpoint_file_name(label: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let prefix: String = label
        .chars()
        .take(40)
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
        .collect();
    format!("{prefix}-{hash:016x}.ckpt")
}

/// Resolve a thread-count argument (0 = one per available CPU).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    }
}

/// Results a worker may buffer ahead of the consumer before blocking.
/// Bounds memory at O(workers × slack) while giving fast workers room to
/// run ahead of an uneven reduction front.
const WORKER_SLACK: usize = 4;

/// Execute every spec, streaming each [`EmulationResult`] into `consume`
/// in submission order, using up to `threads` workers (0 = one per
/// available CPU). Only what the reducer retains outlives the call, so
/// memory stays O(workers) however many specs are swept.
///
/// With one thread this is a plain loop over one arena — no thread is
/// spawned and no synchronization happens at all.
pub fn run_streaming<F>(specs: &[RunSpec], threads: usize, consume: F)
where
    F: FnMut(usize, &RunSpec, EmulationResult),
{
    run_streaming_profiled(specs, threads, &mut Profiler::disabled(), consume)
}

/// As [`run_streaming`], but timing the executor's phases into `prof`:
///
/// * `exec.emulate` — serial path only: the emulations themselves.
/// * `exec.recv_wait` — parallel path: consumer time blocked on worker
///   channels (how far the reduction front trails the workers).
/// * `exec.reduce` — time inside the caller's reducer, which runs on the
///   consuming thread and therefore bounds streaming throughput.
///
/// Profiling observes wall clock only; results (and reduction order) are
/// identical to [`run_streaming`]. A disabled profiler skips all timing.
pub fn run_streaming_profiled<F>(
    specs: &[RunSpec],
    threads: usize,
    prof: &mut Profiler,
    mut consume: F,
) where
    F: FnMut(usize, &RunSpec, EmulationResult),
{
    run_supervised_profiled(specs, threads, prof, |i, spec, outcome| match outcome {
        Ok(result) => consume(i, spec, result),
        // The unsupervised contract is all-or-abort: re-raise the
        // quarantined panic with its structured context instead of the
        // old hung-channel failure mode.
        Err(e) => panic!("{e}"),
    });
}

/// Supervised variant of [`run_streaming`]: each run executes under
/// `catch_unwind`, so a panicking emulation is quarantined as a
/// [`RunError`] delivered to the reducer (still in submission order)
/// while every other run completes normally. The panicking worker's
/// arena is discarded — a partially-unwound arena could poison later
/// runs — and replaced with a fresh one.
pub fn run_supervised<F>(specs: &[RunSpec], threads: usize, consume: F)
where
    F: FnMut(usize, &RunSpec, RunOutcome),
{
    run_supervised_profiled(specs, threads, &mut Profiler::disabled(), consume)
}

/// As [`run_supervised`], with executor-phase profiling (see
/// [`run_streaming_profiled`] for the span vocabulary).
pub fn run_supervised_profiled<F>(
    specs: &[RunSpec],
    threads: usize,
    prof: &mut Profiler,
    mut consume: F,
) where
    F: FnMut(usize, &RunSpec, RunOutcome),
{
    let n = specs.len();
    let nthreads = resolve_threads(threads).min(n.max(1));
    let sp_reduce = prof.span("exec.reduce");
    if nthreads <= 1 {
        let sp_emulate = prof.span("exec.emulate");
        let mut arena = EmulatorArena::new();
        for (i, spec) in specs.iter().enumerate() {
            let outcome = prof.time(sp_emulate, || supervised_emulate(spec, &mut arena));
            let outcome = outcome.map_err(|message| RunError {
                index: i,
                label: spec.label.clone(),
                message,
            });
            prof.time(sp_reduce, || consume(i, spec, outcome));
        }
        return;
    }

    let sp_wait = prof.span("exec.recv_wait");
    std::thread::scope(|scope| {
        // Worker `w` computes indices w, w+T, w+2T, … in order and streams
        // them through its own bounded channel; the consumer pulls index i
        // from channel i % T, which restores global submission order
        // without any reorder buffer or shared lock.
        let receivers: Vec<_> = (0..nthreads)
            .map(|w| {
                let (tx, rx) =
                    std::sync::mpsc::sync_channel::<Result<EmulationResult, String>>(WORKER_SLACK);
                scope.spawn(move || {
                    let mut arena = EmulatorArena::new();
                    for spec in specs.iter().skip(w).step_by(nthreads) {
                        // A closed channel means the consumer was dropped
                        // (panic unwinding); stop quietly.
                        if tx.send(supervised_emulate(spec, &mut arena)).is_err() {
                            break;
                        }
                    }
                });
                rx
            })
            .collect();
        for (i, spec) in specs.iter().enumerate() {
            let outcome = prof
                .time(sp_wait, || receivers[i % nthreads].recv())
                .expect("worker delivered outcome");
            let outcome = outcome.map_err(|message| RunError {
                index: i,
                label: spec.label.clone(),
                message,
            });
            prof.time(sp_reduce, || consume(i, spec, outcome));
        }
    });
}

/// Run one spec under `catch_unwind`. On panic the arena is replaced
/// with a fresh one (its buffers may have been left mid-mutation by the
/// unwind) and the panic message is returned as the error.
fn supervised_emulate(
    spec: &RunSpec,
    arena: &mut EmulatorArena,
) -> Result<EmulationResult, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| spec.emulate(arena))) {
        Ok(result) => Ok(result),
        Err(payload) => {
            *arena = EmulatorArena::new();
            Err(panic_message(payload))
        }
    }
}

/// Execute all runs and retain every result, in input order. Built on
/// [`run_streaming`]; labels are moved out of the specs, so the only
/// per-run cost beyond the emulation itself is the result push.
pub fn run_all(specs: Vec<RunSpec>, threads: usize) -> Vec<(String, EmulationResult)> {
    let mut results: Vec<EmulationResult> = Vec::with_capacity(specs.len());
    run_streaming(&specs, threads, |_, _, r| results.push(r));
    specs.into_iter().zip(results).map(|(spec, r)| (spec.label, r)).collect()
}

/// The pre-population-executor implementation: per-run `Scenario` clone, a
/// freshly allocated emulator per run, and a `Mutex<Vec<Option<_>>>`
/// result funnel. Kept verbatim as the baseline oracle for the population
/// benchmark (`bce bench` reports the speedup against it) and for
/// differential tests; not intended for new callers.
pub fn run_all_reference(specs: &[RunSpec], threads: usize) -> Vec<(String, EmulationResult)> {
    let nthreads = resolve_threads(threads);
    let n = specs.len();
    let mut results: Vec<Option<(String, EmulationResult)>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mx = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..nthreads.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = &specs[i];
                let result =
                    Emulator::new((*spec.scenario).clone(), spec.client, (*spec.emulator).clone())
                        .run();
                let entry = (spec.label.clone(), result);
                results_mx.lock().expect("results lock")[i] = Some(entry);
            });
        }
    });

    results.into_iter().map(|r| r.expect("all runs completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::{AppClass, Hardware, ProjectSpec, SimDuration};

    fn tiny_scenario(seed: u64) -> Scenario {
        bce_core::ScenarioBuilder::new(format!("tiny{seed}"), Hardware::cpu_only(1, 1e9))
            .seed(seed)
            .project(ProjectSpec::new(0, "p", 100.0).with_app(AppClass::cpu(
                0,
                SimDuration::from_secs(500.0),
                SimDuration::from_hours(4.0),
            )))
            .build_unchecked()
    }

    fn short() -> EmulatorConfig {
        EmulatorConfig { duration: SimDuration::from_hours(3.0), ..Default::default() }
    }

    fn mk_specs(n: u64) -> Vec<RunSpec> {
        let emu = Arc::new(short());
        (0..n)
            .map(|i| {
                RunSpec::new(format!("run{i}"), tiny_scenario(i), ClientConfig::default())
                    .with_emulator(emu.clone())
            })
            .collect()
    }

    #[test]
    fn results_in_submission_order() {
        let results = run_all(mk_specs(8), 4);
        assert_eq!(results.len(), 8);
        for (i, (label, r)) in results.iter().enumerate() {
            assert_eq!(label, &format!("run{i}"));
            assert!(r.jobs_completed > 0);
        }
    }

    #[test]
    fn parallel_equals_serial_on_every_field() {
        let ser = run_all(mk_specs(6), 1);
        for threads in [2, 4, 8] {
            let par = run_all(mk_specs(6), threads);
            for ((la, a), (lb, b)) in par.iter().zip(&ser) {
                assert_eq!(la, lb);
                assert_eq!(
                    a.bit_fingerprint(),
                    b.bit_fingerprint(),
                    "threads={threads} diverged on {la}"
                );
                assert_eq!(a.jobs_completed, b.jobs_completed);
                assert_eq!(a.total_flops_used.to_bits(), b.total_flops_used.to_bits());
            }
        }
    }

    #[test]
    fn streaming_matches_run_all_and_reference() {
        let specs = mk_specs(5);
        let all = run_all(specs.clone(), 3);
        let reference = run_all_reference(&specs, 3);
        let mut streamed: Vec<(usize, String, u64)> = Vec::new();
        run_streaming(&specs, 3, |i, spec, r| {
            streamed.push((i, spec.label.clone(), r.bit_fingerprint()));
        });
        assert_eq!(streamed.len(), all.len());
        for (k, (i, label, fp)) in streamed.iter().enumerate() {
            assert_eq!(*i, k, "submission order");
            assert_eq!(label, &all[k].0);
            assert_eq!(*fp, all[k].1.bit_fingerprint(), "new executor vs run_all");
            assert_eq!(*fp, reference[k].1.bit_fingerprint(), "new executor vs seed oracle");
        }
    }

    #[test]
    fn profiled_streaming_observes_without_perturbing() {
        let specs = mk_specs(6);
        let mut plain: Vec<u64> = Vec::new();
        run_streaming(&specs, 3, |_, _, r| plain.push(r.bit_fingerprint()));
        for threads in [1, 3] {
            let mut prof = Profiler::enabled();
            let mut profiled: Vec<u64> = Vec::new();
            run_streaming_profiled(&specs, threads, &mut prof, |_, _, r| {
                profiled.push(r.bit_fingerprint());
            });
            assert_eq!(profiled, plain, "profiling must not change results (threads={threads})");
            let report = prof.report();
            let reduce = report.span("exec.reduce").expect("reduce span");
            assert_eq!(reduce.count, 6);
            if threads == 1 {
                assert_eq!(report.span("exec.emulate").expect("emulate span").count, 6);
                assert!(report.span("exec.recv_wait").is_none());
            } else {
                assert_eq!(report.span("exec.recv_wait").expect("wait span").count, 6);
                assert!(report.span("exec.emulate").is_none());
            }
        }
    }

    #[test]
    fn streaming_reducer_aggregates_without_retention() {
        let specs = mk_specs(7);
        let mut total_jobs = 0u64;
        let mut count = 0usize;
        run_streaming(&specs, 0, |_, _, r| {
            total_jobs += r.jobs_completed;
            count += 1;
        });
        assert_eq!(count, 7);
        let serial: u64 = run_all(mk_specs(7), 1).iter().map(|(_, r)| r.jobs_completed).sum();
        assert_eq!(total_jobs, serial);
    }

    #[test]
    fn shared_scenario_is_not_cloned() {
        let scenario = Arc::new(tiny_scenario(3));
        let emu = Arc::new(short());
        let specs: Vec<RunSpec> = (0..4)
            .map(|i| {
                RunSpec::new(format!("r{i}"), scenario.clone(), ClientConfig::default())
                    .with_emulator(emu.clone())
            })
            .collect();
        assert_eq!(Arc::strong_count(&scenario), 5);
        let results = run_all(specs, 2);
        assert_eq!(results.len(), 4);
        // All specs (and their temporary emulators) are gone again.
        assert_eq!(Arc::strong_count(&scenario), 1);
    }

    #[test]
    fn empty_specs() {
        assert!(run_all(vec![], 4).is_empty());
        run_streaming(&[], 4, |_, _, _| panic!("no results expected"));
    }

    /// A scenario that reliably panics inside the emulator: a project
    /// with zero apps. `Scenario::validate` rejects it, which is exactly
    /// why the emulator has no defined behaviour for it — constructing it
    /// directly (bypassing the builder) models a corrupted input slipping
    /// into a large campaign.
    fn poison_spec() -> RunSpec {
        let s = bce_core::ScenarioBuilder::new("poison", Hardware::cpu_only(1, 1e9))
            .project(ProjectSpec::new(0, "p", 100.0))
            .build_unchecked();
        RunSpec::new("poison", s, ClientConfig::default()).with_emulator(Arc::new(short()))
    }

    // The quarantined panics below print to stderr via the default
    // hook — noise, but harmless; swapping in a silent global hook
    // would race with other tests.
    #[test]
    fn supervised_quarantines_poison_run_at_every_thread_count() {
        for threads in [1, 2, 8] {
            let mut specs = mk_specs(6);
            specs[3] = poison_spec();
            let mut good: Vec<usize> = Vec::new();
            let mut errors: Vec<RunError> = Vec::new();
            let mut order: Vec<usize> = Vec::new();
            run_supervised(&specs, threads, |i, _, outcome| {
                order.push(i);
                match outcome {
                    Ok(r) => {
                        assert!(r.jobs_completed > 0);
                        good.push(i);
                    }
                    Err(e) => errors.push(e),
                }
            });
            assert_eq!(order, (0..6).collect::<Vec<_>>(), "threads={threads}");
            assert_eq!(good, vec![0, 1, 2, 4, 5], "threads={threads}");
            assert_eq!(errors.len(), 1, "threads={threads}");
            assert_eq!(errors[0].index, 3);
            assert_eq!(errors[0].label, "poison");
            assert!(!errors[0].message.is_empty());
            assert!(errors[0].to_string().contains("run 3 (poison) panicked"));
        }
    }

    #[test]
    fn poisoned_arena_does_not_perturb_later_runs() {
        // The panicking run executes FIRST on its worker's arena; every
        // subsequent run on that arena must still be bit-identical to a
        // clean batch (the executor replaces the poisoned arena).
        let clean = run_all(mk_specs(6), 1);
        for threads in [1, 2] {
            let mut specs = vec![poison_spec()];
            specs.extend(mk_specs(6));
            let mut fps: Vec<(String, u64)> = Vec::new();
            run_supervised(&specs, threads, |_, spec, outcome| {
                if let Ok(r) = outcome {
                    fps.push((spec.label.clone(), r.bit_fingerprint()));
                }
            });
            assert_eq!(fps.len(), 6);
            for ((label, fp), (clean_label, clean_r)) in fps.iter().zip(&clean) {
                assert_eq!(label, clean_label);
                assert_eq!(*fp, clean_r.bit_fingerprint(), "threads={threads}");
            }
        }
    }

    #[test]
    fn unsupervised_executor_aborts_with_context() {
        // run_streaming keeps its all-or-abort contract: the quarantined
        // panic is re-raised on the consuming thread with run context,
        // instead of the old hung-channel failure mode.
        let specs = vec![poison_spec()];
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_streaming(&specs, 1, |_, _, _| {});
        }))
        .expect_err("poison run must abort the unsupervised executor");
        let msg = panic_message(payload);
        assert!(msg.contains("run 0 (poison) panicked"), "{msg}");
    }

    #[test]
    fn checkpointed_run_resumes_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("bce-runckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let every = SimDuration::from_mins(20.0);
        let plain = run_all(mk_specs(1), 1);

        // Simulate a crash: capture the first mid-run checkpoint and drop
        // it under the file name the executor derives for this label.
        let spec = &mk_specs(1)[0];
        let emu = Emulator::new(spec.scenario.clone(), spec.client, spec.emulator.clone());
        let mut captured: Option<CheckpointState> = None;
        emu.run_with_checkpoints_in(&mut EmulatorArena::new(), every, |ckpt| {
            if captured.is_none() {
                captured = Some(ckpt.clone());
            }
        });
        let mid = captured.expect("a mid-run checkpoint");
        assert!(!mid.finished(), "checkpoint must be mid-run for this test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(checkpoint_file_name(&spec.label));
        mid.write_atomic(&path).unwrap();

        // Re-running the same spec with a checkpoint policy must resume
        // from the dropped file, finish bit-identical, and remove it.
        let ckpt_emu = EmulatorConfig {
            checkpoint: Some(CheckpointPolicy { dir: dir.clone(), every }),
            ..short()
        };
        let specs = vec![RunSpec::new("run0", tiny_scenario(0), ClientConfig::default())
            .with_emulator(Arc::new(ckpt_emu))];
        let resumed = run_all(specs.clone(), 1);
        assert_eq!(resumed[0].1.bit_fingerprint(), plain[0].1.bit_fingerprint());
        assert!(!path.exists(), "checkpoint removed after completion");

        // A fresh checkpointed run (no file on disk) is also unchanged.
        let fresh = run_all(specs, 1);
        assert_eq!(fresh[0].1.bit_fingerprint(), plain[0].1.bit_fingerprint());
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_file_names_are_safe_and_distinct() {
        let a = checkpoint_file_name("default/host 17: weird*chars");
        assert!(a.ends_with(".ckpt"));
        assert!(a.chars().all(|c| c.is_ascii_alphanumeric() || "-._".contains(c)));
        assert_ne!(checkpoint_file_name("a/b"), checkpoint_file_name("a_b"));
    }
}

//! Population-scale experiment execution: the controller "does multiple
//! BCE runs and generates graphs summarizing the figures of merit" (§4.3).
//!
//! Runs are independent emulations distributed over OS threads. The
//! executor is built for populations of 100k+ scenarios:
//!
//! * **Zero-clone distribution** — a [`RunSpec`] shares its scenario and
//!   emulator configuration via `Arc`, so fanning N runs out to workers
//!   allocates nothing per run beyond the spec list itself.
//! * **Per-worker emulator reuse** — each worker owns one
//!   [`EmulatorArena`] and drives every run through it, so the event
//!   queue, RR-simulation scratch, task buffers and accounting sample are
//!   allocated once per worker, not once per run.
//! * **No lock on the hot path** — work is split statically (worker `w`
//!   runs spec indices `w, w + T, w + 2T, …`) and each worker streams its
//!   results through its own bounded channel; there is no shared mutex or
//!   result funnel.
//! * **Streaming reduction** — [`run_streaming`] hands each
//!   [`EmulationResult`] to a caller-supplied reducer *in submission
//!   order* as soon as it is available, so a caller that only aggregates
//!   keeps O(workers) results alive instead of O(runs).
//!
//! Determinism contract: every run is a deterministic function of its
//! spec, the reduction happens in submission order on the calling thread,
//! and arenas are cleared between runs — so results (and any reduction
//! over them) are bit-identical across thread counts and between fresh
//! and reused arenas.

use bce_client::ClientConfig;
use bce_core::{EmulationResult, Emulator, EmulatorArena, EmulatorConfig, Scenario};
use bce_obs::Profiler;
use std::sync::Arc;

/// One unit of work: a scenario plus client policy configuration. The
/// scenario and emulator config are shared (`Arc`), so cloning a spec —
/// or building thousands of specs over the same inputs — is O(1) per spec.
#[derive(Clone)]
pub struct RunSpec {
    pub label: String,
    pub scenario: Arc<Scenario>,
    pub client: ClientConfig,
    pub emulator: Arc<EmulatorConfig>,
}

impl RunSpec {
    pub fn new(
        label: impl Into<String>,
        scenario: impl Into<Arc<Scenario>>,
        client: ClientConfig,
    ) -> Self {
        RunSpec {
            label: label.into(),
            scenario: scenario.into(),
            client,
            emulator: Arc::new(EmulatorConfig::default()),
        }
    }

    pub fn with_emulator(mut self, cfg: impl Into<Arc<EmulatorConfig>>) -> Self {
        self.emulator = cfg.into();
        self
    }

    fn emulate(&self, arena: &mut EmulatorArena) -> EmulationResult {
        Emulator::new(self.scenario.clone(), self.client, self.emulator.clone()).run_in(arena)
    }
}

/// Resolve a thread-count argument (0 = one per available CPU).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    }
}

/// Results a worker may buffer ahead of the consumer before blocking.
/// Bounds memory at O(workers × slack) while giving fast workers room to
/// run ahead of an uneven reduction front.
const WORKER_SLACK: usize = 4;

/// Execute every spec, streaming each [`EmulationResult`] into `consume`
/// in submission order, using up to `threads` workers (0 = one per
/// available CPU). Only what the reducer retains outlives the call, so
/// memory stays O(workers) however many specs are swept.
///
/// With one thread this is a plain loop over one arena — no thread is
/// spawned and no synchronization happens at all.
pub fn run_streaming<F>(specs: &[RunSpec], threads: usize, consume: F)
where
    F: FnMut(usize, &RunSpec, EmulationResult),
{
    run_streaming_profiled(specs, threads, &mut Profiler::disabled(), consume)
}

/// As [`run_streaming`], but timing the executor's phases into `prof`:
///
/// * `exec.emulate` — serial path only: the emulations themselves.
/// * `exec.recv_wait` — parallel path: consumer time blocked on worker
///   channels (how far the reduction front trails the workers).
/// * `exec.reduce` — time inside the caller's reducer, which runs on the
///   consuming thread and therefore bounds streaming throughput.
///
/// Profiling observes wall clock only; results (and reduction order) are
/// identical to [`run_streaming`]. A disabled profiler skips all timing.
pub fn run_streaming_profiled<F>(
    specs: &[RunSpec],
    threads: usize,
    prof: &mut Profiler,
    mut consume: F,
) where
    F: FnMut(usize, &RunSpec, EmulationResult),
{
    let n = specs.len();
    let nthreads = resolve_threads(threads).min(n.max(1));
    let sp_reduce = prof.span("exec.reduce");
    if nthreads <= 1 {
        let sp_emulate = prof.span("exec.emulate");
        let mut arena = EmulatorArena::new();
        for (i, spec) in specs.iter().enumerate() {
            let result = prof.time(sp_emulate, || spec.emulate(&mut arena));
            prof.time(sp_reduce, || consume(i, spec, result));
        }
        return;
    }

    let sp_wait = prof.span("exec.recv_wait");
    std::thread::scope(|scope| {
        // Worker `w` computes indices w, w+T, w+2T, … in order and streams
        // them through its own bounded channel; the consumer pulls index i
        // from channel i % T, which restores global submission order
        // without any reorder buffer or shared lock.
        let receivers: Vec<_> = (0..nthreads)
            .map(|w| {
                let (tx, rx) = std::sync::mpsc::sync_channel::<EmulationResult>(WORKER_SLACK);
                scope.spawn(move || {
                    let mut arena = EmulatorArena::new();
                    for spec in specs.iter().skip(w).step_by(nthreads) {
                        // A closed channel means the consumer was dropped
                        // (panic unwinding); stop quietly.
                        if tx.send(spec.emulate(&mut arena)).is_err() {
                            break;
                        }
                    }
                });
                rx
            })
            .collect();
        for (i, spec) in specs.iter().enumerate() {
            let result = prof
                .time(sp_wait, || receivers[i % nthreads].recv())
                .expect("worker delivered result");
            prof.time(sp_reduce, || consume(i, spec, result));
        }
    });
}

/// Execute all runs and retain every result, in input order. Built on
/// [`run_streaming`]; labels are moved out of the specs, so the only
/// per-run cost beyond the emulation itself is the result push.
pub fn run_all(specs: Vec<RunSpec>, threads: usize) -> Vec<(String, EmulationResult)> {
    let mut results: Vec<EmulationResult> = Vec::with_capacity(specs.len());
    run_streaming(&specs, threads, |_, _, r| results.push(r));
    specs.into_iter().zip(results).map(|(spec, r)| (spec.label, r)).collect()
}

/// The pre-population-executor implementation: per-run `Scenario` clone, a
/// freshly allocated emulator per run, and a `Mutex<Vec<Option<_>>>`
/// result funnel. Kept verbatim as the baseline oracle for the population
/// benchmark (`bce bench` reports the speedup against it) and for
/// differential tests; not intended for new callers.
pub fn run_all_reference(specs: &[RunSpec], threads: usize) -> Vec<(String, EmulationResult)> {
    let nthreads = resolve_threads(threads);
    let n = specs.len();
    let mut results: Vec<Option<(String, EmulationResult)>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mx = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..nthreads.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = &specs[i];
                let result =
                    Emulator::new((*spec.scenario).clone(), spec.client, (*spec.emulator).clone())
                        .run();
                let entry = (spec.label.clone(), result);
                results_mx.lock().expect("results lock")[i] = Some(entry);
            });
        }
    });

    results.into_iter().map(|r| r.expect("all runs completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::{AppClass, Hardware, ProjectSpec, SimDuration};

    fn tiny_scenario(seed: u64) -> Scenario {
        Scenario::new(format!("tiny{seed}"), Hardware::cpu_only(1, 1e9))
            .with_seed(seed)
            .with_project(ProjectSpec::new(0, "p", 100.0).with_app(AppClass::cpu(
                0,
                SimDuration::from_secs(500.0),
                SimDuration::from_hours(4.0),
            )))
    }

    fn short() -> EmulatorConfig {
        EmulatorConfig { duration: SimDuration::from_hours(3.0), ..Default::default() }
    }

    fn mk_specs(n: u64) -> Vec<RunSpec> {
        let emu = Arc::new(short());
        (0..n)
            .map(|i| {
                RunSpec::new(format!("run{i}"), tiny_scenario(i), ClientConfig::default())
                    .with_emulator(emu.clone())
            })
            .collect()
    }

    #[test]
    fn results_in_submission_order() {
        let results = run_all(mk_specs(8), 4);
        assert_eq!(results.len(), 8);
        for (i, (label, r)) in results.iter().enumerate() {
            assert_eq!(label, &format!("run{i}"));
            assert!(r.jobs_completed > 0);
        }
    }

    #[test]
    fn parallel_equals_serial_on_every_field() {
        let ser = run_all(mk_specs(6), 1);
        for threads in [2, 4, 8] {
            let par = run_all(mk_specs(6), threads);
            for ((la, a), (lb, b)) in par.iter().zip(&ser) {
                assert_eq!(la, lb);
                assert_eq!(
                    a.bit_fingerprint(),
                    b.bit_fingerprint(),
                    "threads={threads} diverged on {la}"
                );
                assert_eq!(a.jobs_completed, b.jobs_completed);
                assert_eq!(a.total_flops_used.to_bits(), b.total_flops_used.to_bits());
            }
        }
    }

    #[test]
    fn streaming_matches_run_all_and_reference() {
        let specs = mk_specs(5);
        let all = run_all(specs.clone(), 3);
        let reference = run_all_reference(&specs, 3);
        let mut streamed: Vec<(usize, String, u64)> = Vec::new();
        run_streaming(&specs, 3, |i, spec, r| {
            streamed.push((i, spec.label.clone(), r.bit_fingerprint()));
        });
        assert_eq!(streamed.len(), all.len());
        for (k, (i, label, fp)) in streamed.iter().enumerate() {
            assert_eq!(*i, k, "submission order");
            assert_eq!(label, &all[k].0);
            assert_eq!(*fp, all[k].1.bit_fingerprint(), "new executor vs run_all");
            assert_eq!(*fp, reference[k].1.bit_fingerprint(), "new executor vs seed oracle");
        }
    }

    #[test]
    fn profiled_streaming_observes_without_perturbing() {
        let specs = mk_specs(6);
        let mut plain: Vec<u64> = Vec::new();
        run_streaming(&specs, 3, |_, _, r| plain.push(r.bit_fingerprint()));
        for threads in [1, 3] {
            let mut prof = Profiler::enabled();
            let mut profiled: Vec<u64> = Vec::new();
            run_streaming_profiled(&specs, threads, &mut prof, |_, _, r| {
                profiled.push(r.bit_fingerprint());
            });
            assert_eq!(profiled, plain, "profiling must not change results (threads={threads})");
            let report = prof.report();
            let reduce = report.span("exec.reduce").expect("reduce span");
            assert_eq!(reduce.count, 6);
            if threads == 1 {
                assert_eq!(report.span("exec.emulate").expect("emulate span").count, 6);
                assert!(report.span("exec.recv_wait").is_none());
            } else {
                assert_eq!(report.span("exec.recv_wait").expect("wait span").count, 6);
                assert!(report.span("exec.emulate").is_none());
            }
        }
    }

    #[test]
    fn streaming_reducer_aggregates_without_retention() {
        let specs = mk_specs(7);
        let mut total_jobs = 0u64;
        let mut count = 0usize;
        run_streaming(&specs, 0, |_, _, r| {
            total_jobs += r.jobs_completed;
            count += 1;
        });
        assert_eq!(count, 7);
        let serial: u64 = run_all(mk_specs(7), 1).iter().map(|(_, r)| r.jobs_completed).sum();
        assert_eq!(total_jobs, serial);
    }

    #[test]
    fn shared_scenario_is_not_cloned() {
        let scenario = Arc::new(tiny_scenario(3));
        let emu = Arc::new(short());
        let specs: Vec<RunSpec> = (0..4)
            .map(|i| {
                RunSpec::new(format!("r{i}"), scenario.clone(), ClientConfig::default())
                    .with_emulator(emu.clone())
            })
            .collect();
        assert_eq!(Arc::strong_count(&scenario), 5);
        let results = run_all(specs, 2);
        assert_eq!(results.len(), 4);
        // All specs (and their temporary emulators) are gone again.
        assert_eq!(Arc::strong_count(&scenario), 1);
    }

    #[test]
    fn empty_specs() {
        assert!(run_all(vec![], 4).is_empty());
        run_streaming(&[], 4, |_, _, _| panic!("no results expected"));
    }
}

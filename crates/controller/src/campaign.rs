//! Resumable population campaigns: the supervised executor plus a
//! periodic, atomically-written campaign checkpoint, so a 100k-run study
//! killed at run 99,999 restarts from run 99,999 — not from zero — and a
//! single panicking run is quarantined instead of aborting the campaign.
//!
//! The campaign checkpoint holds the completed-run bitmap (which, because
//! reduction happens in submission order, is always a prefix — the
//! parser enforces that invariant), every quarantined [`RunError`], and
//! the full per-policy accumulator state: Welford moments *and* the
//! retained per-metric sample (needed for the exact p95). Restoring it
//! and finishing the remaining runs therefore produces outcomes
//! bit-identical to an uninterrupted study — the same oracle discipline
//! the run-level [`bce_core::CheckpointState`] keeps.
//!
//! Checkpoints are stored through the generation-rotated
//! [`bce_statefile::CheckpointStore`]: each write publishes a CRC-64
//! framed `<path>.<gen>` with the full fsync discipline, the last N
//! generations are kept, and resume opens the newest generation that
//! validates — falling back past a corrupt one with a loud
//! [`RecoveryReport`] instead of failing. A crash mid-write leaves the
//! previous generation intact; damage *after* a write (bit rot, torn
//! rename, power-cut truncation) costs at most one checkpoint interval,
//! not the campaign.

use crate::montecarlo::{population_specs, PolicyAccum, PopulationOutcome};
use crate::run::{run_supervised, RunError};
use crate::sweep::Metric;
use bce_client::ClientConfig;
use bce_core::checkpoint::write_atomic;
use bce_core::{CheckpointError, EmulatorConfig, Scenario};
use bce_sim::OnlineStats;
use bce_statefile::{
    attr_f64_bits, attr_parse, envelope, fmt_f64_bits, open_envelope, parse_u64_hex, req_attr,
    req_child, CheckpointStore, CodecError, IoOp, RecoveryReport, SharedIo, StoreError,
    WriteReceipt, XmlNode, DEFAULT_KEEP_GENERATIONS,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Campaign checkpoint document version.
const VERSION: u32 = 1;
/// Campaign checkpoint document root element.
const ROOT: &str = "bce_campaign";

/// Error starting, checkpointing or resuming a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// Reading, decoding or writing the checkpoint file failed.
    Checkpoint(CheckpointError),
    /// The checkpoint belongs to a different campaign (different
    /// scenarios, policies or emulator horizon); resuming it here could
    /// not reproduce the uninterrupted study.
    Mismatch(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Checkpoint(e) => write!(f, "campaign checkpoint: {e}"),
            CampaignError::Mismatch(what) => {
                write!(f, "campaign checkpoint does not match this study: {what}")
            }
        }
    }
}
impl std::error::Error for CampaignError {}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}
impl From<CodecError> for CampaignError {
    fn from(e: CodecError) -> Self {
        CampaignError::Checkpoint(CheckpointError::Codec(e))
    }
}

/// Map a store failure onto the existing [`CampaignError`] surface, so
/// retry loops keyed on [`CampaignError::Checkpoint`] keep working:
/// filesystem failures stay `Io`, corruption becomes `Corrupt`, and a
/// missing checkpoint stays an `Io` open/NotFound (exactly what the
/// pre-rotation single-file read produced).
fn store_error(base: &Path, e: StoreError) -> CampaignError {
    match e {
        StoreError::Io { op, path, source } => {
            CampaignError::Checkpoint(CheckpointError::Io { op, path, source })
        }
        StoreError::NoCheckpoint => CampaignError::Checkpoint(CheckpointError::Io {
            op: IoOp::Open,
            path: base.to_path_buf(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "no checkpoint found"),
        }),
        StoreError::NoValidGeneration { rejected } => {
            let detail = rejected
                .iter()
                .map(|r| format!("gen {}: {}", r.generation, r.reason))
                .collect::<Vec<_>>()
                .join("; ");
            CampaignError::Checkpoint(CheckpointError::Corrupt {
                path: base.to_path_buf(),
                reason: format!("every checkpoint generation is corrupt ({detail})"),
            })
        }
    }
}

/// Checkpointing/resume options for [`population_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Base path of the campaign checkpoint store; generations live
    /// beside it as `<path>.<gen>` plus a `<path>.manifest` hint. `None`
    /// disables checkpointing (and `resume` is then meaningless).
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint every this many completed runs (0 = only the
    /// final completion checkpoint).
    pub checkpoint_every_runs: usize,
    /// Resume from the newest *valid* generation under `checkpoint_path`
    /// (a bare legacy file is version-sniffed as a last resort). A
    /// missing, mismatched, or all-generations-corrupt store is an error
    /// — silently starting over would discard work the user explicitly
    /// asked to keep.
    pub resume: bool,
    /// Budgeted execution: stop after this many runs (beyond any resumed
    /// prefix), write the checkpoint, and return the partial report.
    /// `None` runs to completion. This is also how tests emulate a kill
    /// deterministically — the on-disk state after `stop_after_runs: k`
    /// is exactly what a SIGKILL after run `k` would have left.
    pub stop_after_runs: Option<usize>,
    /// How many checkpoint generations rotation keeps (clamped to ≥ 1).
    pub keep_generations: usize,
    /// I/O backend for checkpoint storage. `None` is the production
    /// filesystem; chaos tests inject a fault-driven backend here.
    pub io: Option<SharedIo>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            checkpoint_path: None,
            checkpoint_every_runs: 0,
            resume: false,
            stop_after_runs: None,
            keep_generations: DEFAULT_KEEP_GENERATIONS,
            io: None,
        }
    }
}

impl CampaignOptions {
    /// The generation store these options describe, if checkpointing is
    /// enabled. Serve and the CLI use the same construction so "is there
    /// something to resume?" agrees with what the campaign will open.
    pub fn store(&self) -> Option<CheckpointStore> {
        self.checkpoint_path.as_ref().map(|path| match &self.io {
            Some(io) => CheckpointStore::new(path, self.keep_generations, io.clone()),
            None => CheckpointStore::with_real_io(path, self.keep_generations),
        })
    }
}

/// What a (possibly resumed) campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-policy aggregated outcomes, exactly as [`population_study`]
    /// (crate::population_study) would report for the same inputs.
    pub outcomes: Vec<PopulationOutcome>,
    /// Runs quarantined by the supervised executor, in submission order.
    pub errors: Vec<RunError>,
    /// Runs skipped because the checkpoint had already completed them.
    pub resumed_runs: usize,
    /// Runs completed so far (resumed + executed). Less than
    /// `total_runs` only under [`CampaignOptions::stop_after_runs`], in
    /// which case the outcomes aggregate a partial campaign.
    pub completed_runs: usize,
    /// Total runs in the campaign (policies × scenarios).
    pub total_runs: usize,
    /// How the resume opened the store, when it resumed: which
    /// generation, whether corrupt newer generations were skipped
    /// ([`RecoveryReport::recovered`]), whether a legacy unframed file
    /// was loaded. `None` when the campaign did not resume.
    pub recovery: Option<RecoveryReport>,
    /// Mid-flight checkpoint writes that failed (best-effort writes
    /// degrade crash-safety, not the study — but operators should see
    /// the count climbing).
    pub checkpoint_write_failures: u64,
    /// Old generations removed by rotation during this campaign.
    pub generations_pruned: u64,
}

/// One metric's accumulator state: Welford parts plus the retained
/// sample.
#[derive(Debug, Clone)]
struct MetricAccumState {
    parts: (u64, f64, f64, f64, f64),
    values: Vec<f64>,
}

/// A serializable snapshot of a campaign in flight. Opaque outside this
/// module; produced and consumed by [`population_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignCheckpoint {
    fingerprint: u64,
    total: usize,
    completed: usize,
    errors: Vec<RunError>,
    /// `[policy][metric]` accumulator states.
    accums: Vec<Vec<MetricAccumState>>,
}

impl CampaignCheckpoint {
    /// Runs already completed (always a submission-order prefix).
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Total runs in the campaign.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `true` once every run has completed; resuming a complete
    /// checkpoint reproduces the outcomes without emulating anything.
    pub fn is_complete(&self) -> bool {
        self.completed >= self.total
    }

    /// Serialize to the versioned XML document format.
    pub fn to_xml_string(&self) -> String {
        let mut root = envelope(ROOT, VERSION);

        let mut c = XmlNode::new("campaign");
        c.attrs.push(("fingerprint".into(), format!("{:016x}", self.fingerprint)));
        c.attrs.push(("total".into(), self.total.to_string()));
        c.attrs.push(("completed".into(), self.completed.to_string()));
        root.push(c);

        // Completed-run bitmap, one hex word per 64 runs. Redundant with
        // `completed` today (reduction is submission-ordered, so the set
        // is a prefix) but explicit in the format, and verified on load.
        let nwords = self.total.div_ceil(64);
        let mut words = vec![0u64; nwords];
        for i in 0..self.completed {
            words[i / 64] |= 1u64 << (i % 64);
        }
        let text = words.iter().map(|w| format!("{w:016x}")).collect::<Vec<_>>().join(" ");
        root.push(XmlNode::with_text("bitmap", text));

        let mut errs = XmlNode::new("errors");
        for e in &self.errors {
            let mut n = XmlNode::new("error");
            n.attrs.push(("index".into(), e.index.to_string()));
            n.attrs.push(("label".into(), e.label.clone()));
            n.attrs.push(("message".into(), e.message.clone()));
            errs.push(n);
        }
        root.push(errs);

        let mut accums = XmlNode::new("accums");
        for policy in &self.accums {
            let mut p = XmlNode::new("policy");
            for m in policy {
                let (n, mean, m2, min, max) = m.parts;
                let mut node = XmlNode::with_text(
                    "metric",
                    m.values.iter().map(|&v| fmt_f64_bits(v)).collect::<Vec<_>>().join(" "),
                );
                node.attrs.push(("n".into(), n.to_string()));
                node.attrs.push(("mean".into(), fmt_f64_bits(mean)));
                node.attrs.push(("m2".into(), fmt_f64_bits(m2)));
                node.attrs.push(("min".into(), fmt_f64_bits(min)));
                node.attrs.push(("max".into(), fmt_f64_bits(max)));
                p.push(node);
            }
            accums.push(p);
        }
        root.push(accums);
        root.render()
    }

    /// Parse a serialized campaign checkpoint. Malformed input returns
    /// an error, never panics; internal inconsistencies (bitmap not a
    /// prefix, sample length disagreeing with the Welford count) are
    /// rejected too.
    pub fn from_xml_str(src: &str) -> Result<Self, CampaignError> {
        let (_v, root) = open_envelope(src, ROOT, VERSION)?;

        let c = req_child(&root, "campaign")?;
        let fingerprint = parse_u64_hex(req_attr(c, "fingerprint")?)?;
        let total: usize = attr_parse(c, "total")?;
        let completed: usize = attr_parse(c, "completed")?;
        if completed > total {
            return Err(CampaignError::Mismatch(format!(
                "completed {completed} exceeds total {total}"
            )));
        }

        let bitmap = req_child(&root, "bitmap")?;
        let words: Vec<u64> =
            bitmap.text.split_whitespace().map(parse_u64_hex).collect::<Result<_, _>>()?;
        if words.len() != total.div_ceil(64) {
            return Err(CampaignError::Mismatch(format!(
                "bitmap has {} words for {total} runs",
                words.len()
            )));
        }
        for i in 0..total {
            let set = words[i / 64] >> (i % 64) & 1 == 1;
            if set != (i < completed) {
                return Err(CampaignError::Mismatch(format!(
                    "completed-run bitmap is not the prefix of length {completed} (run {i})"
                )));
            }
        }

        let mut errors = Vec::new();
        for n in &req_child(&root, "errors")?.children {
            errors.push(RunError {
                index: attr_parse(n, "index")?,
                label: req_attr(n, "label")?.to_string(),
                message: req_attr(n, "message")?.to_string(),
            });
        }

        let mut accums = Vec::new();
        for p in &req_child(&root, "accums")?.children {
            let mut policy = Vec::new();
            for m in &p.children {
                let n: u64 = attr_parse(m, "n")?;
                let values: Vec<f64> = m
                    .text
                    .split_whitespace()
                    .map(|w| parse_u64_hex(w).map(f64::from_bits))
                    .collect::<Result<_, _>>()?;
                if values.len() as u64 != n {
                    return Err(CampaignError::Mismatch(format!(
                        "metric sample holds {} values but Welford n is {n}",
                        values.len()
                    )));
                }
                policy.push(MetricAccumState {
                    parts: (
                        n,
                        attr_f64_bits(m, "mean")?,
                        attr_f64_bits(m, "m2")?,
                        attr_f64_bits(m, "min")?,
                        attr_f64_bits(m, "max")?,
                    ),
                    values,
                });
            }
            if policy.len() != Metric::ALL.len() {
                return Err(CampaignError::Mismatch(format!(
                    "policy accumulator has {} metrics, expected {}",
                    policy.len(),
                    Metric::ALL.len()
                )));
            }
            accums.push(policy);
        }

        Ok(CampaignCheckpoint { fingerprint, total, completed, errors, accums })
    }

    /// Write a single framed checkpoint file atomically and durably
    /// (shared temp-fsync-rename-fsync protocol). Campaigns themselves
    /// use [`CampaignCheckpoint::write_store`] for generation rotation;
    /// this is the one-file form for tools that manage their own layout.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CampaignError> {
        Ok(write_atomic(path, self.to_xml_string().as_bytes())?)
    }

    /// Publish this checkpoint as the next generation of `store`.
    pub fn write_store(&self, store: &CheckpointStore) -> Result<WriteReceipt, CampaignError> {
        store.write(self.to_xml_string().as_bytes()).map_err(|e| store_error(store.base(), e))
    }

    /// Open the newest generation of `store` that both passes CRC
    /// validation and parses as a campaign checkpoint, falling back past
    /// corrupt ones; the [`RecoveryReport`] says what was skipped.
    pub fn read_store(store: &CheckpointStore) -> Result<(Self, RecoveryReport), CampaignError> {
        store
            .open_latest_with(|text| Self::from_xml_str(text).map_err(|e| e.to_string()))
            .map_err(|e| store_error(store.base(), e))
    }

    /// Read and parse a campaign checkpoint from the store rooted at
    /// `path`, newest valid generation first (a bare legacy file still
    /// loads, version-sniffed).
    pub fn read_from(path: &Path) -> Result<Self, CampaignError> {
        let store = CheckpointStore::with_real_io(path, DEFAULT_KEEP_GENERATIONS);
        Self::read_store(&store).map(|(ckpt, _)| ckpt)
    }

    fn capture(
        fingerprint: u64,
        total: usize,
        completed: usize,
        errors: &[RunError],
        accums: &[PolicyAccum],
    ) -> Self {
        CampaignCheckpoint {
            fingerprint,
            total,
            completed,
            errors: errors.to_vec(),
            accums: accums
                .iter()
                .map(|a| {
                    a.stats
                        .iter()
                        .zip(&a.values)
                        .map(|(s, v)| MetricAccumState { parts: s.parts(), values: v.clone() })
                        .collect()
                })
                .collect(),
        }
    }

    fn restore_accums(&self) -> Vec<PolicyAccum> {
        self.accums
            .iter()
            .map(|policy| PolicyAccum {
                stats: policy
                    .iter()
                    .map(|m| {
                        let (n, mean, m2, min, max) = m.parts;
                        OnlineStats::from_parts(n, mean, m2, min, max)
                    })
                    .collect(),
                values: policy.iter().map(|m| m.values.clone()).collect(),
            })
            .collect()
    }
}

/// Identity of a campaign: every input that determines its results.
/// Thread count is deliberately excluded — results are bit-identical
/// across thread counts, so a campaign may resume with a different `-j`.
fn campaign_fingerprint(
    scenarios: &[Arc<Scenario>],
    policies: &[(String, ClientConfig)],
    emulator: &EmulatorConfig,
) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&(policies.len() as u64).to_le_bytes());
    for (label, _) in policies {
        eat(label.as_bytes());
        eat(&[0]);
    }
    eat(&(scenarios.len() as u64).to_le_bytes());
    for s in scenarios {
        eat(s.name.as_bytes());
        eat(&[0]);
        eat(&s.seed.to_le_bytes());
    }
    eat(&emulator.duration.secs().to_bits().to_le_bytes());
    hash
}

/// Run a population study under the supervised executor, optionally
/// writing periodic campaign checkpoints and resuming from one.
///
/// Outcomes are bit-identical to [`crate::population_study`] over the
/// same inputs when no run panics; panicking runs are quarantined into
/// [`CampaignReport::errors`] and simply absent from the aggregates (each
/// policy's `scenarios_run` counts its successful runs).
pub fn population_campaign(
    scenarios: &[Arc<Scenario>],
    policies: &[(String, ClientConfig)],
    emulator: &EmulatorConfig,
    threads: usize,
    opts: &CampaignOptions,
) -> Result<CampaignReport, CampaignError> {
    let n = scenarios.len();
    let specs = population_specs(scenarios, policies, emulator);
    let total = specs.len();
    let fingerprint = campaign_fingerprint(scenarios, policies, emulator);

    let mut accums: Vec<PolicyAccum> = policies.iter().map(|_| PolicyAccum::new(n)).collect();
    let mut errors: Vec<RunError> = Vec::new();
    let mut start = 0usize;
    let mut recovery: Option<RecoveryReport> = None;
    let store = opts.store();

    if opts.resume {
        let Some(store) = &store else {
            return Err(CampaignError::Mismatch(
                "resume requested without a checkpoint path".into(),
            ));
        };
        let (ckpt, report) = CampaignCheckpoint::read_store(store)?;
        recovery = Some(report);
        if ckpt.fingerprint != fingerprint {
            return Err(CampaignError::Mismatch(
                "fingerprint differs (other scenarios, policies or horizon)".into(),
            ));
        }
        if ckpt.total != total || ckpt.accums.len() != policies.len() {
            return Err(CampaignError::Mismatch(format!(
                "checkpoint shape ({} runs, {} policies) differs from this study ({total} runs, {} policies)",
                ckpt.total,
                ckpt.accums.len(),
                policies.len()
            )));
        }
        start = ckpt.completed;
        errors = ckpt.errors.clone();
        accums = ckpt.restore_accums();
    }

    let stop = opts.stop_after_runs.map_or(total, |k| start.saturating_add(k).min(total));
    let every = opts.checkpoint_every_runs;
    let mut write_failures = 0u64;
    let mut pruned = 0u64;
    run_supervised(&specs[start..stop], threads, |j, _, outcome| {
        let i = start + j;
        match outcome {
            Ok(result) => accums[i / n].push(&result.merit),
            Err(e) => errors.push(RunError { index: i, ..e }),
        }
        let completed = i + 1;
        if let Some(store) = &store {
            if every > 0 && completed.is_multiple_of(every) && completed < stop {
                let ckpt =
                    CampaignCheckpoint::capture(fingerprint, total, completed, &errors, &accums);
                // Best-effort mid-flight: a failed write degrades
                // crash-safety, not the study — but it is counted, so a
                // sick disk shows up in the report and serve's metrics.
                match ckpt.write_store(store) {
                    Ok(receipt) => pruned += receipt.pruned,
                    Err(_) => write_failures += 1,
                }
            }
        }
    });

    if let Some(store) = &store {
        // The final checkpoint (completion, or the stop point under a
        // run budget) is not best-effort: it is the artifact a
        // `--resume` reads.
        let receipt = CampaignCheckpoint::capture(fingerprint, total, stop, &errors, &accums)
            .write_store(store)?;
        pruned += receipt.pruned;
    }

    let outcomes = policies
        .iter()
        .zip(accums)
        .map(|((label, _), accum)| {
            let ok_runs = accum.stats.first().map_or(0, |s| s.count() as usize);
            accum.finish(label, ok_runs)
        })
        .collect();
    Ok(CampaignReport {
        outcomes,
        errors,
        resumed_runs: start,
        completed_runs: stop,
        total_runs: total,
        recovery,
        checkpoint_write_failures: write_failures,
        generations_pruned: pruned,
    })
}

//! Campaign manifests: a JSON file describing scenario refs × policies ×
//! seed ranges, executed through the resumable
//! [`population_campaign`](crate::population_campaign) runner.
//!
//! A manifest is the declarative face of a population study. Scenario
//! refs use the same [`ScenarioSource`] syntax as every CLI `--scenario`
//! flag (`builtin:<name>` or a path, resolved relative to the manifest),
//! plus a `{"sampled": ...}` form that draws hosts from a named
//! [`PopulationModel`]. Running a manifest emits `summary.json` into a
//! run directory: the aggregated figures of merit, the quarantine
//! report, and a `table_fingerprint` (FNV-1a of the rendered population
//! table) that must match an uninterrupted `bce population` reference
//! over the same inputs.

use crate::campaign::{population_campaign, CampaignError, CampaignOptions, CampaignReport};
use crate::montecarlo::{population_table, standard_policies};
use bce_client::{ClientConfig, DeadlineOrder, FetchPolicy, JobSchedPolicy};
use bce_core::{EmulatorConfig, FaultConfig, Scenario, ScenarioBuilder};
use bce_scenarios::{PopulationModel, PopulationSampler, ScenarioSource, SourceError};
use bce_statefile::{parse_json, JsonError, JsonValue};
use bce_types::SimDuration;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Manifest document `format` tag.
pub const MANIFEST_FORMAT: &str = "bce-campaign";
/// Highest manifest `version` this build understands.
pub const MANIFEST_VERSION: u32 = 1;

/// Error parsing or expanding a campaign manifest.
#[derive(Debug)]
pub enum ManifestError {
    Json(JsonError),
    /// A structural problem, located by a dotted path into the document.
    Invalid {
        path: String,
        message: String,
    },
    /// A scenario ref failed to load.
    Source(SourceError),
    /// Two scenario refs carry conflicting fault overlays. A campaign
    /// runs every scenario under one `EmulatorConfig`, so overlays must
    /// agree.
    FaultConflict,
    /// Running the expanded campaign failed.
    Campaign(CampaignError),
    Io(std::io::Error),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Json(e) => write!(f, "manifest: {e}"),
            ManifestError::Invalid { path, message } => write!(f, "manifest {path}: {message}"),
            ManifestError::Source(e) => write!(f, "manifest scenario: {e}"),
            ManifestError::FaultConflict => write!(
                f,
                "manifest scenarios carry conflicting fault overlays; a campaign needs one"
            ),
            ManifestError::Campaign(e) => write!(f, "{e}"),
            ManifestError::Io(e) => write!(f, "manifest i/o: {e}"),
        }
    }
}
impl std::error::Error for ManifestError {}
impl From<JsonError> for ManifestError {
    fn from(e: JsonError) -> Self {
        ManifestError::Json(e)
    }
}
impl From<SourceError> for ManifestError {
    fn from(e: SourceError) -> Self {
        ManifestError::Source(e)
    }
}
impl From<CampaignError> for ManifestError {
    fn from(e: CampaignError) -> Self {
        ManifestError::Campaign(e)
    }
}
impl From<std::io::Error> for ManifestError {
    fn from(e: std::io::Error) -> Self {
        ManifestError::Io(e)
    }
}

/// One scenario reference in a manifest.
#[derive(Debug, Clone)]
enum ScenarioRef {
    /// `"builtin:scenario3"` or a path (relative to the manifest).
    Source(String),
    /// `{"sampled": {"model": ..., "hosts": N, "seed": S}}`.
    Sampled { model: String, hosts: usize, seed: u64 },
}

/// A parsed campaign manifest.
#[derive(Debug, Clone)]
pub struct CampaignManifest {
    pub name: String,
    /// Emulated days per run.
    pub days: f64,
    /// Policy label/config pairs, in document order.
    pub policies: Vec<(String, ClientConfig)>,
    /// Seed overrides: each scenario ref is instantiated once per seed.
    /// Empty = one instance per ref with its own seed.
    pub seeds: Vec<u64>,
    refs: Vec<ScenarioRef>,
    /// Directory scenario paths resolve against.
    base_dir: PathBuf,
}

fn invalid(path: &str, message: impl Into<String>) -> ManifestError {
    ManifestError::Invalid { path: path.to_string(), message: message.into() }
}

fn as_obj<'a>(v: &'a JsonValue, path: &str) -> Result<&'a [(String, JsonValue)], ManifestError> {
    v.as_obj().ok_or_else(|| invalid(path, format!("expected object, found {}", v.type_name())))
}

fn get_req<'a>(
    entries: &'a [(String, JsonValue)],
    path: &str,
    key: &str,
) -> Result<&'a JsonValue, ManifestError> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| invalid(path, format!("missing required key {key:?}")))
}

fn get_opt<'a>(entries: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn reject_unknown(
    entries: &[(String, JsonValue)],
    path: &str,
    known: &[&str],
) -> Result<(), ManifestError> {
    for (k, _) in entries {
        if !known.contains(&k.as_str()) {
            return Err(invalid(path, format!("unknown key {k:?}")));
        }
    }
    Ok(())
}

fn req_str<'a>(
    entries: &'a [(String, JsonValue)],
    path: &str,
    key: &str,
) -> Result<&'a str, ManifestError> {
    let v = get_req(entries, path, key)?;
    v.as_str().ok_or_else(|| {
        invalid(&format!("{path}.{key}"), format!("expected string, found {}", v.type_name()))
    })
}

fn as_f64(v: &JsonValue, path: &str) -> Result<f64, ManifestError> {
    v.as_f64().ok_or_else(|| invalid(path, format!("expected number, found {}", v.type_name())))
}

fn as_u64(v: &JsonValue, path: &str) -> Result<u64, ManifestError> {
    let n = as_f64(v, path)?;
    if n < 0.0 || n.fract() != 0.0 || n > 2f64.powi(53) {
        return Err(invalid(path, format!("expected non-negative integer, got {n}")));
    }
    Ok(n as u64)
}

fn parse_policy(v: &JsonValue, path: &str) -> Result<(String, ClientConfig), ManifestError> {
    let entries = as_obj(v, path)?;
    reject_unknown(entries, path, &["label", "sched", "fetch", "half_life_secs"])?;
    let label = req_str(entries, path, "label")?.to_string();
    let mut cfg = ClientConfig::default();
    if let Some(s) = get_opt(entries, "sched") {
        let p = format!("{path}.sched");
        cfg.sched_policy = match s.as_str().ok_or_else(|| invalid(&p, "expected string"))? {
            "wrr" => JobSchedPolicy::WRR,
            "local" => JobSchedPolicy::LOCAL,
            "global" => JobSchedPolicy::GLOBAL,
            "local-llf" => {
                JobSchedPolicy { deadline_order: DeadlineOrder::Llf, ..JobSchedPolicy::LOCAL }
            }
            "global-dd" => {
                JobSchedPolicy { deadline_order: DeadlineOrder::Density, ..JobSchedPolicy::GLOBAL }
            }
            other => return Err(invalid(&p, format!("unknown scheduling policy {other:?}"))),
        };
    }
    if let Some(fv) = get_opt(entries, "fetch") {
        let p = format!("{path}.fetch");
        cfg.fetch_policy = match fv.as_str().ok_or_else(|| invalid(&p, "expected string"))? {
            "orig" => FetchPolicy::Orig,
            "hysteresis" | "hyst" => FetchPolicy::Hysteresis,
            other => return Err(invalid(&p, format!("unknown fetch policy {other:?}"))),
        };
    }
    if let Some(hl) = get_opt(entries, "half_life_secs") {
        let p = format!("{path}.half_life_secs");
        let secs = as_f64(hl, &p)?;
        if !secs.is_finite() || secs <= 0.0 {
            return Err(invalid(&p, "must be positive"));
        }
        cfg.rec_half_life = SimDuration::from_secs(secs);
    }
    Ok((label, cfg))
}

fn parse_ref(v: &JsonValue, path: &str) -> Result<ScenarioRef, ManifestError> {
    if let Some(s) = v.as_str() {
        return Ok(ScenarioRef::Source(s.to_string()));
    }
    let entries = as_obj(v, path)?;
    reject_unknown(entries, path, &["sampled"])?;
    let sampled = get_req(entries, path, "sampled")?;
    let spath = format!("{path}.sampled");
    let entries = as_obj(sampled, &spath)?;
    reject_unknown(entries, &spath, &["model", "hosts", "seed"])?;
    let model = match get_opt(entries, "model") {
        Some(m) => m
            .as_str()
            .ok_or_else(|| invalid(&format!("{spath}.model"), "expected string"))?
            .to_string(),
        None => "default".to_string(),
    };
    if PopulationModel::named(&model).is_none() {
        return Err(invalid(&format!("{spath}.model"), format!("unknown model {model:?}")));
    }
    let hosts = as_u64(get_req(entries, &spath, "hosts")?, &format!("{spath}.hosts"))? as usize;
    if hosts == 0 {
        return Err(invalid(&format!("{spath}.hosts"), "must be at least 1"));
    }
    let seed = match get_opt(entries, "seed") {
        Some(s) => as_u64(s, &format!("{spath}.seed"))?,
        None => 1,
    };
    Ok(ScenarioRef::Sampled { model, hosts, seed })
}

impl CampaignManifest {
    /// Parse a manifest document. `base_dir` is the directory scenario
    /// paths resolve against (normally the manifest file's parent).
    pub fn parse(src: &str, base_dir: &Path) -> Result<Self, ManifestError> {
        let doc = parse_json(src)?;
        let entries = as_obj(&doc, "manifest")?;
        reject_unknown(
            entries,
            "manifest",
            &["format", "version", "name", "days", "scenarios", "policies", "seeds"],
        )?;
        let format = req_str(entries, "manifest", "format")?;
        if format != MANIFEST_FORMAT {
            return Err(invalid(
                "manifest.format",
                format!("expected {MANIFEST_FORMAT:?}, found {format:?}"),
            ));
        }
        let version = as_u64(get_req(entries, "manifest", "version")?, "manifest.version")?;
        if version == 0 || version > MANIFEST_VERSION as u64 {
            return Err(invalid(
                "manifest.version",
                format!("unsupported version {version} (this build reads <= {MANIFEST_VERSION})"),
            ));
        }
        let name = req_str(entries, "manifest", "name")?.to_string();
        let days = as_f64(get_req(entries, "manifest", "days")?, "manifest.days")?;
        if !(days > 0.0 && days.is_finite()) {
            return Err(invalid("manifest.days", "must be a positive finite number"));
        }

        let sv = get_req(entries, "manifest", "scenarios")?;
        let refs: Vec<ScenarioRef> = sv
            .as_arr()
            .ok_or_else(|| invalid("manifest.scenarios", "expected array"))?
            .iter()
            .enumerate()
            .map(|(i, v)| parse_ref(v, &format!("manifest.scenarios[{i}]")))
            .collect::<Result<_, _>>()?;
        if refs.is_empty() {
            return Err(invalid("manifest.scenarios", "must not be empty"));
        }

        let policies = match get_req(entries, "manifest", "policies")? {
            JsonValue::Str(s) if s == "standard" => standard_policies(),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    return Err(invalid("manifest.policies", "must not be empty"));
                }
                items
                    .iter()
                    .enumerate()
                    .map(|(i, v)| parse_policy(v, &format!("manifest.policies[{i}]")))
                    .collect::<Result<_, _>>()?
            }
            other => {
                return Err(invalid(
                    "manifest.policies",
                    format!("expected \"standard\" or an array, found {}", other.type_name()),
                ))
            }
        };

        let seeds = match get_opt(entries, "seeds") {
            None => Vec::new(),
            Some(JsonValue::Arr(items)) => items
                .iter()
                .enumerate()
                .map(|(i, v)| as_u64(v, &format!("manifest.seeds[{i}]")))
                .collect::<Result<_, _>>()?,
            Some(other) => {
                let entries = as_obj(other, "manifest.seeds")?;
                reject_unknown(entries, "manifest.seeds", &["start", "count"])?;
                let start =
                    as_u64(get_req(entries, "manifest.seeds", "start")?, "manifest.seeds.start")?;
                let count =
                    as_u64(get_req(entries, "manifest.seeds", "count")?, "manifest.seeds.count")?;
                if count == 0 || count > 100_000 {
                    return Err(invalid("manifest.seeds.count", "must be in 1..=100000"));
                }
                (0..count).map(|i| start.wrapping_add(i)).collect()
            }
        };

        Ok(CampaignManifest { name, days, policies, seeds, refs, base_dir: base_dir.to_path_buf() })
    }

    /// Read and parse a manifest file; paths resolve against its parent
    /// directory.
    pub fn read_from(path: &Path) -> Result<Self, ManifestError> {
        let src = std::fs::read_to_string(path)?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        Self::parse(&src, base)
    }

    /// Expand scenario refs × seeds into the concrete scenario list, plus
    /// the single fault overlay the campaign runs under (refs with
    /// conflicting overlays are an error).
    pub fn expand_scenarios(&self) -> Result<(Vec<Arc<Scenario>>, FaultConfig), ManifestError> {
        let mut scenarios = Vec::new();
        let mut faults: Option<FaultConfig> = None;
        for r in &self.refs {
            match r {
                ScenarioRef::Source(raw) => {
                    let source = match ScenarioSource::parse(raw) {
                        ScenarioSource::File(p) if p.is_relative() => {
                            ScenarioSource::File(self.base_dir.join(p))
                        }
                        other => other,
                    };
                    let loaded = source.load()?;
                    if let Some(f) = loaded.faults {
                        match faults {
                            Some(prev) if prev != f => return Err(ManifestError::FaultConflict),
                            _ => faults = Some(f),
                        }
                    }
                    if self.seeds.is_empty() {
                        scenarios.push(Arc::new(loaded.scenario));
                    } else {
                        for &seed in &self.seeds {
                            let name = format!("{}@s{seed}", loaded.scenario.name);
                            let s = ScenarioBuilder::from(loaded.scenario.clone())
                                .seed(seed)
                                .build_unchecked();
                            scenarios.push(Arc::new(Scenario { name, ..s }));
                        }
                    }
                }
                ScenarioRef::Sampled { model, hosts, seed } => {
                    let m = PopulationModel::named(model).expect("validated at parse");
                    let seeds: &[u64] = if self.seeds.is_empty() { &[*seed] } else { &self.seeds };
                    for &s in seeds {
                        let mut sampler = PopulationSampler::new(m.clone(), s);
                        scenarios.extend(sampler.sample_many(*hosts).into_iter().map(Arc::new));
                    }
                }
            }
        }
        Ok((scenarios, faults.unwrap_or(FaultConfig::OFF)))
    }
}

/// What [`run_manifest`] produced: the campaign report plus the rendered
/// table and its fingerprint (the `bce population` cross-check).
#[derive(Debug, Clone)]
pub struct ManifestOutcome {
    pub report: CampaignReport,
    /// `population_table` over the outcomes, rendered.
    pub table: String,
    /// FNV-1a of `table` — must match the same study run via
    /// `bce population`.
    pub table_fingerprint: u64,
    /// The `summary.json` document.
    pub summary: String,
}

/// FNV-1a over raw bytes — the shared table-fingerprint hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Execute a manifest through [`population_campaign`] and assemble the
/// summary document. If `out_dir` is given, writes `summary.json` there
/// (creating the directory) and defaults the campaign checkpoint into it
/// when `opts` names none.
pub fn run_manifest(
    manifest: &CampaignManifest,
    threads: usize,
    opts: &CampaignOptions,
    out_dir: Option<&Path>,
) -> Result<ManifestOutcome, ManifestError> {
    let (scenarios, faults) = manifest.expand_scenarios()?;
    let emulator = EmulatorConfig {
        duration: SimDuration::from_days(manifest.days),
        faults,
        ..Default::default()
    };

    let mut opts = opts.clone();
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir)?;
        if opts.checkpoint_path.is_none() {
            opts.checkpoint_path = Some(dir.join("campaign.ckpt"));
        }
    }

    let report = population_campaign(&scenarios, &manifest.policies, &emulator, threads, &opts)?;
    let table = population_table(&report.outcomes).render();
    let table_fingerprint = fnv64(table.as_bytes());
    let summary = summary_json(manifest, scenarios.len(), &report, table_fingerprint);

    if let Some(dir) = out_dir {
        std::fs::write(dir.join("summary.json"), &summary)?;
        std::fs::write(dir.join("table.txt"), &table)?;
    }
    Ok(ManifestOutcome { report, table, table_fingerprint, summary })
}

/// Render the `summary.json` document for a completed (or budget-stopped)
/// campaign.
pub fn summary_json(
    manifest: &CampaignManifest,
    nscenarios: usize,
    report: &CampaignReport,
    table_fingerprint: u64,
) -> String {
    let outcomes = report
        .outcomes
        .iter()
        .map(|o| {
            let metrics = o
                .per_metric
                .iter()
                .map(|ms| {
                    JsonValue::Obj(vec![
                        ("metric".into(), JsonValue::Str(ms.metric.name().to_string())),
                        ("mean".into(), JsonValue::Num(ms.stats.mean())),
                        ("sd".into(), JsonValue::Num(ms.stats.std_dev())),
                        ("min".into(), JsonValue::Num(ms.stats.min())),
                        ("max".into(), JsonValue::Num(ms.stats.max())),
                        ("p95".into(), JsonValue::Num(ms.p95)),
                    ])
                })
                .collect();
            JsonValue::Obj(vec![
                ("label".into(), JsonValue::Str(o.label.clone())),
                ("scenarios_run".into(), JsonValue::Num(o.scenarios_run as f64)),
                ("metrics".into(), JsonValue::Arr(metrics)),
            ])
        })
        .collect();
    let quarantined = report
        .errors
        .iter()
        .map(|e| {
            JsonValue::Obj(vec![
                ("index".into(), JsonValue::Num(e.index as f64)),
                ("label".into(), JsonValue::Str(e.label.clone())),
                ("message".into(), JsonValue::Str(e.message.clone())),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("format".into(), JsonValue::Str("bce-campaign-summary".into())),
        ("version".into(), JsonValue::Num(1.0)),
        ("name".into(), JsonValue::Str(manifest.name.clone())),
        ("days".into(), JsonValue::Num(manifest.days)),
        ("scenarios".into(), JsonValue::Num(nscenarios as f64)),
        ("total_runs".into(), JsonValue::Num(report.total_runs as f64)),
        ("completed_runs".into(), JsonValue::Num(report.completed_runs as f64)),
        ("resumed_runs".into(), JsonValue::Num(report.resumed_runs as f64)),
        ("quarantined".into(), JsonValue::Arr(quarantined)),
        ("outcomes".into(), JsonValue::Arr(outcomes)),
        ("table_fingerprint".into(), JsonValue::Str(format!("{table_fingerprint:016x}"))),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignCheckpoint;
    use crate::montecarlo::{population_study, standard_population};

    fn minimal(scenarios: &str, extra: &str) -> String {
        format!(
            "{{\n  \"format\": \"bce-campaign\",\n  \"version\": 1,\n  \"name\": \"t\",\n  \
             \"days\": 0.05,\n  \"scenarios\": {scenarios},\n  \"policies\": \"standard\"{extra}\n}}"
        )
    }

    #[test]
    fn parses_the_full_grammar() {
        let src = r#"{
  "format": "bce-campaign",
  "version": 1,
  "name": "nightly",
  "days": 2,
  "scenarios": ["builtin:scenario2", {"sampled": {"model": "boinc2019", "hosts": 3, "seed": 9}}],
  "policies": [
    {"label": "tuned", "sched": "global-dd", "fetch": "hyst", "half_life_secs": 86400},
    {"label": "base", "sched": "local", "fetch": "orig"}
  ],
  "seeds": {"start": 5, "count": 3}
}"#;
        let m = CampaignManifest::parse(src, Path::new(".")).unwrap();
        assert_eq!(m.name, "nightly");
        assert_eq!(m.policies.len(), 2);
        assert_eq!(m.policies[0].0, "tuned");
        assert_eq!(m.seeds, vec![5, 6, 7]);
        let (scenarios, faults) = m.expand_scenarios().unwrap();
        // scenario2 × 3 seeds + sampled 3 hosts × 3 seeds.
        assert_eq!(scenarios.len(), 3 + 9);
        assert_eq!(faults, FaultConfig::OFF);
        assert_eq!(scenarios[0].name, "scenario2@s5");
        assert_eq!(scenarios[0].seed, 5);
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected() {
        let bad = [
            ("{\"format\": \"bce-campaign\"}", "missing"),
            (&minimal("[\"builtin:scenario2\"]", ", \"extra\": 1"), "unknown key"),
            (&minimal("[]", ""), "must not be empty"),
            (&minimal("[\"builtin:scenario2\"]", ", \"seeds\": {\"start\": 1}"), "missing"),
            (&minimal("[{\"sampled\": {\"model\": \"nope\", \"hosts\": 2}}]", ""), "unknown model"),
        ];
        for (src, needle) in bad {
            let err = CampaignManifest::parse(src, Path::new(".")).unwrap_err().to_string();
            assert!(err.contains(needle), "{src} -> {err}");
        }
        let wrong_format = minimal("[\"builtin:scenario2\"]", "").replace("bce-campaign", "x");
        assert!(CampaignManifest::parse(&wrong_format, Path::new(".")).is_err());
    }

    #[test]
    fn relative_paths_resolve_against_the_manifest_dir() {
        let dir = std::env::temp_dir().join(format!("bce-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = bce_core::ScenarioSpec::from_scenario(&bce_scenarios::scenario2());
        std::fs::write(dir.join("s2.json"), spec.to_canonical_json()).unwrap();
        let m = CampaignManifest::parse(&minimal("[\"s2.json\"]", ""), &dir).unwrap();
        let (scenarios, _) = m.expand_scenarios().unwrap();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].projects, bce_scenarios::scenario2().projects);
    }

    #[test]
    fn sampled_manifest_fingerprint_matches_population_reference() {
        // The acceptance cross-check: a manifest over the standard
        // sampled population must fingerprint to the same table as the
        // `bce population` path (population_study over
        // standard_population with standard_policies).
        let src = minimal("[{\"sampled\": {\"hosts\": 3, \"seed\": 1}}]", "");
        let m = CampaignManifest::parse(&src, Path::new(".")).unwrap();
        let out = run_manifest(&m, 0, &CampaignOptions::default(), None).unwrap();

        let scenarios = standard_population(3, 1);
        let emulator =
            EmulatorConfig { duration: SimDuration::from_days(0.05), ..Default::default() };
        let reference =
            population_table(&population_study(&scenarios, &standard_policies(), &emulator, 0))
                .render();
        assert_eq!(out.table, reference);
        assert_eq!(out.table_fingerprint, fnv64(reference.as_bytes()));
        assert!(out.summary.contains(&format!("{:016x}", out.table_fingerprint)));
        assert!(out.summary.contains("\"total_runs\": 6"));
    }

    #[test]
    fn run_manifest_writes_the_run_directory() {
        let dir = std::env::temp_dir().join(format!("bce-manifest-run-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let src = minimal("[\"builtin:scenario2\"]", ", \"seeds\": [4, 5]");
        let m = CampaignManifest::parse(&src, Path::new(".")).unwrap();
        let out = run_manifest(&m, 0, &CampaignOptions::default(), Some(&dir)).unwrap();
        assert_eq!(out.report.total_runs, 4);
        assert_eq!(out.report.completed_runs, 4);
        let summary = std::fs::read_to_string(dir.join("summary.json")).unwrap();
        assert_eq!(summary, out.summary);
        let parsed = parse_json(&summary).unwrap();
        assert_eq!(parsed.get("format").and_then(|v| v.as_str()), Some("bce-campaign-summary"));
        // Rotation writes generation files, not the bare base path.
        assert!(dir.join("campaign.ckpt.1").exists());
        assert!(CampaignCheckpoint::read_from(&dir.join("campaign.ckpt")).is_ok());
        assert!(dir.join("table.txt").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

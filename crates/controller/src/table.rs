//! Aligned text tables for experiment reports.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest
                // (numbers read better right-aligned).
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: quotes around cells containing commas
    /// or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 4 significant decimals, trimming noise.
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1.0".into()]);
        t.row(&["b".into(), "123.456".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        // Right-aligned value column: both rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.nrows(), 2);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f(0.12345), "0.1235");
        assert_eq!(f2(3.14159), "3.14");
    }
}

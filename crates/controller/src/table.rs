//! Aligned text tables for experiment reports.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest
                // (numbers read better right-aligned).
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: quotes around cells containing commas
    /// or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Render as a JSON array of row objects keyed by the header. Cells
    /// that parse as finite numbers are emitted as JSON numbers, everything
    /// else as strings — so downstream tooling can consume figures without
    /// a CSV parser.
    pub fn to_json(&self) -> String {
        let esc = |s: &str| -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        };
        let value = |s: &str| -> String {
            match s.parse::<f64>() {
                // `parse` accepts "nan"/"inf"; JSON has no spelling for
                // them, so only finite numbers pass through unquoted.
                Ok(v) if v.is_finite() => s.to_string(),
                _ => esc(s),
            }
        };
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("  { ");
            for (j, (h, cell)) in self.header.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", esc(h), value(cell)));
            }
            out.push_str(if i + 1 < self.rows.len() { " },\n" } else { " }\n" });
        }
        out.push(']');
        out
    }
}

/// Format a float with 4 significant decimals, trimming noise.
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1.0".into()]);
        t.row(&["b".into(), "123.456".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        // Right-aligned value column: both rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.nrows(), 2);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn json_rows() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha \"x\"".into(), "1.5".into()]);
        t.row(&["beta".into(), "n/a".into()]);
        let j = t.to_json();
        assert!(j.contains("\"name\": \"alpha \\\"x\\\"\", \"value\": 1.5"));
        assert!(j.contains("\"value\": \"n/a\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        // "nan"/"inf" parse as f64 but must stay strings.
        let mut t = Table::new(&["v"]);
        t.row(&["nan".into()]);
        assert!(t.to_json().contains("\"v\": \"nan\""));
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f(0.12345), "0.1235");
        assert_eq!(f2(3.17159), "3.17");
    }
}

//! ASCII plots — the controller "generates graphs summarizing the figures
//! of merit" (§4.3); ours render in the terminal.

use std::fmt::Write as _;

/// A named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.into(), points }
    }
}

/// Render one or more series as an ASCII scatter/line chart.
/// Each series gets a marker (`*`, `o`, `+`, `x`, …).
pub fn line_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    const MARKERS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() || width < 8 || height < 3 {
        return format!("{title}\n(no data)\n");
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < 1e-300 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-300 {
        ymax = ymin + 1.0;
    }
    // A little headroom on y.
    let ypad = (ymax - ymin) * 0.05;
    let (ymin, ymax) = (ymin - ypad, ymax + ypad);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let m = MARKERS[si % MARKERS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = m;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "y: {ymin:.4} .. {ymax:.4}");
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let _ = writeln!(out, " x: {xmin:.4} .. {xmax:.4}");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} = {}", MARKERS[si % MARKERS.len()], s.name);
    }
    out
}

/// Render labelled values as a horizontal bar chart (values >= 0).
pub fn bar_chart(title: &str, bars: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if bars.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let maxv = bars.iter().map(|(_, v)| *v).fold(0.0f64, f64::max).max(1e-300);
    let label_w = bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, v) in bars {
        let n = ((v / maxv) * width as f64).round() as usize;
        let _ = writeln!(out, "{label:<label_w$} | {:<width$} {v:.4}", "█".repeat(n.min(width)),);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_marks_extremes() {
        let s = Series::new("a", vec![(0.0, 0.0), (1.0, 1.0)]);
        let out = line_chart("t", &[s], 20, 5);
        assert!(out.contains("t\n"));
        assert!(out.contains('*'));
        assert!(out.contains("= a"));
        // Two points on opposite corners.
        let rows: Vec<&str> = out.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(rows.len(), 5);
        assert!(rows[0].contains('*'), "top row has max point");
        assert!(rows[4].contains('*'), "bottom row has min point");
    }

    #[test]
    fn multiple_series_distinct_markers() {
        let a = Series::new("a", vec![(0.0, 0.0)]);
        let b = Series::new("b", vec![(1.0, 1.0)]);
        let out = line_chart("t", &[a, b], 20, 5);
        assert!(out.contains('*') && out.contains('o'));
    }

    #[test]
    fn empty_chart() {
        assert!(line_chart("t", &[], 20, 5).contains("no data"));
    }

    #[test]
    fn degenerate_ranges_no_panic() {
        let s = Series::new("a", vec![(2.0, 3.0), (2.0, 3.0)]);
        let out = line_chart("t", &[s], 10, 4);
        assert!(out.contains('*'));
    }

    #[test]
    fn bar_chart_scales() {
        let bars = vec![("one".to_string(), 1.0), ("two".to_string(), 2.0)];
        let out = bar_chart("bars", &bars, 10);
        let one_len = out.lines().find(|l| l.starts_with("one")).unwrap().matches('█').count();
        let two_len = out.lines().find(|l| l.starts_with("two")).unwrap().matches('█').count();
        assert_eq!(two_len, 10);
        assert_eq!(one_len, 5);
    }
}

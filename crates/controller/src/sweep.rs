//! Parameter sweeps: "do a parameter sweep over a scenario parameter"
//! (§4.3). A sweep evaluates one or more policy configurations at each
//! value of a scenario parameter and collects the figures of merit as
//! series ready for plotting/tabulation — this is what regenerates
//! Figures 3 and 6.

use crate::plot::Series;
use crate::run::{run_all, RunSpec};
use crate::table::{f, Table};
use bce_client::ClientConfig;
use bce_core::{EmulationResult, EmulatorConfig, FiguresOfMerit, Scenario};
use std::sync::Arc;

/// Which figure of merit a series extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    Idle,
    Wasted,
    ShareViolation,
    Monotony,
    RpcsPerJob,
}

impl Metric {
    pub fn extract(&self, m: &FiguresOfMerit) -> f64 {
        match self {
            Metric::Idle => m.idle_fraction,
            Metric::Wasted => m.wasted_fraction,
            Metric::ShareViolation => m.share_violation,
            Metric::Monotony => m.monotony,
            Metric::RpcsPerJob => m.rpcs_per_job,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Metric::Idle => "idle",
            Metric::Wasted => "wasted",
            Metric::ShareViolation => "share_violation",
            Metric::Monotony => "monotony",
            Metric::RpcsPerJob => "rpcs_per_job",
        }
    }

    pub const ALL: [Metric; 5] = [
        Metric::Idle,
        Metric::Wasted,
        Metric::ShareViolation,
        Metric::Monotony,
        Metric::RpcsPerJob,
    ];
}

/// Results of a sweep: for each policy, for each parameter value, the full
/// emulation result.
pub struct SweepResult {
    pub param_name: String,
    pub params: Vec<f64>,
    /// One row per policy: `(label, results by param index)`.
    pub by_policy: Vec<(String, Vec<EmulationResult>)>,
}

impl SweepResult {
    /// One plot series per policy for the given metric.
    pub fn series(&self, metric: Metric) -> Vec<Series> {
        self.by_policy
            .iter()
            .map(|(label, results)| {
                Series::new(
                    label.clone(),
                    self.params
                        .iter()
                        .zip(results)
                        .map(|(&x, r)| (x, metric.extract(&r.merit)))
                        .collect(),
                )
            })
            .collect()
    }

    /// Table: one row per parameter value, one column per policy.
    pub fn table(&self, metric: Metric) -> Table {
        let mut header: Vec<&str> = vec![self.param_name.as_str()];
        let labels: Vec<&str> = self.by_policy.iter().map(|(l, _)| l.as_str()).collect();
        header.extend(&labels);
        let mut t = Table::new(&header);
        for (i, &p) in self.params.iter().enumerate() {
            let mut row = vec![f(p)];
            for (_, results) in &self.by_policy {
                row.push(f(metric.extract(&results[i].merit)));
            }
            t.row(&row);
        }
        t
    }
}

/// Run a sweep. `make_scenario(param)` builds the scenario for a value;
/// each `(label, config)` policy is evaluated at every value.
pub fn sweep(
    param_name: &str,
    params: &[f64],
    policies: &[(String, ClientConfig)],
    emulator: &EmulatorConfig,
    threads: usize,
    make_scenario: impl Fn(f64) -> Scenario,
) -> SweepResult {
    // Build each parameter's scenario exactly once; every policy shares it.
    let scenarios: Vec<Arc<Scenario>> =
        params.iter().map(|&p| Arc::new(make_scenario(p))).collect();
    let emulator = Arc::new(emulator.clone());
    let mut specs = Vec::new();
    for (label, client) in policies {
        for (&p, scenario) in params.iter().zip(&scenarios) {
            specs.push(
                RunSpec::new(format!("{label}@{p}"), scenario.clone(), *client)
                    .with_emulator(emulator.clone()),
            );
        }
    }
    let results = run_all(specs, threads);
    let mut by_policy = Vec::new();
    let mut it = results.into_iter();
    for (label, _) in policies {
        let row: Vec<EmulationResult> =
            (0..params.len()).map(|_| it.next().expect("result per spec").1).collect();
        by_policy.push((label.clone(), row));
    }
    SweepResult { param_name: param_name.to_string(), params: params.to_vec(), by_policy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_client::{FetchPolicy, JobSchedPolicy};
    use bce_types::{AppClass, Hardware, ProjectSpec, SimDuration};

    fn scenario(runtime: f64) -> Scenario {
        bce_core::ScenarioBuilder::new("sweep-test", Hardware::cpu_only(1, 1e9))
            .seed(9)
            .project(ProjectSpec::new(0, "p", 100.0).with_app(AppClass::cpu(
                0,
                SimDuration::from_secs(runtime),
                SimDuration::from_hours(8.0),
            )))
            .build_unchecked()
    }

    #[test]
    fn sweep_shapes() {
        let policies = vec![
            (
                "GLOBAL".to_string(),
                ClientConfig { sched_policy: JobSchedPolicy::GLOBAL, ..Default::default() },
            ),
            (
                "ORIG".to_string(),
                ClientConfig { fetch_policy: FetchPolicy::Orig, ..Default::default() },
            ),
        ];
        let emu = EmulatorConfig { duration: SimDuration::from_hours(2.0), ..Default::default() };
        let params = [500.0, 1000.0];
        let r = sweep("runtime", &params, &policies, &emu, 0, scenario);
        assert_eq!(r.by_policy.len(), 2);
        assert_eq!(r.by_policy[0].1.len(), 2);
        let series = r.series(Metric::Idle);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].points.len(), 2);
        assert_eq!(series[0].points[0].0, 500.0);
        let t = r.table(Metric::RpcsPerJob);
        assert_eq!(t.nrows(), 2);
        let rendered = t.render();
        assert!(rendered.contains("GLOBAL"));
        assert!(rendered.contains("runtime"));
    }

    #[test]
    fn metric_extraction() {
        let m = FiguresOfMerit {
            idle_fraction: 0.1,
            wasted_fraction: 0.2,
            share_violation: 0.3,
            monotony: 0.4,
            rpcs_per_job: 5.0,
        };
        assert_eq!(Metric::Idle.extract(&m), 0.1);
        assert_eq!(Metric::Wasted.extract(&m), 0.2);
        assert_eq!(Metric::ShareViolation.extract(&m), 0.3);
        assert_eq!(Metric::Monotony.extract(&m), 0.4);
        assert_eq!(Metric::RpcsPerJob.extract(&m), 5.0);
        for m2 in Metric::ALL {
            assert!(!m2.name().is_empty());
        }
    }
}

//! Policy comparison matrices: "compare scheduling policies across one or
//! more scenarios" (§4.3). This regenerates the Figure 4 / Figure 5 style
//! results (grouped bars of the figures of merit per policy).

use crate::plot::bar_chart;
use crate::run::{run_all, RunSpec};
use crate::sweep::Metric;
use crate::table::{f, Table};
use bce_client::ClientConfig;
use bce_core::{EmulationResult, EmulatorConfig, Scenario};

/// Results of comparing policies on one scenario.
pub struct Comparison {
    pub scenario_name: String,
    pub results: Vec<(String, EmulationResult)>,
}

impl Comparison {
    /// Table with one row per policy and one column per figure of merit.
    pub fn table(&self) -> Table {
        let mut t = Table::new(&[
            "policy",
            "idle",
            "wasted",
            "share_viol",
            "monotony",
            "rpcs/job",
            "jobs",
            "missed",
        ]);
        for (label, r) in &self.results {
            t.row(&[
                label.clone(),
                f(r.merit.idle_fraction),
                f(r.merit.wasted_fraction),
                f(r.merit.share_violation),
                f(r.merit.monotony),
                format!("{:.3}", r.merit.rpcs_per_job),
                r.jobs_completed.to_string(),
                r.jobs_missed_deadline.to_string(),
            ]);
        }
        t
    }

    /// Bar chart of one metric across the compared policies.
    pub fn bars(&self, metric: Metric, width: usize) -> String {
        let bars: Vec<(String, f64)> = self
            .results
            .iter()
            .map(|(label, r)| (label.clone(), metric.extract(&r.merit)))
            .collect();
        bar_chart(&format!("{} — {}", self.scenario_name, metric.name()), &bars, width)
    }

    pub fn get(&self, label: &str) -> Option<&EmulationResult> {
        self.results.iter().find(|(l, _)| l == label).map(|(_, r)| r)
    }
}

/// Run every `(label, config)` policy against `scenario`.
pub fn compare_policies(
    scenario: &Scenario,
    policies: &[(String, ClientConfig)],
    emulator: &EmulatorConfig,
    threads: usize,
) -> Comparison {
    let scenario = std::sync::Arc::new(scenario.clone());
    let emulator = std::sync::Arc::new(emulator.clone());
    let specs: Vec<RunSpec> = policies
        .iter()
        .map(|(label, client)| {
            RunSpec::new(label.clone(), scenario.clone(), *client).with_emulator(emulator.clone())
        })
        .collect();
    Comparison { scenario_name: scenario.name.clone(), results: run_all(specs, threads) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_client::JobSchedPolicy;
    use bce_types::{AppClass, Hardware, ProjectSpec, SimDuration};

    fn scenario() -> Scenario {
        bce_core::ScenarioBuilder::new("cmp", Hardware::cpu_only(2, 1e9))
            .seed(5)
            .project(ProjectSpec::new(0, "a", 100.0).with_app(AppClass::cpu(
                0,
                SimDuration::from_secs(600.0),
                SimDuration::from_hours(8.0),
            )))
            .project(ProjectSpec::new(1, "b", 100.0).with_app(AppClass::cpu(
                1,
                SimDuration::from_secs(600.0),
                SimDuration::from_hours(8.0),
            )))
            .build_unchecked()
    }

    #[test]
    fn comparison_runs_and_renders() {
        let policies = vec![
            (
                "JS-LOCAL".to_string(),
                ClientConfig { sched_policy: JobSchedPolicy::LOCAL, ..Default::default() },
            ),
            (
                "JS-GLOBAL".to_string(),
                ClientConfig { sched_policy: JobSchedPolicy::GLOBAL, ..Default::default() },
            ),
        ];
        let emu = EmulatorConfig { duration: SimDuration::from_hours(3.0), ..Default::default() };
        let c = compare_policies(&scenario(), &policies, &emu, 0);
        assert_eq!(c.results.len(), 2);
        assert!(c.get("JS-LOCAL").is_some());
        assert!(c.get("nope").is_none());
        let table = c.table().render();
        assert!(table.contains("JS-LOCAL") && table.contains("JS-GLOBAL"));
        let bars = c.bars(Metric::Idle, 30);
        assert!(bars.contains("idle"));
    }
}

//! Deterministic disk-fault streams for the durable checkpoint store.
//!
//! Volunteer hosts lose checkpoints to every storage failure mode there
//! is: interrupted writes, full disks, flaky media, renames torn by a
//! power cut before the metadata journal commits. The checkpoint store
//! (`bce-statefile`) is built to survive all of them; this module
//! supplies the *seeded* fault schedule its chaos tests and the
//! `bce chaos` CLI run under, following the same discipline as the
//! emulation-level fault processes in [`crate::plan`]:
//!
//! * **Determinism** — every decision draws from one named RNG stream
//!   (`fault-disk`) derived from a chaos seed, so a failing schedule is
//!   replayable bit-for-bit from its seed alone.
//! * **Zero-fault identity** — with [`DiskFaultConfig::OFF`] no stream
//!   is created or sampled; the fault-injecting I/O backend behaves
//!   exactly like the real one.

use bce_sim::Rng;

/// Probabilities for each injected disk-fault class, drawn independently
/// per I/O operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaultConfig {
    /// A write fails with `EIO` after a uniformly random prefix of the
    /// bytes has reached the file.
    pub write_eio_prob: f64,
    /// A write fails with `ENOSPC` (disk full) after a random prefix.
    pub write_enospc_prob: f64,
    /// Power-cut truncation: the write *reports success* but only a
    /// random prefix survives — the firmware acknowledged data it never
    /// persisted. Corruption detection, not error handling, must catch
    /// this one.
    pub power_cut_prob: f64,
    /// Torn rename: the rename *reports success* but the destination is
    /// left holding a truncated prefix of the source — a non-atomic
    /// metadata journal replayed halfway.
    pub torn_rename_prob: f64,
    /// A read fails with `EIO` (flaky media; transient).
    pub read_eio_prob: f64,
}

impl DiskFaultConfig {
    /// Everything disabled: the fault-injecting backend is inert.
    pub const OFF: DiskFaultConfig = DiskFaultConfig {
        write_eio_prob: 0.0,
        write_enospc_prob: 0.0,
        power_cut_prob: 0.0,
        torn_rename_prob: 0.0,
        read_eio_prob: 0.0,
    };

    pub fn enabled(&self) -> bool {
        self.write_eio_prob > 0.0
            || self.write_enospc_prob > 0.0
            || self.power_cut_prob > 0.0
            || self.torn_rename_prob > 0.0
            || self.read_eio_prob > 0.0
    }

    fn validate(&self) {
        for (name, p) in [
            ("write_eio_prob", self.write_eio_prob),
            ("write_enospc_prob", self.write_enospc_prob),
            ("power_cut_prob", self.power_cut_prob),
            ("torn_rename_prob", self.torn_rename_prob),
            ("read_eio_prob", self.read_eio_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1], got {p}");
        }
    }
}

impl Default for DiskFaultConfig {
    fn default() -> Self {
        DiskFaultConfig::OFF
    }
}

/// Outcome of one planned write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write completes normally.
    Ok,
    /// Fail with `EIO` after `surviving` bytes reached the file.
    Eio { surviving: usize },
    /// Fail with `ENOSPC` after `surviving` bytes reached the file.
    Enospc { surviving: usize },
    /// Report success, but only `surviving` bytes actually persist.
    PowerCut { surviving: usize },
}

/// Outcome of one planned rename attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameFault {
    /// The rename is atomic, as promised.
    Ok,
    /// Report success, but the destination holds only `surviving` bytes
    /// of the source.
    Torn { surviving: usize },
}

/// Outcome of one planned read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    Ok,
    Eio,
}

/// Count of faults actually injected, by class — the chaos harness
/// reports these so "survived N injected faults" is a checkable claim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskFaultStats {
    pub write_eio: u64,
    pub write_enospc: u64,
    pub power_cuts: u64,
    pub torn_renames: u64,
    pub read_eio: u64,
}

impl DiskFaultStats {
    pub fn total(&self) -> u64 {
        self.write_eio + self.write_enospc + self.power_cuts + self.torn_renames + self.read_eio
    }
}

impl std::fmt::Display for DiskFaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "write-eio {} enospc {} power-cuts {} torn-renames {} read-eio {}",
            self.write_eio, self.write_enospc, self.power_cuts, self.torn_renames, self.read_eio
        )
    }
}

/// A seeded schedule of disk faults: one decision per I/O operation, in
/// operation order, drawn from the `fault-disk` stream.
#[derive(Debug, Clone)]
pub struct DiskFaultPlan {
    cfg: DiskFaultConfig,
    rng: Rng,
    stats: DiskFaultStats,
}

impl DiskFaultPlan {
    pub fn new(seed: u64, cfg: DiskFaultConfig) -> Self {
        cfg.validate();
        DiskFaultPlan {
            cfg,
            rng: Rng::stream(seed, "fault-disk"),
            stats: DiskFaultStats::default(),
        }
    }

    /// Plan one write of `len` bytes. Fault classes are tried in a fixed
    /// order (EIO, ENOSPC, power cut) so a given seed yields a stable
    /// schedule.
    pub fn plan_write(&mut self, len: usize) -> WriteFault {
        if !self.cfg.enabled() {
            return WriteFault::Ok;
        }
        if self.cfg.write_eio_prob > 0.0 && self.rng.chance(self.cfg.write_eio_prob) {
            self.stats.write_eio += 1;
            return WriteFault::Eio { surviving: self.cut_point(len) };
        }
        if self.cfg.write_enospc_prob > 0.0 && self.rng.chance(self.cfg.write_enospc_prob) {
            self.stats.write_enospc += 1;
            return WriteFault::Enospc { surviving: self.cut_point(len) };
        }
        if self.cfg.power_cut_prob > 0.0 && self.rng.chance(self.cfg.power_cut_prob) {
            self.stats.power_cuts += 1;
            return WriteFault::PowerCut { surviving: self.cut_point(len) };
        }
        WriteFault::Ok
    }

    /// Plan one rename of a file holding `len` bytes.
    pub fn plan_rename(&mut self, len: usize) -> RenameFault {
        if self.cfg.torn_rename_prob > 0.0 && self.rng.chance(self.cfg.torn_rename_prob) {
            self.stats.torn_renames += 1;
            return RenameFault::Torn { surviving: self.cut_point(len) };
        }
        RenameFault::Ok
    }

    /// Plan one read.
    pub fn plan_read(&mut self) -> ReadFault {
        if self.cfg.read_eio_prob > 0.0 && self.rng.chance(self.cfg.read_eio_prob) {
            self.stats.read_eio += 1;
            return ReadFault::Eio;
        }
        ReadFault::Ok
    }

    /// How many bytes survive a cut: uniform over `0..len` (strictly
    /// short — a cut that preserves everything would be no fault).
    fn cut_point(&mut self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        ((self.rng.uniform() * len as f64) as usize).min(len - 1)
    }

    /// Faults injected so far.
    pub fn stats(&self) -> DiskFaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_is_inert_and_never_draws() {
        let mut plan = DiskFaultPlan::new(1, DiskFaultConfig::OFF);
        let before = plan.rng.state();
        for _ in 0..100 {
            assert_eq!(plan.plan_write(100), WriteFault::Ok);
            assert_eq!(plan.plan_rename(100), RenameFault::Ok);
            assert_eq!(plan.plan_read(), ReadFault::Ok);
        }
        assert_eq!(plan.rng.state(), before, "OFF plan must not advance its stream");
        assert_eq!(plan.stats().total(), 0);
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        let cfg = DiskFaultConfig {
            write_eio_prob: 0.2,
            write_enospc_prob: 0.2,
            power_cut_prob: 0.1,
            torn_rename_prob: 0.3,
            read_eio_prob: 0.1,
        };
        let drive = |seed| {
            let mut plan = DiskFaultPlan::new(seed, cfg);
            let mut seq = Vec::new();
            for i in 0..200 {
                seq.push((plan.plan_write(1000 + i), plan.plan_rename(500), plan.plan_read()));
            }
            (seq, plan.stats())
        };
        assert_eq!(drive(7), drive(7));
        assert_ne!(drive(7).0, drive(8).0, "different seeds must differ somewhere");
        let (_, stats) = drive(7);
        assert!(stats.write_eio > 0 && stats.torn_renames > 0, "{stats}");
    }

    #[test]
    fn cut_points_are_strictly_short() {
        let cfg = DiskFaultConfig { power_cut_prob: 1.0, ..DiskFaultConfig::OFF };
        let mut plan = DiskFaultPlan::new(3, cfg);
        for _ in 0..200 {
            match plan.plan_write(64) {
                WriteFault::PowerCut { surviving } => assert!(surviving < 64),
                other => panic!("expected a power cut, got {other:?}"),
            }
        }
        assert_eq!(plan.plan_write(0), WriteFault::PowerCut { surviving: 0 });
    }

    #[test]
    #[should_panic(expected = "write_eio_prob")]
    fn bad_probability_is_rejected() {
        DiskFaultPlan::new(1, DiskFaultConfig { write_eio_prob: 1.5, ..DiskFaultConfig::OFF });
    }
}

//! Deterministic fault processes.
//!
//! Every process draws from its own named `bce-sim` RNG stream, so fault
//! sequences are (a) reproducible for a given scenario seed and (b)
//! independent of each other and of every other stochastic element of the
//! emulation — enabling the zero-fault identity guarantee: with all rates at
//! zero, no stream is ever created or drawn from, and the emulation is
//! bit-identical to one with no fault plumbing at all.

use crate::retry::RetryPolicy;
use bce_sim::{Distribution, Exponential, Rng};
use bce_types::{ProjectId, SimDuration, SimTime};

/// All fault-injection knobs for one emulation run. `FaultConfig::OFF`
/// (the `Default`) disables everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that any given scheduler RPC fails in transit (the
    /// request never reaches the server), independent per RPC.
    pub rpc_fail_prob: f64,
    /// Probability that any given file-transfer attempt fails mid-flight at
    /// a uniformly random byte position.
    pub transfer_fail_prob: f64,
    /// Mean time between host crashes (exponential inter-arrivals). A crash
    /// discards all running-task progress since the last checkpoint and
    /// restarts in-flight transfers from byte zero. `None` disables crashes.
    pub crash_mtbf: Option<SimDuration>,
    /// Backoff policy for transient RPC communication failures. Distinct
    /// from the scheduled-downtime backoff so the two failure modes can take
    /// different paths.
    pub rpc_retry: RetryPolicy,
    /// Backoff/give-up policy for failed transfers.
    pub transfer_retry: RetryPolicy,
}

impl FaultConfig {
    /// Everything disabled: the emulator behaves bit-identically to one
    /// without fault plumbing.
    pub const OFF: FaultConfig = FaultConfig {
        rpc_fail_prob: 0.0,
        transfer_fail_prob: 0.0,
        crash_mtbf: None,
        rpc_retry: RetryPolicy::SCHEDULER_RPC,
        transfer_retry: RetryPolicy::TRANSFER,
    };

    /// Convenience: the same transient-failure probability for RPCs and
    /// transfers, no crashes, default policies.
    pub fn with_failure_rate(rate: f64) -> FaultConfig {
        assert!((0.0..=1.0).contains(&rate), "failure rate must be in [0, 1], got {rate}");
        FaultConfig { rpc_fail_prob: rate, transfer_fail_prob: rate, ..FaultConfig::OFF }
    }

    pub fn enabled(&self) -> bool {
        self.rpc_fail_prob > 0.0 || self.transfer_fail_prob > 0.0 || self.crash_mtbf.is_some()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::OFF
    }
}

/// Per-project transient scheduler-RPC failure process.
///
/// Each project gets its own stream (`fault-rpc-<id>`), so adding a project
/// to a scenario cannot perturb another project's fault sequence.
#[derive(Debug, Clone)]
pub struct RpcFaultInjector {
    prob: f64,
    streams: Vec<(ProjectId, Rng)>,
}

impl RpcFaultInjector {
    pub fn new(seed: u64, prob: f64, projects: &[ProjectId]) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "RPC failure probability must be in [0, 1], got {prob}"
        );
        let streams = projects
            .iter()
            .map(|&p| (p, Rng::stream(seed, &format!("fault-rpc-{}", p.0))))
            .collect();
        RpcFaultInjector { prob, streams }
    }

    /// Draw whether this RPC attempt fails in transit.
    pub fn rpc_fails(&mut self, project: ProjectId) -> bool {
        if self.prob <= 0.0 {
            return false;
        }
        let rng = self
            .streams
            .iter_mut()
            .find(|(p, _)| *p == project)
            .map(|(_, rng)| rng)
            .expect("project not registered with RpcFaultInjector");
        rng.chance(self.prob)
    }

    /// Uniform draw from the project's stream, for jittered comm backoff.
    pub fn jitter_u(&mut self, project: ProjectId) -> f64 {
        let rng = self
            .streams
            .iter_mut()
            .find(|(p, _)| *p == project)
            .map(|(_, rng)| rng)
            .expect("project not registered with RpcFaultInjector");
        rng.uniform()
    }

    /// Per-project stream positions, for checkpointing.
    pub fn streams(&self) -> &[(ProjectId, Rng)] {
        &self.streams
    }

    /// Overwrite every stream position (checkpoint restore). Entries must
    /// cover exactly the projects the injector was built with.
    pub fn restore_streams(&mut self, streams: &[(ProjectId, Rng)]) {
        for (p, rng) in streams {
            if let Some((_, slot)) = self.streams.iter_mut().find(|(id, _)| id == p) {
                *slot = rng.clone();
            }
        }
    }
}

/// Mid-flight transfer failure process, shared by the download and upload
/// queues (one stream: transfer order is already deterministic).
#[derive(Debug, Clone)]
pub struct TransferFaultModel {
    prob: f64,
    pub retry: RetryPolicy,
    rng: Rng,
}

impl TransferFaultModel {
    pub fn new(seed: u64, prob: f64, retry: RetryPolicy) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "transfer failure probability must be in [0, 1], got {prob}"
        );
        TransferFaultModel { prob, retry, rng: Rng::stream(seed, "fault-xfer") }
    }

    /// Plan one transfer attempt of `bytes`: `Some(fail_after_bytes)` if this
    /// attempt will fail once that many bytes have moved, `None` if it will
    /// run to completion.
    pub fn plan_attempt(&mut self, bytes: f64) -> Option<f64> {
        if self.prob <= 0.0 {
            return None;
        }
        if self.rng.chance(self.prob) {
            Some(self.rng.uniform() * bytes)
        } else {
            None
        }
    }

    /// Uniform draw for the retry policy's jitter.
    pub fn jitter_u(&mut self) -> f64 {
        self.rng.uniform()
    }

    /// The fault stream's current position, for checkpointing.
    pub fn rng(&self) -> &Rng {
        &self.rng
    }

    /// Overwrite the stream position (checkpoint restore).
    pub fn restore_rng(&mut self, rng: Rng) {
        self.rng = rng;
    }
}

/// Host-crash arrival process: exponential inter-arrival times.
#[derive(Debug, Clone)]
pub struct CrashProcess {
    dist: Exponential,
    rng: Rng,
}

impl CrashProcess {
    pub fn new(seed: u64, mtbf: SimDuration) -> Self {
        assert!(
            mtbf.secs() > 0.0 && mtbf.secs().is_finite(),
            "crash MTBF must be positive and finite, got {}",
            mtbf.secs()
        );
        CrashProcess { dist: Exponential::new(mtbf.secs()), rng: Rng::stream(seed, "fault-crash") }
    }

    /// Sample the next crash time strictly after `now`.
    pub fn next_after(&mut self, now: SimTime) -> SimTime {
        // Guard against a zero draw so crash events always advance time.
        let gap = self.dist.sample(&mut self.rng).max(1e-3);
        now + SimDuration::from_secs(gap)
    }

    /// The crash stream's current position, for checkpointing.
    pub fn rng(&self) -> &Rng {
        &self.rng
    }

    /// Overwrite the stream position (checkpoint restore).
    pub fn restore_rng(&mut self, rng: Rng) {
        self.rng = rng;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_is_inert() {
        let cfg = FaultConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg, FaultConfig::OFF);
        assert_eq!(cfg, FaultConfig::with_failure_rate(0.0));
    }

    #[test]
    fn rpc_injector_is_deterministic_and_per_project() {
        let projects = [ProjectId(0), ProjectId(1)];
        let mut a = RpcFaultInjector::new(42, 0.3, &projects);
        let mut b = RpcFaultInjector::new(42, 0.3, &projects);
        let seq_a: Vec<bool> = (0..64).map(|_| a.rpc_fails(ProjectId(0))).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.rpc_fails(ProjectId(0))).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&f| f), "rate 0.3 over 64 draws should fail at least once");
        assert!(!seq_a.iter().all(|&f| f));
        // Draining project 0's stream must not affect project 1's.
        let mut c = RpcFaultInjector::new(42, 0.3, &projects);
        let direct: Vec<bool> = (0..16).map(|_| c.rpc_fails(ProjectId(1))).collect();
        let after: Vec<bool> = (0..16).map(|_| a.rpc_fails(ProjectId(1))).collect();
        assert_eq!(direct, after);
    }

    #[test]
    fn zero_rate_injector_never_draws() {
        // With prob 0 the answer is always false and no stream state advances,
        // preserving determinism of anything sharing the seed.
        let mut inj = RpcFaultInjector::new(7, 0.0, &[ProjectId(0)]);
        assert!((0..100).all(|_| !inj.rpc_fails(ProjectId(0))));
        let mut xf = TransferFaultModel::new(7, 0.0, RetryPolicy::TRANSFER);
        assert!((0..100).all(|_| xf.plan_attempt(1e6).is_none()));
    }

    #[test]
    fn transfer_fail_point_is_within_bounds() {
        let mut xf = TransferFaultModel::new(3, 1.0, RetryPolicy::TRANSFER);
        for _ in 0..100 {
            let point = xf.plan_attempt(5000.0).expect("prob 1.0 always fails");
            assert!((0.0..5000.0).contains(&point));
        }
    }

    #[test]
    fn crash_arrivals_advance_and_average_near_mtbf() {
        let mut cp = CrashProcess::new(11, SimDuration::from_secs(3600.0));
        let mut now = SimTime::ZERO;
        let mut gaps = Vec::new();
        for _ in 0..2000 {
            let next = cp.next_after(now);
            assert!(next > now);
            gaps.push(next.secs() - now.secs());
            now = next;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 3600.0).abs() < 3600.0 * 0.15, "mean gap {mean} too far from MTBF");
    }
}

//! Deterministic fault injection for the BOINC client emulator.
//!
//! The paper's emulation treats RPCs and file transfers as reliable, but the
//! platform it models is defined by unreliable volunteer hosts. This crate
//! supplies the three fault processes the real client is built to survive —
//! transient scheduler-RPC failures, mid-flight transfer failures, and host
//! crashes that discard progress since the last checkpoint — plus the
//! unified exponential [`RetryPolicy`] used by every retry path.
//!
//! Design invariants:
//!
//! * **Determinism** — every fault process draws from its own named
//!   `bce-sim` RNG stream derived from the scenario seed, so runs are
//!   bit-for-bit reproducible.
//! * **Zero-fault identity** — with [`FaultConfig::OFF`] no stream is ever
//!   created or sampled and no behaviour changes: metrics match an emulator
//!   without fault plumbing exactly.

pub mod disk;
mod plan;
mod retry;

pub use disk::{
    DiskFaultConfig, DiskFaultPlan, DiskFaultStats, ReadFault, RenameFault, WriteFault,
};
pub use plan::{CrashProcess, FaultConfig, RpcFaultInjector, TransferFaultModel};
pub use retry::{Backoff, RetryPolicy, RetryState, RetryVerdict};

/// The three injected fault classes, in the stable order observability
/// consumers (trace filters, metric scopes, study tables) enumerate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A scheduler RPC lost in transit.
    TransientRpc,
    /// A file-transfer attempt failed mid-flight.
    Transfer,
    /// A host crash rolling back progress to the last checkpoint.
    Crash,
}

impl FaultKind {
    pub const ALL: [FaultKind; 3] =
        [FaultKind::TransientRpc, FaultKind::Transfer, FaultKind::Crash];

    /// Stable machine name, matching trace-event kinds and metric scopes.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TransientRpc => "rpc_transient",
            FaultKind::Transfer => "transfer",
            FaultKind::Crash => "crash",
        }
    }

    /// Is this fault class enabled in `cfg`?
    pub fn enabled_in(self, cfg: &FaultConfig) -> bool {
        match self {
            FaultKind::TransientRpc => cfg.rpc_fail_prob > 0.0,
            FaultKind::Transfer => cfg.transfer_fail_prob > 0.0,
            FaultKind::Crash => cfg.crash_mtbf.is_some(),
        }
    }
}

#[cfg(test)]
mod kind_tests {
    use super::*;
    use bce_types::SimDuration;

    #[test]
    fn names_are_unique_and_stable() {
        let names: Vec<_> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["rpc_transient", "transfer", "crash"]);
    }

    #[test]
    fn enabled_in_reflects_config() {
        assert!(FaultKind::ALL.iter().all(|k| !k.enabled_in(&FaultConfig::OFF)));
        let cfg =
            FaultConfig { crash_mtbf: Some(SimDuration::from_hours(1.0)), ..FaultConfig::OFF };
        assert!(FaultKind::Crash.enabled_in(&cfg));
        assert!(!FaultKind::Transfer.enabled_in(&cfg));
    }
}

//! Deterministic fault injection for the BOINC client emulator.
//!
//! The paper's emulation treats RPCs and file transfers as reliable, but the
//! platform it models is defined by unreliable volunteer hosts. This crate
//! supplies the three fault processes the real client is built to survive —
//! transient scheduler-RPC failures, mid-flight transfer failures, and host
//! crashes that discard progress since the last checkpoint — plus the
//! unified exponential [`RetryPolicy`] used by every retry path.
//!
//! Design invariants:
//!
//! * **Determinism** — every fault process draws from its own named
//!   `bce-sim` RNG stream derived from the scenario seed, so runs are
//!   bit-for-bit reproducible.
//! * **Zero-fault identity** — with [`FaultConfig::OFF`] no stream is ever
//!   created or sampled and no behaviour changes: metrics match an emulator
//!   without fault plumbing exactly.

mod plan;
mod retry;

pub use plan::{CrashProcess, FaultConfig, RpcFaultInjector, TransferFaultModel};
pub use retry::{Backoff, RetryPolicy, RetryState, RetryVerdict};

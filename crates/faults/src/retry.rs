//! The unified retry/backoff policy shared by the scheduler-RPC path and the
//! transfer layer.
//!
//! Policy and state are split so one immutable [`RetryPolicy`] can govern many
//! independent [`RetryState`]s (one per project for RPCs, one per transfer for
//! the network layer). The arithmetic of the default scheduler policy is
//! bit-identical to the ad-hoc `Backoff` this module replaced: delay =
//! `min * multiplier^n` capped at `max`, with the exponent clamped at 16.

use bce_types::{SimDuration, SimTime};

/// How retries back off after consecutive failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay after the first failure.
    pub min_delay: SimDuration,
    /// Cap on any single delay (before jitter; jitter is also re-capped).
    pub max_delay: SimDuration,
    /// Per-consecutive-failure growth factor.
    pub multiplier: f64,
    /// Deterministic jitter amplitude as a fraction of the base delay:
    /// the delay becomes `base * (1 + jitter * (2u - 1))` for a caller-
    /// supplied uniform draw `u` in `[0, 1)`. Zero means no jitter and no
    /// dependence on `u` at all.
    pub jitter: f64,
    /// After this many consecutive failures the operation is abandoned
    /// ([`RetryVerdict::GiveUp`]); `None` retries forever.
    pub give_up_after: Option<u32>,
}

/// Exponent clamp, carried over from the legacy `Backoff` (2^16 minutes is
/// already far past any realistic `max_delay`; the clamp only guards `powi`).
const MAX_EXPONENT: u32 = 16;

impl RetryPolicy {
    /// Scheduler-RPC backoff: 1 minute doubling to 4 hours, never gives up.
    /// Matches the BOINC client's scheduler backoff and is arithmetically
    /// identical to the legacy `Backoff` (no jitter).
    pub const SCHEDULER_RPC: RetryPolicy = RetryPolicy {
        min_delay: SimDuration::from_secs(60.0),
        max_delay: SimDuration::from_secs(4.0 * 3600.0),
        multiplier: 2.0,
        jitter: 0.0,
        give_up_after: None,
    };

    /// File-transfer retry: same 1 min → 4 h doubling, but with ±50% jitter
    /// (the real client randomizes transfer backoff to avoid thundering
    /// herds) and a give-up limit that errors the job, mirroring BOINC's
    /// `file_xfer` giveup after repeated failures.
    pub const TRANSFER: RetryPolicy = RetryPolicy {
        min_delay: SimDuration::from_secs(60.0),
        max_delay: SimDuration::from_secs(4.0 * 3600.0),
        multiplier: 2.0,
        jitter: 0.5,
        give_up_after: Some(8),
    };

    /// Delay for the `n`-th consecutive failure (0-based), given a uniform
    /// draw in `[0, 1)` for jitter. With `jitter == 0` the draw is ignored.
    pub fn delay_for(&self, consecutive_failures: u32, jitter_u: f64) -> SimDuration {
        let exponent = consecutive_failures.min(MAX_EXPONENT) as i32;
        let base =
            (self.min_delay.secs() * self.multiplier.powi(exponent)).min(self.max_delay.secs());
        let secs = if self.jitter > 0.0 {
            (base * (1.0 + self.jitter * (2.0 * jitter_u - 1.0)))
                .clamp(self.min_delay.secs(), self.max_delay.secs())
        } else {
            base
        };
        SimDuration::from_secs(secs)
    }
}

/// What a failure means for the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryVerdict {
    /// Try again once `RetryState::until` has passed.
    RetryAt(SimTime),
    /// The policy's give-up limit was reached; the operation should be
    /// abandoned and the owning job errored.
    GiveUp,
}

/// Mutable per-operation backoff state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RetryState {
    failures: u32,
    /// Earliest time the next attempt is allowed.
    pub until: SimTime,
}

impl RetryState {
    pub fn new() -> Self {
        RetryState::default()
    }

    /// Record a failure at `now`. Returns when (or whether) to retry.
    /// `jitter_u` must be a uniform draw in `[0, 1)` from a deterministic
    /// stream when the policy uses jitter; pass `0.0` for jitter-free
    /// policies.
    pub fn fail(&mut self, now: SimTime, policy: &RetryPolicy, jitter_u: f64) -> RetryVerdict {
        let delay = policy.delay_for(self.failures, jitter_u);
        self.failures = self.failures.saturating_add(1);
        self.until = now + delay;
        match policy.give_up_after {
            Some(limit) if self.failures >= limit => RetryVerdict::GiveUp,
            _ => RetryVerdict::RetryAt(self.until),
        }
    }

    /// Record a success: clears the backoff entirely.
    pub fn succeed(&mut self) {
        self.failures = 0;
        self.until = SimTime::ZERO;
    }

    pub fn blocked(&self, now: SimTime) -> bool {
        self.until > now
    }

    pub fn consecutive_failures(&self) -> u32 {
        self.failures
    }

    /// Rebuild a backoff state from its raw parts (checkpoint restore).
    pub fn from_parts(failures: u32, until: SimTime) -> Self {
        RetryState { failures, until }
    }
}

/// Compatibility wrapper preserving the original `Backoff` API from
/// `bce-client`'s fetch module; it is now a thin veneer over
/// [`RetryState`] with [`RetryPolicy::SCHEDULER_RPC`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Backoff {
    state: RetryState,
}

impl Backoff {
    pub const MIN: SimDuration = RetryPolicy::SCHEDULER_RPC.min_delay;
    pub const MAX: SimDuration = RetryPolicy::SCHEDULER_RPC.max_delay;

    pub fn new() -> Self {
        Backoff::default()
    }

    /// Record a failure at `now`; the delay doubles per consecutive
    /// failure, from 1 minute up to 4 hours.
    pub fn fail(&mut self, now: SimTime) {
        self.state.fail(now, &RetryPolicy::SCHEDULER_RPC, 0.0);
    }

    /// Record a success: clears the backoff.
    pub fn succeed(&mut self) {
        self.state.succeed();
    }

    pub fn blocked(&self, now: SimTime) -> bool {
        self.state.blocked(now)
    }

    /// Earliest time the next attempt is allowed.
    pub fn until(&self) -> SimTime {
        self.state.until
    }

    /// The wrapped retry state, for checkpointing.
    pub fn retry_state(&self) -> RetryState {
        self.state
    }

    /// Rebuild from a captured [`RetryState`] (checkpoint restore).
    pub fn from_state(state: RetryState) -> Self {
        Backoff { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_policy_matches_legacy_backoff() {
        // Replicate the legacy arithmetic by hand and compare bit-for-bit.
        let policy = RetryPolicy::SCHEDULER_RPC;
        let mut legacy_level: u32 = 0;
        let mut state = RetryState::new();
        let now = SimTime::ZERO;
        for _ in 0..24 {
            let legacy_delay = (60.0 * 2f64.powi(legacy_level as i32)).min(4.0 * 3600.0);
            legacy_level = (legacy_level + 1).min(16);
            let before = state.consecutive_failures();
            state.fail(now, &policy, 0.0);
            let got = state.until.secs() - now.secs();
            assert_eq!(
                got.to_bits(),
                legacy_delay.to_bits(),
                "failure #{before}: {got} != {legacy_delay}"
            );
        }
    }

    #[test]
    fn delays_are_monotone_and_capped() {
        let policy = RetryPolicy::SCHEDULER_RPC;
        let mut prev = SimDuration::ZERO;
        for n in 0..40 {
            let d = policy.delay_for(n, 0.0);
            assert!(d >= prev, "delay shrank at failure {n}");
            assert!(d <= policy.max_delay);
            assert!(d >= policy.min_delay);
            prev = d;
        }
        assert_eq!(policy.delay_for(39, 0.0), policy.max_delay);
    }

    #[test]
    fn jitter_stays_within_caps() {
        let policy = RetryPolicy::TRANSFER;
        for n in 0..12 {
            for u in [0.0, 0.25, 0.5, 0.75, 0.999_999] {
                let d = policy.delay_for(n, u);
                assert!(d >= policy.min_delay, "below min at n={n} u={u}");
                assert!(d <= policy.max_delay, "above max at n={n} u={u}");
            }
        }
        // Jitter actually spreads delays at a fixed failure count.
        let lo = policy.delay_for(3, 0.0);
        let hi = policy.delay_for(3, 0.999);
        assert!(hi > lo);
    }

    #[test]
    fn give_up_after_limit() {
        let policy = RetryPolicy { give_up_after: Some(3), ..RetryPolicy::TRANSFER };
        let mut state = RetryState::new();
        let now = SimTime::ZERO;
        assert_eq!(state.fail(now, &policy, 0.5), RetryVerdict::RetryAt(state.until));
        assert_eq!(state.fail(now, &policy, 0.5), RetryVerdict::RetryAt(state.until));
        assert_eq!(state.fail(now, &policy, 0.5), RetryVerdict::GiveUp);
        // Success resets, so the next failure retries again.
        state.succeed();
        assert_eq!(state.consecutive_failures(), 0);
        assert!(matches!(state.fail(now, &policy, 0.5), RetryVerdict::RetryAt(_)));
    }

    #[test]
    fn backoff_wrapper_doubles_and_resets() {
        let mut b = Backoff::new();
        let now = SimTime::ZERO;
        b.fail(now);
        assert_eq!(b.until().secs(), 60.0);
        b.fail(now);
        assert_eq!(b.until().secs(), 120.0);
        b.fail(now);
        assert_eq!(b.until().secs(), 240.0);
        assert!(b.blocked(now));
        b.succeed();
        assert!(!b.blocked(now));
        assert_eq!(b.until(), SimTime::ZERO);
    }
}

//! # bce-emboinc — server-side campaign simulation
//!
//! The paper's companion direction (§6.1): where BCE emulates one client
//! in detail, EmBOINC-style simulation studies the *server* — a project
//! dispatching replicated workunits to a statistical model of the
//! volunteer host population. This crate implements that view: host
//! populations with log-normal speeds and unreliability tails, replication
//! and quorum validation, deadline-timeout reissue, and host-selection
//! policies, with campaign latency and replica-waste as the outputs.

pub mod model;
pub mod sim;

pub use model::{HostModel, HostSelection, PopulationSpec, ReplicationPolicy, Workload};
pub use sim::{run_campaign, CampaignResult};

//! The server-side discrete-event simulation: dispatch replicated
//! workunits to the modelled host population, apply the validation
//! quorum, reissue on error/timeout, and measure campaign latency and
//! waste.

use crate::model::{HostModel, HostSelection, ReplicationPolicy, Workload};
use bce_sim::{Distribution, EventQueue, Exponential, OnlineStats, Rng};
use bce_types::{SimDuration, SimTime};
use std::collections::VecDeque;

/// What the simulation reports.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Workunits validated (reached quorum).
    pub completed: usize,
    /// Workunits that exhausted `max_total` replicas without quorum.
    pub failed: usize,
    /// Per-workunit makespan (release → quorum) statistics, seconds.
    pub makespan: OnlineStats,
    pub makespan_p95: f64,
    /// Wall time until the last workunit validated.
    pub campaign_secs: f64,
    /// Replicas dispatched in total.
    pub replicas_issued: u64,
    /// Replicas that produced no credit toward a quorum (errors, timeouts,
    /// and successes beyond the quorum).
    pub replicas_wasted: u64,
}

impl CampaignResult {
    /// Fraction of dispatched replicas that were wasted.
    pub fn waste_fraction(&self) -> f64 {
        if self.replicas_issued == 0 {
            0.0
        } else {
            self.replicas_wasted as f64 / self.replicas_issued as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A replica resolves: success, error, or timeout.
    ReplicaResolved { wu: usize, host: usize, outcome: Outcome },
    /// A host finishes (or abandons) its current replica and asks for work.
    HostFree { host: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Success,
    Error,
    Timeout,
}

#[derive(Debug, Clone, Default)]
struct WuState {
    successes: u32,
    /// Replicas actually dispatched.
    issued: u32,
    /// Dispatched and not yet resolved.
    outstanding: u32,
    /// Queued for dispatch but not yet handed to a host.
    pending: u32,
    done_at: Option<SimTime>,
    dead: bool,
}

/// Run one campaign.
pub fn run_campaign(
    hosts: &[HostModel],
    workload: &Workload,
    replication: ReplicationPolicy,
    selection: HostSelection,
    seed: u64,
) -> CampaignResult {
    assert!(replication.quorum >= 1 && replication.initial >= 1);
    assert!(replication.max_total >= replication.initial);
    let mut rng = Rng::stream(seed, "emboinc");
    let mut queue: EventQueue<Event> = EventQueue::with_capacity(hosts.len() * 2);
    let mut wus: Vec<WuState> = vec![WuState::default(); workload.nworkunits];

    // Replica demand queue: each entry is a workunit index wanting one
    // more replica. Initially `initial` per workunit, interleaved FIFO so
    // every workunit gets its first replica before any gets its second.
    let mut demand: VecDeque<usize> = VecDeque::new();
    for _round in 0..replication.initial {
        for wu in 0..workload.nworkunits {
            demand.push_back(wu);
        }
    }
    for s in wus.iter_mut() {
        s.pending = replication.initial;
    }

    let mut idle: Vec<usize> = (0..hosts.len()).collect();
    let mut makespans: Vec<f64> = Vec::with_capacity(workload.nworkunits);
    let mut stats = CampaignResult {
        completed: 0,
        failed: 0,
        makespan: OnlineStats::new(),
        makespan_p95: 0.0,
        campaign_secs: 0.0,
        replicas_issued: 0,
        replicas_wasted: 0,
    };

    let mut now = SimTime::ZERO;

    // Dispatch as many (host, wu) pairs as possible at `now`.
    let dispatch = |now: SimTime,
                    idle: &mut Vec<usize>,
                    demand: &mut VecDeque<usize>,
                    wus: &mut [WuState],
                    queue: &mut EventQueue<Event>,
                    rng: &mut Rng,
                    stats: &mut CampaignResult| {
        while !idle.is_empty() {
            // Skip demand entries for workunits that finished or died.
            let wu = loop {
                match demand.pop_front() {
                    None => return,
                    Some(w) => {
                        wus[w].pending -= 1;
                        if wus[w].done_at.is_none() && !wus[w].dead {
                            break w;
                        }
                    }
                }
            };
            // Pick a host per the selection policy.
            let pos = match selection {
                HostSelection::Random => rng.below(idle.len()),
                HostSelection::FastestFirst => idle
                    .iter()
                    .enumerate()
                    .max_by(|a, b| hosts[*a.1].flops.partial_cmp(&hosts[*b.1].flops).unwrap())
                    .map(|(i, _)| i)
                    .unwrap(),
                HostSelection::ReliableFirst => idle
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        let ra = hosts[*a.1].error_prob + hosts[*a.1].vanish_prob;
                        let rb = hosts[*b.1].error_prob + hosts[*b.1].vanish_prob;
                        ra.partial_cmp(&rb).unwrap()
                    })
                    .map(|(i, _)| i)
                    .unwrap(),
            };
            let host = idle.swap_remove(pos);
            let h = &hosts[host];
            stats.replicas_issued += 1;
            wus[wu].issued += 1;
            wus[wu].outstanding += 1;

            let deadline = now + workload.latency_bound;
            let vanished = rng.chance(h.vanish_prob);
            if vanished {
                // Nothing comes back; the server learns at the deadline,
                // and the host rejoins the pool then (modelling churn).
                queue
                    .push(deadline, Event::ReplicaResolved { wu, host, outcome: Outcome::Timeout });
                queue.push(deadline, Event::HostFree { host });
                continue;
            }
            let delay = Exponential::new(h.queue_delay_mean).sample(rng);
            let exec = workload.flops_per_wu / h.flops;
            let arrival = now + SimDuration::from_secs(delay + exec);
            if arrival > deadline {
                // The server times the replica out at the deadline; the
                // host still grinds through the worthless work and only
                // asks again when it finishes.
                queue
                    .push(deadline, Event::ReplicaResolved { wu, host, outcome: Outcome::Timeout });
                queue.push(arrival, Event::HostFree { host });
                continue;
            }
            let outcome = if rng.chance(h.error_prob) { Outcome::Error } else { Outcome::Success };
            queue.push(arrival, Event::ReplicaResolved { wu, host, outcome });
        }
    };

    dispatch(now, &mut idle, &mut demand, &mut wus, &mut queue, &mut rng, &mut stats);

    while let Some((t, event)) = queue.pop() {
        now = t;
        match event {
            Event::HostFree { host } => {
                idle.push(host);
            }
            Event::ReplicaResolved { wu, host, outcome } => {
                let state = &mut wus[wu];
                state.outstanding -= 1;
                // Timeout events for vanished hosts return the host at the
                // deadline; executed replicas already queued HostFree.
                match outcome {
                    Outcome::Success => {
                        idle.push(host);
                        if state.done_at.is_some() {
                            // Beyond-quorum success: wasted redundancy.
                            stats.replicas_wasted += 1;
                        } else {
                            state.successes += 1;
                            if state.successes >= replication.quorum {
                                state.done_at = Some(now);
                                stats.completed += 1;
                                let m = now.secs();
                                stats.makespan.push(m);
                                makespans.push(m);
                                stats.campaign_secs = stats.campaign_secs.max(m);
                            }
                        }
                    }
                    Outcome::Error => {
                        idle.push(host);
                        stats.replicas_wasted += 1;
                    }
                    Outcome::Timeout => {
                        // The host's return to the pool is scheduled
                        // separately (it may still be grinding).
                        stats.replicas_wasted += 1;
                    }
                }
                // Reissue if the quorum is out of reach with the replicas
                // still in flight or queued.
                let state = &wus[wu];
                if state.done_at.is_none() && !state.dead {
                    let needed = replication.quorum.saturating_sub(state.successes);
                    let in_flight = state.outstanding + state.pending;
                    if needed > in_flight {
                        let want = needed - in_flight;
                        let budget =
                            replication.max_total.saturating_sub(state.issued + state.pending);
                        let add = want.min(budget);
                        for _ in 0..add {
                            demand.push_back(wu);
                        }
                        wus[wu].pending += add;
                        if add < want && in_flight + add == 0 {
                            wus[wu].dead = true;
                            stats.failed += 1;
                        }
                    }
                }
            }
        }
        dispatch(now, &mut idle, &mut demand, &mut wus, &mut queue, &mut rng, &mut stats);
    }

    makespans.sort_by(|a, b| a.partial_cmp(b).unwrap());
    stats.makespan_p95 = if makespans.is_empty() {
        0.0
    } else {
        makespans[((makespans.len() as f64 * 0.95) as usize).min(makespans.len() - 1)]
    };
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PopulationSpec;

    fn hosts(n: usize, seed: u64) -> Vec<HostModel> {
        let mut rng = Rng::stream(seed, "hosts");
        PopulationSpec { nhosts: n, ..Default::default() }.sample(&mut rng)
    }

    fn reliable_hosts(n: usize) -> Vec<HostModel> {
        (0..n)
            .map(|_| HostModel {
                flops: 2e9,
                error_prob: 0.0,
                vanish_prob: 0.0,
                queue_delay_mean: 3600.0,
            })
            .collect()
    }

    fn small_workload() -> Workload {
        Workload { nworkunits: 50, flops_per_wu: 4e12, latency_bound: SimDuration::from_days(7.0) }
    }

    #[test]
    fn reliable_population_completes_everything() {
        let r = run_campaign(
            &reliable_hosts(20),
            &small_workload(),
            ReplicationPolicy::SINGLE,
            HostSelection::Random,
            1,
        );
        assert_eq!(r.completed, 50);
        assert_eq!(r.failed, 0);
        assert_eq!(r.replicas_issued, 50);
        assert_eq!(r.replicas_wasted, 0);
        assert!(r.makespan.mean() > 0.0);
        assert!(r.makespan_p95 >= r.makespan.mean());
    }

    #[test]
    fn quorum_doubles_replicas() {
        let single = run_campaign(
            &reliable_hosts(20),
            &small_workload(),
            ReplicationPolicy::SINGLE,
            HostSelection::Random,
            1,
        );
        let redundant = run_campaign(
            &reliable_hosts(20),
            &small_workload(),
            ReplicationPolicy::REDUNDANT,
            HostSelection::Random,
            1,
        );
        assert_eq!(redundant.replicas_issued, 2 * single.replicas_issued);
        assert_eq!(redundant.completed, 50);
    }

    #[test]
    fn unreliable_hosts_cause_waste_and_reissue() {
        let mut hosts = reliable_hosts(20);
        for h in &mut hosts {
            h.error_prob = 0.3;
        }
        let r = run_campaign(
            &hosts,
            &small_workload(),
            ReplicationPolicy::SINGLE,
            HostSelection::Random,
            2,
        );
        assert_eq!(r.completed, 50, "reissue must recover errors");
        assert!(r.replicas_issued > 50, "issued {}", r.replicas_issued);
        assert!(r.waste_fraction() > 0.1, "waste {:.3}", r.waste_fraction());
    }

    #[test]
    fn vanishing_hosts_recovered_via_deadline() {
        let mut hosts = reliable_hosts(30);
        for h in &mut hosts {
            h.vanish_prob = 0.4;
        }
        let wl = Workload {
            nworkunits: 30,
            flops_per_wu: 4e12,
            latency_bound: SimDuration::from_days(1.0),
        };
        let r = run_campaign(&hosts, &wl, ReplicationPolicy::SINGLE, HostSelection::Random, 3);
        assert_eq!(r.completed + r.failed, 30);
        assert!(r.completed > 20, "most should eventually validate: {}", r.completed);
        // Timeouts push p95 makespan past the 1-day deadline.
        assert!(r.makespan_p95 > 86_400.0, "p95 {:.0}", r.makespan_p95);
    }

    #[test]
    fn fastest_first_cuts_makespan_when_hosts_outnumber_work() {
        let hosts = hosts(100, 7);
        let wl = Workload {
            nworkunits: 40,
            flops_per_wu: 4e12,
            latency_bound: SimDuration::from_days(14.0),
        };
        let rand = run_campaign(&hosts, &wl, ReplicationPolicy::SINGLE, HostSelection::Random, 5);
        let fast =
            run_campaign(&hosts, &wl, ReplicationPolicy::SINGLE, HostSelection::FastestFirst, 5);
        assert!(
            fast.makespan.mean() < rand.makespan.mean(),
            "fastest-first {:.0}s vs random {:.0}s",
            fast.makespan.mean(),
            rand.makespan.mean()
        );
    }

    #[test]
    fn deterministic() {
        let hosts = hosts(50, 9);
        let run = || {
            let r = run_campaign(
                &hosts,
                &small_workload(),
                ReplicationPolicy::REDUNDANT,
                HostSelection::Random,
                11,
            );
            (r.completed, r.replicas_issued, r.makespan.mean().to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn eager_replication_trades_waste_for_latency() {
        let mut hosts = hosts(100, 13);
        // Make turnaround highly variable so redundancy pays.
        for h in &mut hosts {
            h.queue_delay_mean *= 4.0;
        }
        let wl = Workload {
            nworkunits: 60,
            flops_per_wu: 4e12,
            latency_bound: SimDuration::from_days(14.0),
        };
        let single =
            run_campaign(&hosts, &wl, ReplicationPolicy::SINGLE, HostSelection::Random, 17);
        let eager = run_campaign(&hosts, &wl, ReplicationPolicy::EAGER, HostSelection::Random, 17);
        assert!(
            eager.makespan.mean() < single.makespan.mean(),
            "eager {:.0}s vs single {:.0}s",
            eager.makespan.mean(),
            single.makespan.mean()
        );
        assert!(eager.waste_fraction() > single.waste_fraction());
    }
}

//! The server-side model: a volunteer host population abstracted by
//! turnaround behaviour, workunits with replication and quorum, and the
//! server's dispatch policies.
//!
//! This is the EmBOINC direction the paper points to (§6.1: Estrada et
//! al.'s system "used a simulator (driven by either traces or by an
//! analytic model) of a dynamic population of volunteer hosts, and used
//! emulation of the BOINC server. It complements the current work."):
//! instead of emulating one client in detail, the *server* is the subject
//! and hosts are statistical processes.

use bce_sim::{Distribution, LogNormal, Rng, Uniform};
use bce_types::SimDuration;

/// One volunteer host as the server sees it.
#[derive(Debug, Clone)]
pub struct HostModel {
    /// Effective speed in FLOPS (already discounted by availability).
    pub flops: f64,
    /// Probability a replica errors out (crash, bad result).
    pub error_prob: f64,
    /// Probability a replica is simply never returned (host vanished) —
    /// the server only learns via the deadline.
    pub vanish_prob: f64,
    /// Extra turnaround beyond execution: the client-side queue wait,
    /// in seconds (mean of an exponential).
    pub queue_delay_mean: f64,
}

/// Knobs of the synthetic host population, shaped like published
/// SETI@home characterizations (log-normal speeds, a small unreliable
/// tail).
#[derive(Debug, Clone)]
pub struct PopulationSpec {
    pub nhosts: usize,
    pub flops_median: f64,
    pub flops_sigma: f64,
    pub error_prob: Uniform,
    pub vanish_prob: Uniform,
    pub queue_delay: Uniform,
}

impl Default for PopulationSpec {
    fn default() -> Self {
        PopulationSpec {
            nhosts: 200,
            flops_median: 2e9,
            flops_sigma: 0.6,
            error_prob: Uniform { lo: 0.0, hi: 0.1 },
            vanish_prob: Uniform { lo: 0.0, hi: 0.08 },
            queue_delay: Uniform { lo: 600.0, hi: 4.0 * 86_400.0 },
        }
    }
}

impl PopulationSpec {
    pub fn sample(&self, rng: &mut Rng) -> Vec<HostModel> {
        let speed = LogNormal::from_median(self.flops_median, self.flops_sigma);
        (0..self.nhosts)
            .map(|_| HostModel {
                flops: speed.sample(rng),
                error_prob: self.error_prob.sample(rng),
                vanish_prob: self.vanish_prob.sample(rng),
                queue_delay_mean: self.queue_delay.sample(rng),
            })
            .collect()
    }
}

/// Replication/validation policy: a workunit is complete once `quorum`
/// successful results are in; `initial` replicas are issued up front and
/// failures/timeouts trigger reissue until `max_total` is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationPolicy {
    pub initial: u32,
    pub quorum: u32,
    pub max_total: u32,
}

impl ReplicationPolicy {
    /// BOINC's classic redundant validation: 2 results, 2 must agree.
    pub const REDUNDANT: ReplicationPolicy =
        ReplicationPolicy { initial: 2, quorum: 2, max_total: 8 };
    /// Adaptive/trusted single replication.
    pub const SINGLE: ReplicationPolicy = ReplicationPolicy { initial: 1, quorum: 1, max_total: 6 };
    /// Eager over-replication to cut latency at a waste cost.
    pub const EAGER: ReplicationPolicy = ReplicationPolicy { initial: 3, quorum: 1, max_total: 8 };

    pub fn name(&self) -> String {
        format!("R{}/Q{}", self.initial, self.quorum)
    }
}

/// How the server picks a host for a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostSelection {
    /// Uniformly random among idle hosts (BOINC's effective behaviour:
    /// whoever asks).
    Random,
    /// Prefer the fastest idle host.
    FastestFirst,
    /// Prefer the most reliable idle host (lowest error+vanish).
    ReliableFirst,
}

impl HostSelection {
    pub fn name(&self) -> &'static str {
        match self {
            HostSelection::Random => "random",
            HostSelection::FastestFirst => "fastest-first",
            HostSelection::ReliableFirst => "reliable-first",
        }
    }
}

/// The workload: `nworkunits` of `flops_per_wu` each, all available at
/// t=0 (a batch campaign), each with the given latency bound for replicas.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    pub nworkunits: usize,
    pub flops_per_wu: f64,
    pub latency_bound: SimDuration,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            nworkunits: 500,
            flops_per_wu: 4e12, // ~2000 s on the median host
            latency_bound: SimDuration::from_days(7.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_sampling_is_reasonable() {
        let mut rng = Rng::stream(1, "pop");
        let hosts = PopulationSpec::default().sample(&mut rng);
        assert_eq!(hosts.len(), 200);
        assert!(hosts.iter().all(|h| h.flops > 0.0));
        assert!(hosts.iter().all(|h| (0.0..=0.1).contains(&h.error_prob)));
        // Log-normal spread: fastest should be much faster than slowest.
        let max = hosts.iter().map(|h| h.flops).fold(0.0f64, f64::max);
        let min = hosts.iter().map(|h| h.flops).fold(f64::INFINITY, f64::min);
        assert!(max / min > 3.0, "spread {:.1}", max / min);
    }

    #[test]
    fn policy_names() {
        assert_eq!(ReplicationPolicy::REDUNDANT.name(), "R2/Q2");
        assert_eq!(ReplicationPolicy::SINGLE.name(), "R1/Q1");
        assert_eq!(HostSelection::FastestFirst.name(), "fastest-first");
    }
}

//! Property tests for the server-side campaign simulation: conservation
//! laws must hold under arbitrary population and policy parameters.

use bce_emboinc::{run_campaign, HostModel, HostSelection, ReplicationPolicy, Workload};
use bce_types::SimDuration;
use proptest::prelude::*;

fn hosts_strategy() -> impl Strategy<Value = Vec<HostModel>> {
    proptest::collection::vec(
        (1e8f64..1e10, 0.0f64..0.4, 0.0f64..0.4, 100.0f64..1e5).prop_map(
            |(flops, error_prob, vanish_prob, queue_delay_mean)| HostModel {
                flops,
                error_prob,
                vanish_prob,
                queue_delay_mean,
            },
        ),
        3..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    #[test]
    fn campaign_conservation(
        hosts in hosts_strategy(),
        nworkunits in 1usize..40,
        initial in 1u32..3,
        extra_quorum in 0u32..2,
        seed in any::<u64>(),
    ) {
        let quorum = initial.min(initial + extra_quorum).max(1);
        let replication = ReplicationPolicy {
            initial,
            quorum,
            max_total: initial + quorum + 4,
        };
        let workload = Workload {
            nworkunits,
            flops_per_wu: 1e12,
            latency_bound: SimDuration::from_days(5.0),
        };
        let r = run_campaign(&hosts, &workload, replication, HostSelection::Random, seed);

        // Every workunit ends validated or failed; none lost.
        prop_assert_eq!(r.completed + r.failed, nworkunits);
        // Replica accounting: at least `quorum` per completed workunit,
        // bounded by max_total per workunit.
        prop_assert!(r.replicas_issued >= (r.completed as u64) * quorum as u64);
        prop_assert!(
            r.replicas_issued <= (nworkunits as u64) * replication.max_total as u64,
            "issued {} > cap {}",
            r.replicas_issued,
            (nworkunits as u64) * replication.max_total as u64
        );
        prop_assert!(r.replicas_wasted <= r.replicas_issued);
        // Makespan stats cover exactly the completed workunits.
        prop_assert_eq!(r.makespan.count(), r.completed as u64);
        if r.completed > 0 {
            prop_assert!(r.campaign_secs >= r.makespan.max() - 1e-9);
            prop_assert!(r.makespan_p95 <= r.makespan.max() + 1e-9);
            prop_assert!(r.makespan_p95 >= r.makespan.min() - 1e-9);
        }
    }

    #[test]
    fn campaign_deterministic(seed in any::<u64>()) {
        let hosts: Vec<HostModel> = (0..10)
            .map(|i| HostModel {
                flops: 1e9 * (1.0 + i as f64),
                error_prob: 0.1,
                vanish_prob: 0.05,
                queue_delay_mean: 3600.0,
            })
            .collect();
        let wl = Workload {
            nworkunits: 20,
            flops_per_wu: 1e12,
            latency_bound: SimDuration::from_days(3.0),
        };
        let run = || {
            let r = run_campaign(&hosts, &wl, ReplicationPolicy::REDUNDANT,
                                 HostSelection::Random, seed);
            (r.completed, r.failed, r.replicas_issued, r.makespan.mean().to_bits())
        };
        prop_assert_eq!(run(), run());
    }
}

//! Mapping between BOINC-style `client_state.xml` documents and the domain
//! model. This is the ingest path of the paper's web interface (§4.3):
//! alpha testers paste their client state files, and the emulator rebuilds
//! their scenario from them.
//!
//! The schema is a simplified-but-recognizable subset of the real client
//! state file: `<host_info>`, `<global_preferences>`, repeated
//! `<project>` elements with `<app>` job templates, `<time_stats>`
//! availability hints, and a `<seed>` for reproducibility.

use crate::xml::{parse, XmlError, XmlNode};
use bce_types::{
    AppClass, AppId, DailyWindow, EstErrorModel, Hardware, InitialJob, Preferences, ProcType,
    ProjectId, ProjectSpec, ResourceUsage, SimDuration, SporadicSupply, DAY,
};

/// Everything a state file describes about a volunteer host. The scenario
/// crate turns this into a runnable `Scenario`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientStateDoc {
    pub hardware: Hardware,
    pub prefs: Preferences,
    pub projects: Vec<ProjectSpec>,
    /// In-flight results present in the state file (`<result>` elements):
    /// the volunteer's current queue, restored at emulation start.
    pub initial_queue: Vec<InitialJob>,
    /// Recent-average fraction of time the host is on (§2.2 availability
    /// data the client maintains).
    pub on_frac: f64,
    /// Recent-average fraction of time the user is active.
    pub active_frac: f64,
    /// Mean on/off cycle length used when turning `on_frac` back into a
    /// stochastic process.
    pub cycle_mean: SimDuration,
    pub seed: u64,
}

impl Default for ClientStateDoc {
    fn default() -> Self {
        ClientStateDoc {
            hardware: Hardware::default(),
            prefs: Preferences::default(),
            projects: Vec::new(),
            initial_queue: Vec::new(),
            on_frac: 1.0,
            active_frac: 0.0,
            cycle_mean: SimDuration::from_secs(DAY),
            seed: 0,
        }
    }
}

/// Errors from [`ClientStateDoc::parse_str`].
#[derive(Debug, Clone, PartialEq)]
pub enum StateFileError {
    Xml(XmlError),
    /// Structurally valid XML that doesn't describe a client state.
    Schema(String),
}

impl std::fmt::Display for StateFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateFileError::Xml(e) => write!(f, "{e}"),
            StateFileError::Schema(m) => write!(f, "state file schema error: {m}"),
        }
    }
}
impl std::error::Error for StateFileError {}

impl From<XmlError> for StateFileError {
    fn from(e: XmlError) -> Self {
        StateFileError::Xml(e)
    }
}

fn schema_err<T>(m: impl Into<String>) -> Result<T, StateFileError> {
    Err(StateFileError::Schema(m.into()))
}

fn parse_bool(node: &XmlNode, name: &str, default: bool) -> bool {
    match node.child_text(name) {
        Some("1") | Some("true") => true,
        Some("0") | Some("false") => false,
        _ => default,
    }
}

impl ClientStateDoc {
    pub fn parse_str(src: &str) -> Result<Self, StateFileError> {
        let root = parse(src)?;
        if root.name != "client_state" {
            return schema_err(format!("root element is <{}>, expected <client_state>", root.name));
        }
        let mut doc = ClientStateDoc::default();

        if let Some(hi) = root.child("host_info") {
            let ncpus: u32 = hi.child_parse("p_ncpus").unwrap_or(1);
            let fpops: f64 = hi.child_parse("p_fpops").unwrap_or(1e9);
            let mut hw = Hardware::cpu_only(ncpus.max(1), fpops);
            let nv: u32 = hi.child_parse("nvidia_gpus").unwrap_or(0);
            if nv > 0 {
                let f: f64 = hi.child_parse("nvidia_fpops").unwrap_or(10.0 * fpops);
                hw = hw.with_group(ProcType::NvidiaGpu, nv, f);
            }
            let ati: u32 = hi.child_parse("ati_gpus").unwrap_or(0);
            if ati > 0 {
                let f: f64 = hi.child_parse("ati_fpops").unwrap_or(10.0 * fpops);
                hw = hw.with_group(ProcType::AtiGpu, ati, f);
            }
            if let Some(m) = hi.child_parse::<f64>("m_nbytes") {
                hw = hw.with_mem(m);
            }
            if let Some(v) = hi.child_parse::<f64>("vram_nbytes") {
                hw = hw.with_vram(v);
            }
            doc.hardware = hw;
        }

        if let Some(gp) = root.child("global_preferences") {
            let mut p = Preferences::default();
            if let Some(d) = gp.child_parse::<f64>("work_buf_min_days") {
                p.work_buf_min = SimDuration::from_days(d);
            }
            if let Some(d) = gp.child_parse::<f64>("work_buf_additional_days") {
                p.work_buf_extra = SimDuration::from_days(d);
            }
            p.run_if_user_active = parse_bool(gp, "run_if_user_active", p.run_if_user_active);
            p.gpu_if_user_active = parse_bool(gp, "run_gpu_if_user_active", p.gpu_if_user_active);
            if let Some(pct) = gp.child_parse::<f64>("max_ncpus_pct") {
                p.max_ncpus_frac = (pct / 100.0).clamp(0.0, 1.0);
            }
            if let Some(pct) = gp.child_parse::<f64>("ram_max_used_busy_pct") {
                p.ram_max_frac_busy = (pct / 100.0).clamp(0.0, 1.0);
            }
            if let Some(pct) = gp.child_parse::<f64>("ram_max_used_idle_pct") {
                p.ram_max_frac_idle = (pct / 100.0).clamp(0.0, 1.0);
            }
            if let (Some(s), Some(e)) =
                (gp.child_parse::<f64>("start_hour"), gp.child_parse::<f64>("end_hour"))
            {
                if s != e {
                    p.compute_window = Some(DailyWindow::new(s, e));
                }
            }
            p.leave_apps_in_memory = parse_bool(gp, "leave_apps_in_memory", p.leave_apps_in_memory);
            doc.prefs = p;
        }

        for (pi, pnode) in root.children_named("project").enumerate() {
            let name = pnode
                .child_text("project_name")
                .or_else(|| pnode.child_text("master_url"))
                .unwrap_or("unnamed")
                .to_string();
            let share: f64 = pnode.child_parse("resource_share").unwrap_or(100.0);
            if share < 0.0 {
                return schema_err(format!("project {name}: negative resource_share"));
            }
            let mut spec = ProjectSpec::new(pi as u32, name.clone(), share);
            for (ai, anode) in pnode.children_named("app").enumerate() {
                spec.apps.push(parse_app(anode, &name, ai as u32)?);
            }
            if spec.apps.is_empty() {
                return schema_err(format!("project {name}: no <app> elements"));
            }
            for rnode in pnode.children_named("result") {
                let app: u32 = rnode.child_parse("app_id").ok_or_else(|| {
                    StateFileError::Schema(format!("{name}: result missing app_id"))
                })?;
                if !spec.apps.iter().any(|a| a.id == AppId(app)) {
                    return schema_err(format!("{name}: result references unknown app {app}"));
                }
                let received_ago: f64 = rnode.child_parse("received_ago").unwrap_or(0.0);
                let progress: f64 = rnode.child_parse("progress").unwrap_or(0.0);
                if received_ago < 0.0 || progress < 0.0 {
                    return schema_err(format!("{name}: negative result fields"));
                }
                doc.initial_queue.push(InitialJob {
                    project: ProjectId(pi as u32),
                    app: AppId(app),
                    received_ago: SimDuration::from_secs(received_ago),
                    progress: SimDuration::from_secs(progress),
                });
            }
            doc.projects.push(spec);
        }

        if let Some(ts) = root.child("time_stats") {
            doc.on_frac = ts.child_parse::<f64>("on_frac").unwrap_or(1.0).clamp(0.0, 1.0);
            doc.active_frac = ts.child_parse::<f64>("active_frac").unwrap_or(0.0).clamp(0.0, 1.0);
            if let Some(c) = ts.child_parse::<f64>("cycle_mean") {
                if c > 0.0 {
                    doc.cycle_mean = SimDuration::from_secs(c);
                }
            }
        }
        doc.seed = root.child_parse("seed").unwrap_or(0);
        Ok(doc)
    }

    /// Serialize back to XML (round-trips through [`ClientStateDoc::parse_str`]).
    pub fn render(&self) -> String {
        let mut root = XmlNode::new("client_state");

        let mut hi = XmlNode::new("host_info");
        let hw = &self.hardware;
        hi.push(XmlNode::with_text("p_ncpus", hw.ninstances(ProcType::Cpu).to_string()));
        hi.push(XmlNode::with_text("p_fpops", fmt_f64(hw.flops_per_inst(ProcType::Cpu))));
        for (tag, ftag, t) in [
            ("nvidia_gpus", "nvidia_fpops", ProcType::NvidiaGpu),
            ("ati_gpus", "ati_fpops", ProcType::AtiGpu),
        ] {
            let n = hw.ninstances(t);
            hi.push(XmlNode::with_text(tag, n.to_string()));
            if n > 0 {
                hi.push(XmlNode::with_text(ftag, fmt_f64(hw.flops_per_inst(t))));
            }
        }
        hi.push(XmlNode::with_text("m_nbytes", fmt_f64(hw.mem_bytes)));
        hi.push(XmlNode::with_text("vram_nbytes", fmt_f64(hw.vram_bytes)));
        root.push(hi);

        let mut gp = XmlNode::new("global_preferences");
        let p = &self.prefs;
        gp.push(XmlNode::with_text("work_buf_min_days", fmt_f64(p.work_buf_min.days())));
        gp.push(XmlNode::with_text("work_buf_additional_days", fmt_f64(p.work_buf_extra.days())));
        gp.push(XmlNode::with_text("run_if_user_active", bool_str(p.run_if_user_active)));
        gp.push(XmlNode::with_text("run_gpu_if_user_active", bool_str(p.gpu_if_user_active)));
        gp.push(XmlNode::with_text("max_ncpus_pct", fmt_f64(p.max_ncpus_frac * 100.0)));
        gp.push(XmlNode::with_text("ram_max_used_busy_pct", fmt_f64(p.ram_max_frac_busy * 100.0)));
        gp.push(XmlNode::with_text("ram_max_used_idle_pct", fmt_f64(p.ram_max_frac_idle * 100.0)));
        if let Some(w) = p.compute_window {
            gp.push(XmlNode::with_text("start_hour", fmt_f64(w.start_sec / 3600.0)));
            gp.push(XmlNode::with_text("end_hour", fmt_f64(w.end_sec / 3600.0)));
        }
        gp.push(XmlNode::with_text("leave_apps_in_memory", bool_str(p.leave_apps_in_memory)));
        root.push(gp);

        for spec in &self.projects {
            let mut pn = XmlNode::new("project");
            pn.push(XmlNode::with_text("project_name", spec.name.clone()));
            pn.push(XmlNode::with_text("resource_share", fmt_f64(spec.resource_share)));
            for app in &spec.apps {
                pn.push(render_app(app));
            }
            for ij in self.initial_queue.iter().filter(|ij| ij.project == spec.id) {
                let mut rn = XmlNode::new("result");
                rn.push(XmlNode::with_text("app_id", ij.app.0.to_string()));
                rn.push(XmlNode::with_text("received_ago", fmt_f64(ij.received_ago.secs())));
                rn.push(XmlNode::with_text("progress", fmt_f64(ij.progress.secs())));
                pn.push(rn);
            }
            root.push(pn);
        }

        let mut ts = XmlNode::new("time_stats");
        ts.push(XmlNode::with_text("on_frac", fmt_f64(self.on_frac)));
        ts.push(XmlNode::with_text("active_frac", fmt_f64(self.active_frac)));
        ts.push(XmlNode::with_text("cycle_mean", fmt_f64(self.cycle_mean.secs())));
        root.push(ts);
        root.push(XmlNode::with_text("seed", self.seed.to_string()));
        root.render()
    }
}

fn parse_app(anode: &XmlNode, project: &str, idx: u32) -> Result<AppClass, StateFileError> {
    let name = anode.child_text("name").unwrap_or("app").to_string();
    let runtime: f64 = anode
        .child_parse("runtime_mean")
        .ok_or_else(|| StateFileError::Schema(format!("{project}/{name}: missing runtime_mean")))?;
    if runtime <= 0.0 {
        return schema_err(format!("{project}/{name}: runtime_mean must be positive"));
    }
    let latency: f64 = anode.child_parse("latency_bound").ok_or_else(|| {
        StateFileError::Schema(format!("{project}/{name}: missing latency_bound"))
    })?;
    let avg_ncpus: f64 = anode.child_parse("avg_ncpus").unwrap_or(1.0);
    let ngpus: f64 = anode.child_parse("ngpus").unwrap_or(0.0);
    let usage = if ngpus > 0.0 {
        let gpu_type = match anode.child_text("gpu_type") {
            Some("ati") => ProcType::AtiGpu,
            Some("nvidia") | None => ProcType::NvidiaGpu,
            Some(other) => {
                return schema_err(format!("{project}/{name}: unknown gpu_type {other:?}"))
            }
        };
        ResourceUsage::gpu(gpu_type, ngpus, avg_ncpus)
    } else {
        ResourceUsage::cpus(avg_ncpus)
    };
    let mut app = AppClass {
        id: bce_types::AppId(anode.child_parse("id").unwrap_or(idx)),
        name,
        usage,
        runtime_mean: SimDuration::from_secs(runtime),
        runtime_cv: anode.child_parse("runtime_cv").unwrap_or(0.05),
        est_error: EstErrorModel::Exact,
        latency_bound: SimDuration::from_secs(latency),
        checkpoint_period: anode
            .child_parse::<f64>("checkpoint_period")
            .and_then(|v| v.is_finite().then(|| SimDuration::from_secs(v))),
        working_set_bytes: anode.child_parse("working_set").unwrap_or(1e8),
        supply: match (
            anode.child_parse::<f64>("supply_work_mean"),
            anode.child_parse::<f64>("supply_dry_mean"),
        ) {
            (Some(w), Some(d)) if w > 0.0 && d > 0.0 => Some(SporadicSupply {
                work_mean: SimDuration::from_secs(w),
                dry_mean: SimDuration::from_secs(d),
            }),
            _ => None,
        },
        input_bytes: anode.child_parse("input_bytes").unwrap_or(0.0),
        output_bytes: anode.child_parse("output_bytes").unwrap_or(0.0),
        weight: anode.child_parse("weight").unwrap_or(1.0),
    };
    if anode.child("checkpoint_period").is_none() {
        app.checkpoint_period = Some(SimDuration::from_secs(60.0));
    }
    if let Some(f) = anode.child_parse::<f64>("est_error_factor") {
        app.est_error = EstErrorModel::Systematic { factor: f };
    } else if let Some(s) = anode.child_parse::<f64>("est_error_sigma") {
        app.est_error = EstErrorModel::LogNormal { sigma: s };
    }
    Ok(app)
}

fn render_app(app: &AppClass) -> XmlNode {
    let mut a = XmlNode::new("app");
    a.push(XmlNode::with_text("id", app.id.0.to_string()));
    a.push(XmlNode::with_text("name", app.name.clone()));
    a.push(XmlNode::with_text("avg_ncpus", fmt_f64(app.usage.avg_cpus)));
    if let Some((t, n)) = app.usage.coproc {
        a.push(XmlNode::with_text("ngpus", fmt_f64(n)));
        a.push(XmlNode::with_text(
            "gpu_type",
            match t {
                ProcType::AtiGpu => "ati",
                _ => "nvidia",
            },
        ));
    }
    a.push(XmlNode::with_text("runtime_mean", fmt_f64(app.runtime_mean.secs())));
    a.push(XmlNode::with_text("runtime_cv", fmt_f64(app.runtime_cv)));
    a.push(XmlNode::with_text("latency_bound", fmt_f64(app.latency_bound.secs())));
    if let Some(cp) = app.checkpoint_period {
        a.push(XmlNode::with_text("checkpoint_period", fmt_f64(cp.secs())));
    } else {
        a.push(XmlNode::with_text("checkpoint_period", "inf"));
    }
    a.push(XmlNode::with_text("working_set", fmt_f64(app.working_set_bytes)));
    a.push(XmlNode::with_text("input_bytes", fmt_f64(app.input_bytes)));
    a.push(XmlNode::with_text("output_bytes", fmt_f64(app.output_bytes)));
    a.push(XmlNode::with_text("weight", fmt_f64(app.weight)));
    if let Some(sp) = app.supply {
        a.push(XmlNode::with_text("supply_work_mean", fmt_f64(sp.work_mean.secs())));
        a.push(XmlNode::with_text("supply_dry_mean", fmt_f64(sp.dry_mean.secs())));
    }
    match app.est_error {
        EstErrorModel::Exact => {}
        EstErrorModel::Systematic { factor } => {
            a.push(XmlNode::with_text("est_error_factor", fmt_f64(factor)));
        }
        EstErrorModel::LogNormal { sigma } => {
            a.push(XmlNode::with_text("est_error_sigma", fmt_f64(sigma)));
        }
    }
    a
}

fn fmt_f64(v: f64) -> String {
    // Shortest representation that round-trips exactly.
    format!("{v}")
}

fn bool_str(b: bool) -> String {
    (if b { "1" } else { "0" }).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<client_state>
  <host_info>
    <p_ncpus>4</p_ncpus>
    <p_fpops>1e9</p_fpops>
    <nvidia_gpus>1</nvidia_gpus>
    <nvidia_fpops>1e10</nvidia_fpops>
    <m_nbytes>8e9</m_nbytes>
  </host_info>
  <global_preferences>
    <work_buf_min_days>0.05</work_buf_min_days>
    <run_if_user_active>0</run_if_user_active>
    <max_ncpus_pct>50</max_ncpus_pct>
  </global_preferences>
  <project>
    <project_name>einstein</project_name>
    <resource_share>100</resource_share>
    <app>
      <name>bench</name>
      <runtime_mean>10000</runtime_mean>
      <latency_bound>86400</latency_bound>
    </app>
  </project>
  <project>
    <project_name>seti</project_name>
    <resource_share>300</resource_share>
    <app>
      <name>gpu_search</name>
      <ngpus>1</ngpus>
      <avg_ncpus>0.1</avg_ncpus>
      <runtime_mean>2000</runtime_mean>
      <latency_bound>43200</latency_bound>
    </app>
  </project>
  <time_stats>
    <on_frac>0.8</on_frac>
    <active_frac>0.3</active_frac>
  </time_stats>
  <seed>1234</seed>
</client_state>"#;

    #[test]
    fn parse_sample() {
        let doc = ClientStateDoc::parse_str(SAMPLE).unwrap();
        assert_eq!(doc.hardware.ninstances(ProcType::Cpu), 4);
        assert_eq!(doc.hardware.ninstances(ProcType::NvidiaGpu), 1);
        assert_eq!(doc.hardware.flops_per_inst(ProcType::NvidiaGpu), 1e10);
        assert!(!doc.prefs.run_if_user_active);
        assert_eq!(doc.prefs.max_ncpus_frac, 0.5);
        assert!((doc.prefs.work_buf_min.days() - 0.05).abs() < 1e-12);
        assert_eq!(doc.projects.len(), 2);
        assert_eq!(doc.projects[1].resource_share, 300.0);
        assert!(doc.projects[1].apps[0].usage.is_gpu_job());
        assert_eq!(doc.on_frac, 0.8);
        assert_eq!(doc.seed, 1234);
    }

    #[test]
    fn roundtrip() {
        let doc = ClientStateDoc::parse_str(SAMPLE).unwrap();
        let xml = doc.render();
        let doc2 = ClientStateDoc::parse_str(&xml).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn missing_required_fields_rejected() {
        let bad = "<client_state><project><project_name>x</project_name>\
                   <app><name>a</name></app></project></client_state>";
        match ClientStateDoc::parse_str(bad) {
            Err(StateFileError::Schema(m)) => assert!(m.contains("runtime_mean"), "{m}"),
            other => panic!("expected schema error, got {other:?}"),
        }
    }

    #[test]
    fn project_without_apps_rejected() {
        let bad = "<client_state><project><project_name>x</project_name></project></client_state>";
        assert!(matches!(ClientStateDoc::parse_str(bad), Err(StateFileError::Schema(_))));
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(matches!(ClientStateDoc::parse_str("<nope/>"), Err(StateFileError::Schema(_))));
    }

    #[test]
    fn negative_share_rejected() {
        let bad = "<client_state><project><project_name>x</project_name>\
                   <resource_share>-5</resource_share>\
                   <app><name>a</name><runtime_mean>10</runtime_mean>\
                   <latency_bound>20</latency_bound></app></project></client_state>";
        assert!(matches!(ClientStateDoc::parse_str(bad), Err(StateFileError::Schema(_))));
    }

    #[test]
    fn default_doc_roundtrips() {
        let doc = ClientStateDoc::default();
        let doc2 = ClientStateDoc::parse_str(&doc.render()).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn unknown_gpu_type_rejected() {
        let bad = "<client_state><project><project_name>x</project_name>\
                   <app><name>a</name><ngpus>1</ngpus><gpu_type>intel</gpu_type>\
                   <runtime_mean>10</runtime_mean><latency_bound>20</latency_bound>\
                   </app></project></client_state>";
        assert!(matches!(ClientStateDoc::parse_str(bad), Err(StateFileError::Schema(_))));
    }
}

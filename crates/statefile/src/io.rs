//! Injectable I/O backend for checkpoint storage.
//!
//! Every byte the checkpoint store moves goes through a [`StateIo`]
//! implementation. Production uses [`RealIo`], which adds the fsync
//! discipline plain `std::fs::write` + `rename` lacks; chaos tests and
//! the `bce chaos` CLI use [`FaultyIo`], which wraps any backend and
//! injects a seeded [`DiskFaultPlan`] schedule of short writes, EIO,
//! ENOSPC, torn renames, and power-cut truncation. The store's recovery
//! guarantees are stated against this trait, so they are *tested*
//! against hostile storage, not just assumed on a healthy laptop.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

use bce_faults::{DiskFaultPlan, DiskFaultStats, ReadFault, RenameFault, WriteFault};

/// The I/O operation being attempted when an error surfaced. Carried in
/// error types so logs say *what* failed, not just that something did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    Open,
    Read,
    Write,
    Rename,
    Fsync,
    Remove,
    List,
    CreateDir,
}

impl IoOp {
    pub fn name(self) -> &'static str {
        match self {
            IoOp::Open => "open",
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Rename => "rename",
            IoOp::Fsync => "fsync",
            IoOp::Remove => "remove",
            IoOp::List => "list",
            IoOp::CreateDir => "create-dir",
        }
    }
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Filesystem surface the checkpoint store needs — deliberately small,
/// so a fault-injecting double can cover all of it.
pub trait StateIo: Send + Sync + std::fmt::Debug {
    /// Read an entire file.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;

    /// Write `bytes` to `path` (create/truncate) and fsync the file
    /// before returning. Durability of the *data* is this call's job;
    /// durability of the *name* is [`StateIo::sync_dir`]'s.
    fn write_durable(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;

    /// Atomically rename `from` over `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;

    /// Fsync a directory, persisting recent renames/unlinks within it.
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()>;

    /// Remove a file; missing files are an error (callers decide).
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;

    /// Create a directory and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()>;

    /// File names (not full paths) of directory entries.
    fn list_dir(&self, dir: &Path) -> std::io::Result<Vec<String>>;

    /// Does `path` exist?
    fn exists(&self, path: &Path) -> bool;
}

/// The production backend: `std::fs` plus the fsync discipline the
/// atomic-replace contract actually requires — data fsynced before the
/// rename publishes it, parent directory fsynced so the new name
/// survives a crash.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl StateIo for RealIo {
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_durable(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        // Opening a directory read-only and fsyncing it is the portable
        // unix idiom for persisting its entries. On platforms where
        // directories cannot be opened (windows), skip: NotFound and
        // similar mean the metadata journal handles it.
        match fs::File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// A fault-injecting backend: delegates to an inner [`StateIo`] but
/// consults a seeded [`DiskFaultPlan`] before every read, write, and
/// rename. Faults that "report success" (power cuts, torn renames)
/// leave truncated bytes on disk exactly as real hardware would, so
/// recovery is exercised against genuine on-disk damage.
#[derive(Debug)]
pub struct FaultyIo<I: StateIo> {
    inner: I,
    plan: Mutex<DiskFaultPlan>,
}

impl<I: StateIo> FaultyIo<I> {
    pub fn new(inner: I, plan: DiskFaultPlan) -> Self {
        FaultyIo { inner, plan: Mutex::new(plan) }
    }

    /// Faults injected so far.
    pub fn stats(&self) -> DiskFaultStats {
        self.plan.lock().unwrap().stats()
    }

    fn eio(op: IoOp, path: &Path) -> std::io::Error {
        std::io::Error::other(format!("injected EIO during {op} of {}", path.display()))
    }
}

impl<I: StateIo> StateIo for FaultyIo<I> {
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        if self.plan.lock().unwrap().plan_read() == ReadFault::Eio {
            return Err(Self::eio(IoOp::Read, path));
        }
        self.inner.read(path)
    }

    fn write_durable(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        match self.plan.lock().unwrap().plan_write(bytes.len()) {
            WriteFault::Ok => self.inner.write_durable(path, bytes),
            WriteFault::Eio { surviving } => {
                let _ = self.inner.write_durable(path, &bytes[..surviving]);
                Err(Self::eio(IoOp::Write, path))
            }
            WriteFault::Enospc { surviving } => {
                let _ = self.inner.write_durable(path, &bytes[..surviving]);
                Err(std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    format!("injected ENOSPC writing {}", path.display()),
                ))
            }
            WriteFault::PowerCut { surviving } => {
                // The lie every journalless disk tells: success reported,
                // prefix persisted.
                self.inner.write_durable(path, &bytes[..surviving])
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        let len = self.inner.read(from).map(|b| b.len()).unwrap_or(0);
        match self.plan.lock().unwrap().plan_rename(len) {
            RenameFault::Ok => self.inner.rename(from, to),
            RenameFault::Torn { surviving } => {
                let bytes = self.inner.read(from)?;
                self.inner.write_durable(to, &bytes[..surviving.min(bytes.len())])?;
                let _ = self.inner.remove_file(from);
                Ok(())
            }
        }
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        self.inner.sync_dir(dir)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        self.inner.list_dir(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

/// Reference-counted trait object alias used across crate boundaries.
pub type SharedIo = std::sync::Arc<dyn StateIo>;

#[cfg(test)]
mod tests {
    use super::*;
    use bce_faults::DiskFaultConfig;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bce-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_io_roundtrip_and_rename() {
        let dir = tmp_dir("real");
        let io = RealIo;
        let a = dir.join("a");
        let b = dir.join("b");
        io.write_durable(&a, b"hello").unwrap();
        assert_eq!(io.read(&a).unwrap(), b"hello");
        io.rename(&a, &b).unwrap();
        io.sync_dir(&dir).unwrap();
        assert!(!io.exists(&a) && io.exists(&b));
        let mut names = io.list_dir(&dir).unwrap();
        names.sort();
        assert_eq!(names, ["b"]);
        io.remove_file(&b).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_io_with_off_plan_is_transparent() {
        let dir = tmp_dir("off");
        let io = FaultyIo::new(RealIo, DiskFaultPlan::new(1, DiskFaultConfig::OFF));
        let p = dir.join("x");
        io.write_durable(&p, b"data").unwrap();
        assert_eq!(io.read(&p).unwrap(), b"data");
        assert_eq!(io.stats().total(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn power_cut_reports_success_but_truncates() {
        let dir = tmp_dir("cut");
        let cfg = DiskFaultConfig { power_cut_prob: 1.0, ..DiskFaultConfig::OFF };
        let io = FaultyIo::new(RealIo, DiskFaultPlan::new(2, cfg));
        let p = dir.join("x");
        io.write_durable(&p, b"0123456789").unwrap();
        assert!(io.read(&p).unwrap().len() < 10, "power cut must shorten the file");
        assert_eq!(io.stats().power_cuts, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_rename_reports_success_but_leaves_prefix() {
        let dir = tmp_dir("torn");
        let cfg = DiskFaultConfig { torn_rename_prob: 1.0, ..DiskFaultConfig::OFF };
        let io = FaultyIo::new(RealIo, DiskFaultPlan::new(3, cfg));
        let from = dir.join("from");
        let to = dir.join("to");
        io.write_durable(&from, b"full contents here").unwrap();
        io.rename(&from, &to).unwrap();
        assert!(!io.exists(&from));
        assert!(io.read(&to).unwrap().len() < 18);
        assert_eq!(io.stats().torn_renames, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_surfaces_storage_full() {
        let dir = tmp_dir("enospc");
        let cfg = DiskFaultConfig { write_enospc_prob: 1.0, ..DiskFaultConfig::OFF };
        let io = FaultyIo::new(RealIo, DiskFaultPlan::new(4, cfg));
        let err = io.write_durable(&dir.join("x"), b"abc").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        let _ = fs::remove_dir_all(&dir);
    }
}

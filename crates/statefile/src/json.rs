//! A strict, dependency-free JSON subset parser and canonical writer.
//!
//! Scenario specs and campaign manifests are JSON documents; like the XML
//! side ([`crate::xml`]) this parser is written from scratch and hardened
//! against hostile input: nesting depth is capped at
//! [`MAX_JSON_DEPTH`], duplicate object keys are rejected, and every
//! error carries a line/column position. The writer produces *canonical*
//! output — 2-space indent, insertion-ordered keys, shortest-round-trip
//! number rendering — so a parse → write cycle is a usable golden file.
//!
//! Determinism note: Rust's `{}` formatting of a finite `f64` is the
//! shortest string that round-trips to the same bits, so canonical JSON
//! numbers are bit-exact. Non-finite values have no JSON number form;
//! layers above encode them as `"bits:<16 hex>"` strings (see
//! [`crate::codec::fmt_f64_bits`]).

use std::fmt::Write as _;

/// Maximum array/object nesting depth, mirroring [`crate::xml::MAX_NESTING_DEPTH`].
pub const MAX_JSON_DEPTH: usize = 128;

/// A parsed JSON value. Object entries preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// All JSON numbers are held as `f64`; integers beyond 2^53 must be
    /// transported as decimal strings by the layer above.
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Human name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Render as canonical JSON: 2-space indent, insertion-ordered keys,
    /// `\n` separators, shortest-round-trip numbers, trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => render_number(*n, out),
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            JsonValue::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_number(n: f64, out: &mut String) {
    // The writer is only handed finite numbers; non-finite f64s are
    // encoded as "bits:<hex>" strings by the layer above.
    debug_assert!(n.is_finite(), "non-finite number reached the JSON writer");
    if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`parse`], with a 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at line {}, col {}: {}", self.line, self.col, self.message)
    }
}
impl std::error::Error for JsonError {}

/// Parse a complete JSON document. Trailing non-whitespace, duplicate
/// object keys, and nesting deeper than [`MAX_JSON_DEPTH`] are errors.
pub fn parse(src: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError { line, col, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_JSON_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar; the source is a &str so the
                    // bytes are valid UTF-8 already.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        let digits_before = self.digits();
        if digits_before == 0 {
            return Err(self.err("expected digit"));
        }
        if digits_before > 1 && self.bytes[int_start] == b'0' {
            return Err(self.err("leading zero"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected digit after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected digit in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(JsonValue::Num(n))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn parse_nested() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn object_order_preserved() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let e = parse(r#"{"a": 1, "a": 2}"#).unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn depth_bomb_rejected() {
        let deep = "[".repeat(MAX_JSON_DEPTH + 10);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        // One under the cap parses (and then fails on truncation, not depth).
        let ok_depth = format!("{}1{}", "[".repeat(50), "]".repeat(50));
        parse(&ok_depth).unwrap();
    }

    #[test]
    fn trailing_content_rejected() {
        assert!(parse("1 2").is_err());
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn error_position() {
        let e = parse("{\"a\": 1,\n \"a\": 2}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\nd\u{41}é");
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\q""#).is_err());
        assert!(parse("\"a\u{01}b\"").is_err());
    }

    #[test]
    fn malformed_inputs_error_without_panic() {
        for src in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "{\"a\":}",
            "[1,",
            "[1 2]",
            "tru",
            "01",
            "1.",
            "1e",
            "-",
            "nul",
            "{1: 2}",
            "\"\\u12\"",
        ] {
            assert!(parse(src).is_err(), "expected error for {src:?}");
        }
    }

    #[test]
    fn render_roundtrip_canonical() {
        let src = r#"{"name": "x", "vals": [1, 2.5, -3e-2], "flag": true, "none": null, "obj": {"k": ""}, "empty_arr": [], "empty_obj": {}}"#;
        let v = parse(src).unwrap();
        let rendered = v.render();
        let v2 = parse(&rendered).unwrap();
        assert_eq!(v, v2);
        // Canonical form is a fixed point.
        assert_eq!(v2.render(), rendered);
    }

    #[test]
    fn numbers_roundtrip_bit_exact() {
        for x in [0.0, -0.0, 1.0, 0.1, 1e300, 5e-324, std::f64::consts::PI, 86400.0, 2e9] {
            let mut s = String::new();
            render_number(x, &mut s);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} rendered as {s}");
        }
    }

    #[test]
    fn render_escapes_control_chars() {
        let v = JsonValue::Str("a\"b\\c\nd\u{01}".into());
        let mut out = String::new();
        render_string(v.as_str().unwrap(), &mut out);
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
        let back = parse(&out).unwrap();
        assert_eq!(back, v);
    }
}

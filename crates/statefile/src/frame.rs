//! Checksummed on-disk framing for checkpoint payloads.
//!
//! A checkpoint on a volunteer host must assume the storage under it
//! lies: torn renames and power-cut truncation produce files that
//! *exist* and *open* but hold garbage. The frame makes corruption
//! detectable before any parser runs:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "BCEFRAME"
//! 8       4     frame version (u32 LE), currently 1
//! 12      8     payload length (u64 LE)
//! 20      8     CRC-64/XZ over the payload (u64 LE)
//! 28      n     payload (opaque bytes — XML checkpoint text today)
//! ```
//!
//! The payload is opaque bytes, so the f64 bit-pattern discipline of the
//! inner codec (`fmt_f64_bits`) is untouched. CRC-64/XZ was chosen over
//! CRC-32 because checkpoints grow with campaign size (a 100k-run
//! campaign bitmap is ~12 kB and full emulation states are far larger);
//! a 32-bit check leaves a non-negligible collision chance across the
//! many generations × campaigns a long-lived service writes, while
//! CRC-64 keeps undetected-corruption odds negligible and still hashes
//! at memory speed with a 256-entry table. Cryptographic hashes would
//! buy tamper resistance we don't need at 4× the cost.
//!
//! Legacy checkpoints written before framing are bare XML. [`decode`]
//! distinguishes them by magic: a buffer not starting with `BCEFRAME`
//! yields [`FrameError::NotFramed`], and callers sniff it as legacy.

/// Frame magic. Eight bytes so the version/length fields stay aligned
/// and an accidental XML payload (`<bce_...`) can never collide.
pub const FRAME_MAGIC: [u8; 8] = *b"BCEFRAME";

/// Current frame version.
pub const FRAME_VERSION: u32 = 1;

/// Fixed header size in bytes.
pub const FRAME_HEADER_LEN: usize = 28;

/// Why a buffer failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer does not begin with [`FRAME_MAGIC`] — either a legacy
    /// unchecksummed checkpoint or not a checkpoint at all.
    NotFramed,
    /// Framed, but with a version this build does not understand.
    UnsupportedVersion { found: u32, max: u32 },
    /// Framed, but shorter than the header or the declared payload —
    /// the signature of power-cut truncation or a torn rename.
    Truncated { expected: usize, found: usize },
    /// Payload bytes after the declared length — the file was appended
    /// to or spliced; refuse rather than guess.
    TrailingBytes { expected: usize, found: usize },
    /// The payload CRC does not match the header — bit rot or a partial
    /// overwrite.
    CrcMismatch { expected: u64, found: u64 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::NotFramed => write!(f, "buffer is not a checksummed frame"),
            FrameError::UnsupportedVersion { found, max } => {
                write!(f, "frame version {found} is newer than supported {max}")
            }
            FrameError::Truncated { expected, found } => {
                write!(f, "frame truncated: expected {expected} bytes, found {found}")
            }
            FrameError::TrailingBytes { expected, found } => {
                write!(f, "frame has trailing bytes: expected {expected} bytes, found {found}")
            }
            FrameError::CrcMismatch { expected, found } => {
                write!(f, "frame CRC mismatch: header {expected:#018x}, payload {found:#018x}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-64/XZ (reflected, poly 0xC96C5795D7870F42, init/xorout all-ones),
/// the variant used by xz-utils — table-driven, one byte per step.
pub fn crc64(bytes: &[u8]) -> u64 {
    const TABLE: [u64; 256] = crc64_table();
    let mut crc = !0u64;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

const fn crc64_table() -> [u64; 256] {
    // Reflected form of the ECMA-182 polynomial 0x42F0E1EBA9EA3693.
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Wrap `payload` in a checksummed frame.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a frame and return its payload slice.
///
/// Every failure mode is typed: callers distinguish "legacy file"
/// ([`FrameError::NotFramed`]) from "corrupt generation" (everything
/// else), because the first is loadable and the second triggers
/// fallback to an older generation.
pub fn decode(buf: &[u8]) -> Result<&[u8], FrameError> {
    if buf.len() < FRAME_MAGIC.len() || buf[..FRAME_MAGIC.len()] != FRAME_MAGIC {
        // A truncated prefix of the magic itself is indistinguishable
        // from "some other file"; NotFramed is the safe answer for both
        // (the store treats an unparseable legacy sniff as corrupt).
        return Err(FrameError::NotFramed);
    }
    if buf.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Truncated { expected: FRAME_HEADER_LEN, found: buf.len() });
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if version == 0 || version > FRAME_VERSION {
        return Err(FrameError::UnsupportedVersion { found: version, max: FRAME_VERSION });
    }
    let len = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    let expected_total = (FRAME_HEADER_LEN as u64).saturating_add(len);
    if (buf.len() as u64) < expected_total {
        return Err(FrameError::Truncated {
            expected: expected_total.min(usize::MAX as u64) as usize,
            found: buf.len(),
        });
    }
    if (buf.len() as u64) > expected_total {
        return Err(FrameError::TrailingBytes {
            expected: expected_total as usize,
            found: buf.len(),
        });
    }
    let payload = &buf[FRAME_HEADER_LEN..];
    let expected_crc = u64::from_le_bytes(buf[20..28].try_into().unwrap());
    let found_crc = crc64(payload);
    if found_crc != expected_crc {
        return Err(FrameError::CrcMismatch { expected: expected_crc, found: found_crc });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_matches_known_vectors() {
        // CRC-64/XZ check value from the catalogue of parametrised CRCs.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn roundtrip() {
        for payload in [&b""[..], b"x", b"<bce_checkpoint version=\"2\"/>", &[0u8; 4096][..]] {
            let framed = encode(payload);
            assert_eq!(decode(&framed).unwrap(), payload);
        }
    }

    #[test]
    fn legacy_xml_is_not_framed() {
        assert_eq!(decode(b"<bce_checkpoint version=\"2\"/>"), Err(FrameError::NotFramed));
        assert_eq!(decode(b""), Err(FrameError::NotFramed));
        assert_eq!(decode(b"BCEFRA"), Err(FrameError::NotFramed));
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let framed = encode(b"the quick brown fox jumps over the lazy dog");
        for cut in 0..framed.len() {
            let err = decode(&framed[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::NotFramed | FrameError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let framed = encode(b"payload under test, long enough to matter");
        for byte in 0..framed.len() {
            let mut bad = framed.clone();
            bad[byte] ^= 0x01;
            assert!(decode(&bad).is_err(), "flip at byte {byte} went undetected");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut framed = encode(b"abc");
        framed.push(0);
        assert!(matches!(decode(&framed), Err(FrameError::TrailingBytes { .. })));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut framed = encode(b"abc");
        framed[8..12].copy_from_slice(&(FRAME_VERSION + 1).to_le_bytes());
        assert!(matches!(decode(&framed), Err(FrameError::UnsupportedVersion { .. })));
    }
}

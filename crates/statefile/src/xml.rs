//! A minimal XML subset, sufficient for BOINC-style `client_state.xml`
//! documents: nested elements, attributes, text content, comments, XML
//! declarations, and the five predefined entities. No namespaces, CDATA,
//! processing instructions or DTDs — BOINC state files use none of them.
//!
//! Implemented from scratch so the ingest path (volunteers paste their
//! state files into a web form, §4.3) has no external dependencies and
//! can give precise line-numbered errors.

use std::fmt::Write as _;

/// A parsed element.
#[derive(Debug, Clone, PartialEq)]
pub struct XmlNode {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly inside this element (trimmed).
    pub text: String,
}

impl XmlNode {
    pub fn new(name: impl Into<String>) -> Self {
        XmlNode { name: name.into(), attrs: Vec::new(), children: Vec::new(), text: String::new() }
    }

    pub fn with_text(name: impl Into<String>, text: impl Into<String>) -> Self {
        let mut n = XmlNode::new(name);
        n.text = text.into();
        n
    }

    pub fn push(&mut self, child: XmlNode) -> &mut Self {
        self.children.push(child);
        self
    }

    /// First child element with the given name.
    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Text of the named child, if present.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.child(name).map(|c| c.text.as_str())
    }

    /// Parse the named child's text as `T`.
    pub fn child_parse<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.child_text(name).and_then(|t| t.parse().ok())
    }

    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Serialize with 2-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let _ = write!(out, "{pad}<{}", self.name);
        for (k, v) in &self.attrs {
            let _ = write!(out, " {k}=\"{}\"", escape(v));
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
        } else if self.children.is_empty() {
            let _ = writeln!(out, ">{}</{}>", escape(&self.text), self.name);
        } else {
            out.push_str(">\n");
            if !self.text.is_empty() {
                let _ = writeln!(out, "{pad}  {}", escape(&self.text));
            }
            for c in &self.children {
                c.render_into(out, depth + 1);
            }
            let _ = writeln!(out, "{pad}</{}>", self.name);
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

/// Deepest element nesting the parser accepts. Real `client_state.xml`
/// files are ~4 levels deep; the cap exists so a hostile document of the
/// form `<a><a><a>…` gets a typed, line-numbered error instead of
/// overflowing the stack of the recursive-descent parser — a stack
/// overflow aborts the process and cannot be caught, so on an untrusted
/// ingest path (the daemon's POST bodies) it would be a one-request
/// denial of service.
pub const MAX_NESTING_DEPTH: usize = 128;

/// Parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct XmlError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML error at line {}: {}", self.line, self.message)
    }
}
impl std::error::Error for XmlError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError { line: self.line, message: msg.into() })
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn consume(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                while !self.consume("?>") {
                    if self.bump().is_none() {
                        return self.err("unterminated declaration");
                    }
                }
            } else if self.starts_with("<!--") {
                while !self.consume("-->") {
                    if self.bump().is_none() {
                        return self.err("unterminated comment");
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected name");
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected quoted attribute value"),
        };
        let mut raw = Vec::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => break,
                Some(c) => raw.push(c),
                None => return self.err("unterminated attribute value"),
            }
        }
        self.unescape(&raw)
    }

    fn unescape(&self, raw: &[u8]) -> Result<String, XmlError> {
        let s = String::from_utf8_lossy(raw);
        if !s.contains('&') {
            return Ok(s.into_owned());
        }
        let mut out = String::with_capacity(s.len());
        let mut rest = s.as_ref();
        while let Some(i) = rest.find('&') {
            out.push_str(&rest[..i]);
            rest = &rest[i..];
            let semi = match rest.find(';') {
                Some(j) if j <= 6 => j,
                _ => return Err(XmlError { line: self.line, message: "bad entity".into() }),
            };
            match &rest[1..semi] {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                e => {
                    return Err(XmlError {
                        line: self.line,
                        message: format!("unknown entity &{e};"),
                    })
                }
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }

    fn element(&mut self, depth: usize) -> Result<XmlNode, XmlError> {
        if depth > MAX_NESTING_DEPTH {
            return self.err(format!("element nesting deeper than {MAX_NESTING_DEPTH} levels"));
        }
        if !self.consume("<") {
            return self.err("expected '<'");
        }
        let name = self.name()?;
        let mut node = XmlNode::new(name);
        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.bump();
                    if !self.consume(">") {
                        return self.err("expected '>' after '/'");
                    }
                    return Ok(node);
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let k = self.name()?;
                    self.skip_ws();
                    if !self.consume("=") {
                        return self.err(format!("expected '=' after attribute {k}"));
                    }
                    self.skip_ws();
                    let v = self.attr_value()?;
                    node.attrs.push((k, v));
                }
                None => return self.err("unexpected end of input in tag"),
            }
        }
        // content
        let mut text_raw: Vec<u8> = Vec::new();
        loop {
            if self.starts_with("<!--") {
                while !self.consume("-->") {
                    if self.bump().is_none() {
                        return self.err("unterminated comment");
                    }
                }
            } else if self.starts_with("</") {
                self.consume("</");
                let close = self.name()?;
                if close != node.name {
                    return self
                        .err(format!("mismatched close tag </{close}> for <{}>", node.name));
                }
                self.skip_ws();
                if !self.consume(">") {
                    return self.err("expected '>' in close tag");
                }
                node.text = self.unescape(&text_raw)?.trim().to_string();
                return Ok(node);
            } else if self.starts_with("<") {
                node.children.push(self.element(depth + 1)?);
            } else {
                match self.bump() {
                    Some(c) => text_raw.push(c),
                    None => return self.err(format!("unexpected end of input in <{}>", node.name)),
                }
            }
        }
    }
}

/// Parse a document; returns its single root element.
pub fn parse(src: &str) -> Result<XmlNode, XmlError> {
    let mut p = Parser { src: src.as_bytes(), pos: 0, line: 1 };
    p.skip_misc()?;
    let root = p.element(0)?;
    p.skip_misc()?;
    if p.pos != p.src.len() {
        return p.err("trailing content after root element");
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let n = parse("<a><b>1</b><c x=\"y\">text</c></a>").unwrap();
        assert_eq!(n.name, "a");
        assert_eq!(n.child_text("b"), Some("1"));
        assert_eq!(n.child("c").unwrap().attr("x"), Some("y"));
        assert_eq!(n.child("c").unwrap().text, "text");
        assert_eq!(n.child_parse::<i32>("b"), Some(1));
    }

    #[test]
    fn parse_with_decl_and_comments() {
        let n = parse("<?xml version=\"1.0\"?>\n<!-- hi -->\n<r><!-- inner --><x/></r>").unwrap();
        assert_eq!(n.name, "r");
        assert!(n.child("x").is_some());
    }

    #[test]
    fn self_closing_and_repeats() {
        let n = parse("<r><p/><p/><p/></r>").unwrap();
        assert_eq!(n.children_named("p").count(), 3);
    }

    #[test]
    fn entities_roundtrip() {
        let n = parse("<r>a &amp; b &lt;c&gt; &quot;d&quot; &apos;e&apos;</r>").unwrap();
        assert_eq!(n.text, "a & b <c> \"d\" 'e'");
        let rendered = XmlNode::with_text("r", n.text.clone()).render();
        let re = parse(&rendered).unwrap();
        assert_eq!(re.text, n.text);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("<a>\n<b>\n</c>\n</a>").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn hostile_nesting_is_a_typed_error_not_a_stack_overflow() {
        // A stack overflow would abort the process (uncatchable), so the
        // depth cap is load-bearing for the daemon's untrusted ingest.
        let deep = "<a>".repeat(100_000);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting deeper"), "{e}");

        // At the cap itself (root is depth 0), documents still parse.
        let n = MAX_NESTING_DEPTH;
        let ok = format!("{}{}", "<a>".repeat(n + 1), "</a>".repeat(n + 1));
        assert!(parse(&ok).is_ok());
        let over = format!("{}{}", "<a>".repeat(n + 2), "</a>".repeat(n + 2));
        assert!(parse(&over).is_err());
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(parse("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn rejects_unterminated() {
        assert!(parse("<a><b></a>").is_err());
        assert!(parse("<a").is_err());
        assert!(parse("<!-- never closed").is_err());
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut root = XmlNode::new("client_state");
        root.push(XmlNode::with_text("version", "7.16"));
        let mut proj = XmlNode::new("project");
        proj.attrs.push(("url".into(), "https://a.example/?q=1&r=2".into()));
        proj.push(XmlNode::with_text("share", "100"));
        root.push(proj);
        let text = root.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, root);
    }

    #[test]
    fn whitespace_tolerant_attrs() {
        let n = parse("<a  k = \"v\"   j='w' />").unwrap();
        assert_eq!(n.attr("k"), Some("v"));
        assert_eq!(n.attr("j"), Some("w"));
    }
}

//! Generation-rotated, corruption-tolerant checkpoint store.
//!
//! A single atomic checkpoint file survives a crash *during* the write,
//! but not damage *after* it: one bit-flip, torn rename, or power-cut
//! truncation of the only copy turns a 100k-run campaign into a fatal
//! error. The store keeps the last N generations as `<base>.<gen>`
//! (plus a tiny `<base>.manifest` hint), frames every generation with a
//! CRC-64 checksum ([`crate::frame`]), and on open walks generations
//! newest-first, falling back past corrupt ones and reporting what it
//! skipped in a typed [`RecoveryReport`] instead of failing.
//!
//! Semantics callers rely on:
//!
//! * **The directory scan is authoritative.** The manifest is a hint for
//!   humans and tooling; a stale or missing manifest never changes which
//!   generation opens.
//! * **Fallback is loud.** Opening an older generation succeeds but the
//!   report lists every rejected newer generation and why.
//! * **All-corrupt is fatal.** If generations exist but none validates,
//!   the store returns [`StoreError::NoValidGeneration`] — it never
//!   silently restarts from scratch.
//! * **Legacy files load.** A bare unframed `<base>` file from before
//!   this format is version-sniffed and opened with
//!   [`RecoveryReport::legacy`] set, so operators see the deprecation.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::frame;
use crate::io::{IoOp, RealIo, SharedIo};

/// Default number of generations to keep on disk.
pub const DEFAULT_KEEP_GENERATIONS: usize = 3;

/// Why the store could not produce a checkpoint.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed; carries what, where, and the OS error.
    Io { op: IoOp, path: PathBuf, source: std::io::Error },
    /// Nothing to open: no generation files and no legacy file.
    NoCheckpoint,
    /// Generations exist but every one failed validation. Deliberately
    /// distinct from [`StoreError::NoCheckpoint`]: callers must not
    /// treat "all copies corrupt" as "fresh start".
    NoValidGeneration { rejected: Vec<RejectedGeneration> },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "checkpoint I/O failed: {op} {}: {source}", path.display())
            }
            StoreError::NoCheckpoint => write!(f, "no checkpoint found"),
            StoreError::NoValidGeneration { rejected } => {
                write!(f, "no valid checkpoint generation ({} rejected:", rejected.len())?;
                for r in rejected {
                    write!(f, " [gen {}: {}]", r.generation, r.reason)?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One generation the store examined and refused, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedGeneration {
    pub generation: u64,
    pub path: PathBuf,
    pub reason: String,
}

/// What [`CheckpointStore::open_latest_with`] actually did: which
/// generation it opened, whether it was a legacy unframed file, and
/// every newer generation it had to reject on the way.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Generation opened; `None` when a legacy bare file was loaded.
    pub opened_generation: Option<u64>,
    /// The opened file predates checksummed framing (deprecated format).
    pub legacy: bool,
    /// Newer generations rejected before one validated, newest first.
    pub rejected: Vec<RejectedGeneration>,
}

impl RecoveryReport {
    /// Did the open fall back past at least one corrupt generation?
    pub fn recovered(&self) -> bool {
        !self.rejected.is_empty()
    }

    /// One-line operator-facing summary.
    pub fn describe(&self) -> String {
        let opened = match self.opened_generation {
            Some(g) => format!("generation {g}"),
            None => "legacy unframed checkpoint (deprecated; rewrite on next save)".to_string(),
        };
        if self.rejected.is_empty() {
            format!("opened {opened}")
        } else {
            let skipped: Vec<String> = self
                .rejected
                .iter()
                .map(|r| format!("gen {} ({})", r.generation, r.reason))
                .collect();
            format!("opened {opened} after rejecting {}", skipped.join(", "))
        }
    }
}

/// Receipt for one durable write: the generation published and how many
/// old generations rotation pruned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReceipt {
    pub generation: u64,
    pub pruned: u64,
}

/// A rotation of checksummed checkpoint generations under one base path.
///
/// For base `dir/pop.ckpt` the on-disk layout is:
///
/// ```text
/// dir/pop.ckpt.1          oldest kept generation (framed)
/// dir/pop.ckpt.2
/// dir/pop.ckpt.3          newest generation (framed)
/// dir/pop.ckpt.manifest   hint: latest generation + keep count
/// dir/pop.ckpt            only if written by a pre-rotation build (legacy)
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    base: PathBuf,
    file_name: String,
    keep: usize,
    io: SharedIo,
}

impl CheckpointStore {
    /// A store over `base` keeping `keep` generations, using `io` for
    /// every filesystem touch. `keep` is clamped to at least 1.
    pub fn new(base: impl Into<PathBuf>, keep: usize, io: SharedIo) -> Self {
        let base = base.into();
        let file_name = base
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "ckpt".to_string());
        CheckpointStore { base, file_name, keep: keep.max(1), io }
    }

    /// A store over `base` with the production [`RealIo`] backend.
    pub fn with_real_io(base: impl Into<PathBuf>, keep: usize) -> Self {
        CheckpointStore::new(base, keep, Arc::new(RealIo))
    }

    pub fn base(&self) -> &Path {
        &self.base
    }

    pub fn keep_generations(&self) -> usize {
        self.keep
    }

    fn dir(&self) -> PathBuf {
        self.base
            .parent()
            .map(Path::to_path_buf)
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or_else(|| PathBuf::from("."))
    }

    /// Path of generation `gen`.
    pub fn generation_path(&self, gen: u64) -> PathBuf {
        self.dir().join(format!("{}.{gen}", self.file_name))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir().join(format!("{}.manifest", self.file_name))
    }

    fn tmp_path(&self) -> PathBuf {
        self.dir().join(format!("{}.tmp", self.file_name))
    }

    /// Is there anything to resume from — any generation file or a
    /// legacy bare file? (Corrupt counts as "something": resuming must
    /// then either recover or fail loudly, never restart silently.)
    pub fn any_checkpoint_present(&self) -> bool {
        !self.generations_on_disk().unwrap_or_default().is_empty() || self.io.exists(&self.base)
    }

    /// Generation numbers currently on disk, ascending. A missing
    /// directory reads as empty.
    pub fn generations_on_disk(&self) -> Result<Vec<u64>, StoreError> {
        let dir = self.dir();
        let names = match self.io.list_dir(&dir) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::Io { op: IoOp::List, path: dir, source: e }),
        };
        let prefix = format!("{}.", self.file_name);
        let mut gens: Vec<u64> = names
            .iter()
            .filter_map(|n| n.strip_prefix(&prefix))
            .filter_map(|suffix| {
                // Only all-digit suffixes are generations; `.tmp` and
                // `.manifest` live in the same namespace.
                if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
                    suffix.parse().ok()
                } else {
                    None
                }
            })
            .collect();
        gens.sort_unstable();
        gens.dedup();
        Ok(gens)
    }

    /// Frame `payload`, publish it as the next generation, update the
    /// manifest hint, and prune generations beyond the keep limit.
    ///
    /// Durability: the framed bytes are fsynced in a temp file, renamed
    /// into place, and the parent directory fsynced — a crash at any
    /// point leaves either the old newest generation or the new one,
    /// never a half-written newest.
    pub fn write(&self, payload: &[u8]) -> Result<WriteReceipt, StoreError> {
        let dir = self.dir();
        self.io.create_dir_all(&dir).map_err(|e| StoreError::Io {
            op: IoOp::CreateDir,
            path: dir.clone(),
            source: e,
        })?;

        let gens = self.generations_on_disk()?;
        let generation = gens.last().copied().unwrap_or(0) + 1;
        let framed = frame::encode(payload);

        let tmp = self.tmp_path();
        if let Err(e) = self.io.write_durable(&tmp, &framed) {
            let _ = self.io.remove_file(&tmp);
            return Err(StoreError::Io { op: IoOp::Write, path: tmp, source: e });
        }
        let gen_path = self.generation_path(generation);
        if let Err(e) = self.io.rename(&tmp, &gen_path) {
            let _ = self.io.remove_file(&tmp);
            return Err(StoreError::Io { op: IoOp::Rename, path: gen_path, source: e });
        }
        self.io.sync_dir(&dir).map_err(|e| StoreError::Io {
            op: IoOp::Fsync,
            path: dir.clone(),
            source: e,
        })?;

        // The manifest is a non-authoritative hint; a failed hint update
        // must not fail a successfully published generation.
        let _ = self.write_manifest(generation);

        // Prune beyond the keep window, oldest first. Best-effort: a
        // prune failure leaves extra history, which is safe.
        let mut pruned = 0u64;
        if gens.len() + 1 > self.keep {
            let excess = gens.len() + 1 - self.keep;
            for &old in gens.iter().take(excess) {
                if self.io.remove_file(&self.generation_path(old)).is_ok() {
                    pruned += 1;
                }
            }
            if pruned > 0 {
                let _ = self.io.sync_dir(&dir);
            }
        }

        Ok(WriteReceipt { generation, pruned })
    }

    fn write_manifest(&self, latest: u64) -> std::io::Result<()> {
        let body = format!("bce-checkpoint-manifest v1\nlatest {latest}\nkeep {}\n", self.keep);
        let tmp = self.dir().join(format!("{}.manifest.tmp", self.file_name));
        self.io.write_durable(&tmp, body.as_bytes())?;
        self.io.rename(&tmp, &self.manifest_path())
    }

    /// The `latest` hint from the manifest, if present and well-formed.
    pub fn manifest_latest(&self) -> Option<u64> {
        let bytes = self.io.read(&self.manifest_path()).ok()?;
        let text = String::from_utf8(bytes).ok()?;
        text.lines().find_map(|l| l.strip_prefix("latest ")?.trim().parse().ok())
    }

    /// Open the newest generation whose frame validates **and** whose
    /// payload `parse` accepts, falling back past corrupt ones. Returns
    /// the parsed value plus a [`RecoveryReport`]. Running `parse`
    /// inside the walk means a CRC-valid generation with an unparseable
    /// payload (e.g. interrupted schema migration) also falls back
    /// instead of failing.
    pub fn open_latest_with<T>(
        &self,
        mut parse: impl FnMut(&str) -> Result<T, String>,
    ) -> Result<(T, RecoveryReport), StoreError> {
        let mut rejected = Vec::new();
        let gens = self.generations_on_disk()?;
        for &gen in gens.iter().rev() {
            let path = self.generation_path(gen);
            let reason = match self.io.read(&path) {
                Err(e) => format!("read failed: {e}"),
                Ok(bytes) => match frame::decode(&bytes) {
                    Err(e) => format!("{e}"),
                    Ok(payload) => match std::str::from_utf8(payload) {
                        Err(_) => "payload is not valid UTF-8".to_string(),
                        Ok(text) => match parse(text) {
                            Err(e) => format!("payload rejected: {e}"),
                            Ok(value) => {
                                return Ok((
                                    value,
                                    RecoveryReport {
                                        opened_generation: Some(gen),
                                        legacy: false,
                                        rejected,
                                    },
                                ));
                            }
                        },
                    },
                },
            };
            rejected.push(RejectedGeneration { generation: gen, path, reason });
        }

        // No generation validated. A bare legacy file (pre-rotation
        // build) is still an acceptable source — version-sniffed, loud
        // about its deprecation via `legacy: true`.
        if self.io.exists(&self.base) {
            let bytes = self.io.read(&self.base).map_err(|e| StoreError::Io {
                op: IoOp::Read,
                path: self.base.clone(),
                source: e,
            })?;
            let (text, legacy) = match frame::decode(&bytes) {
                Ok(payload) => match std::str::from_utf8(payload) {
                    Ok(t) => (t.to_string(), false),
                    Err(_) => {
                        return Err(self.all_rejected(
                            rejected,
                            &self.base.clone(),
                            "payload is not valid UTF-8",
                        ))
                    }
                },
                Err(frame::FrameError::NotFramed) => match String::from_utf8(bytes) {
                    Ok(t) => (t, true),
                    Err(_) => {
                        return Err(self.all_rejected(
                            rejected,
                            &self.base.clone(),
                            "legacy file is not valid UTF-8",
                        ))
                    }
                },
                Err(e) => {
                    return Err(self.all_rejected(rejected, &self.base.clone(), &format!("{e}")))
                }
            };
            match parse(&text) {
                Ok(value) => {
                    return Ok((
                        value,
                        RecoveryReport { opened_generation: None, legacy, rejected },
                    ))
                }
                Err(e) => {
                    return Err(self.all_rejected(
                        rejected,
                        &self.base.clone(),
                        &format!("payload rejected: {e}"),
                    ))
                }
            }
        }

        if rejected.is_empty() {
            Err(StoreError::NoCheckpoint)
        } else {
            Err(StoreError::NoValidGeneration { rejected })
        }
    }

    fn all_rejected(
        &self,
        mut rejected: Vec<RejectedGeneration>,
        path: &Path,
        reason: &str,
    ) -> StoreError {
        rejected.push(RejectedGeneration {
            generation: 0,
            path: path.to_path_buf(),
            reason: reason.to_string(),
        });
        StoreError::NoValidGeneration { rejected }
    }

    /// Read the newest valid generation's raw payload without parsing.
    pub fn read_latest(&self) -> Result<(Vec<u8>, RecoveryReport), StoreError> {
        let (text, report) = self.open_latest_with(|t| Ok::<String, String>(t.to_string()))?;
        Ok((text.into_bytes(), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bce-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn store(dir: &Path, keep: usize) -> CheckpointStore {
        CheckpointStore::with_real_io(dir.join("pop.ckpt"), keep)
    }

    #[test]
    fn write_read_roundtrip_and_rotation() {
        let dir = scratch("rot");
        let s = store(&dir, 3);
        for i in 1..=5u64 {
            let receipt = s.write(format!("payload-{i}").as_bytes()).unwrap();
            assert_eq!(receipt.generation, i);
        }
        assert_eq!(s.generations_on_disk().unwrap(), vec![3, 4, 5]);
        assert_eq!(s.manifest_latest(), Some(5));
        let (bytes, report) = s.read_latest().unwrap();
        assert_eq!(bytes, b"payload-5");
        assert_eq!(report.opened_generation, Some(5));
        assert!(!report.recovered() && !report.legacy);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_counts_are_reported() {
        let dir = scratch("prune");
        let s = store(&dir, 2);
        assert_eq!(s.write(b"a").unwrap().pruned, 0);
        assert_eq!(s.write(b"b").unwrap().pruned, 0);
        assert_eq!(s.write(b"c").unwrap().pruned, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_with_report() {
        let dir = scratch("fallback");
        let s = store(&dir, 3);
        s.write(b"old-good").unwrap();
        s.write(b"new-good").unwrap();
        // Truncate the newest generation mid-frame.
        let newest = s.generation_path(2);
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        let (payload, report) = s.read_latest().unwrap();
        assert_eq!(payload, b"old-good");
        assert_eq!(report.opened_generation, Some(1));
        assert!(report.recovered());
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].generation, 2);
        assert!(report.describe().contains("rejecting"), "{}", report.describe());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_rejection_also_falls_back() {
        let dir = scratch("parse");
        let s = store(&dir, 3);
        s.write(b"good").unwrap();
        s.write(b"BAD").unwrap();
        let (v, report) = s
            .open_latest_with(|t| {
                if t == "BAD" {
                    Err("schema mismatch".into())
                } else {
                    Ok(t.to_string())
                }
            })
            .unwrap();
        assert_eq!(v, "good");
        assert!(report.rejected[0].reason.contains("schema mismatch"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_corrupt_is_no_valid_generation_not_fresh_start() {
        let dir = scratch("allbad");
        let s = store(&dir, 3);
        s.write(b"a").unwrap();
        s.write(b"b").unwrap();
        for gen in [1u64, 2] {
            fs::write(s.generation_path(gen), b"garbage").unwrap();
        }
        match s.read_latest() {
            Err(StoreError::NoValidGeneration { rejected }) => assert_eq!(rejected.len(), 2),
            other => panic!("expected NoValidGeneration, got {other:?}"),
        }
        assert!(s.any_checkpoint_present());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_is_no_checkpoint() {
        let dir = scratch("empty");
        let s = store(&dir, 3);
        assert!(matches!(s.read_latest(), Err(StoreError::NoCheckpoint)));
        assert!(!s.any_checkpoint_present());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_bare_file_loads_with_deprecation_flag() {
        let dir = scratch("legacy");
        let s = store(&dir, 3);
        fs::write(dir.join("pop.ckpt"), b"<bce_checkpoint version=\"2\"/>").unwrap();
        let (bytes, report) = s.read_latest().unwrap();
        assert_eq!(bytes, b"<bce_checkpoint version=\"2\"/>");
        assert!(report.legacy);
        assert_eq!(report.opened_generation, None);
        assert!(report.describe().contains("deprecated"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn generations_win_over_legacy_file() {
        let dir = scratch("mixed");
        let s = store(&dir, 3);
        fs::write(dir.join("pop.ckpt"), b"legacy").unwrap();
        s.write(b"framed").unwrap();
        let (bytes, report) = s.read_latest().unwrap();
        assert_eq!(bytes, b"framed");
        assert!(!report.legacy);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_and_tmp_are_not_mistaken_for_generations() {
        let dir = scratch("names");
        let s = store(&dir, 3);
        s.write(b"x").unwrap();
        fs::write(dir.join("pop.ckpt.tmp"), b"junk").unwrap();
        fs::write(dir.join("pop.ckpt.17abc"), b"junk").unwrap();
        assert_eq!(s.generations_on_disk().unwrap(), vec![1]);
        let _ = fs::remove_dir_all(&dir);
    }
}

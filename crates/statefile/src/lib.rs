//! # bce-statefile — client state-file ingestion
//!
//! The paper's web interface lets volunteers paste their BOINC
//! `client_state.xml` into a form so developers can replay their exact
//! scenario (§4.3). This crate provides a from-scratch XML-subset parser
//! and the mapping between such documents and the domain model.

pub mod codec;
pub mod doc;
pub mod frame;
pub mod io;
pub mod json;
pub mod store;
pub mod xml;

pub use codec::{
    attr_f64_bits, attr_parse, envelope, fmt_f64_bits, fmt_u64_hex, open_envelope, parse_f64_bits,
    parse_u64_hex, req_attr, req_child, CodecError,
};
pub use doc::{ClientStateDoc, StateFileError};
pub use frame::{crc64, FrameError, FRAME_HEADER_LEN, FRAME_MAGIC, FRAME_VERSION};
pub use io::{FaultyIo, IoOp, RealIo, SharedIo, StateIo};
pub use json::{parse as parse_json, JsonError, JsonValue, MAX_JSON_DEPTH};
pub use store::{
    CheckpointStore, RecoveryReport, RejectedGeneration, StoreError, WriteReceipt,
    DEFAULT_KEEP_GENERATIONS,
};
pub use xml::{parse as parse_xml, XmlError, XmlNode, MAX_NESTING_DEPTH};

//! # bce-statefile — client state-file ingestion
//!
//! The paper's web interface lets volunteers paste their BOINC
//! `client_state.xml` into a form so developers can replay their exact
//! scenario (§4.3). This crate provides a from-scratch XML-subset parser
//! and the mapping between such documents and the domain model.

pub mod doc;
pub mod xml;

pub use doc::{ClientStateDoc, StateFileError};
pub use xml::{parse as parse_xml, XmlError, XmlNode};

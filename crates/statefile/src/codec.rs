//! Shared helpers for BCE's versioned XML state formats.
//!
//! Both the client-state document ([`crate::doc`]) and the emulator's
//! run-checkpoint format (`bce-core`) are XML documents built on the
//! subset parser in [`crate::xml`]. This module factors out what every
//! such format needs:
//!
//! * a **versioned envelope** — a root element carrying a `version`
//!   attribute, rejected cleanly when the document is a different format
//!   or written by a newer build, and
//! * **bit-exact `f64` round-tripping** — values are stored as the hex of
//!   their IEEE-754 bit pattern, because checkpoints feed a bit-for-bit
//!   determinism contract and decimal formatting is lossy for that.
//!
//! Every failure path returns a [`CodecError`]; malformed, truncated or
//! hostile input must never panic.

use crate::xml::{parse, XmlError, XmlNode};

/// Error from decoding a versioned state document.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The document is not well-formed XML (includes truncation).
    Xml(XmlError),
    /// The root element is a different format.
    WrongRoot { expected: String, found: String },
    /// The `version` attribute is missing or unparsable.
    BadVersion(String),
    /// Written by a newer build than this reader understands.
    UnsupportedVersion { found: u32, max: u32 },
    /// A required element, attribute or value is missing or malformed.
    Field(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Xml(e) => write!(f, "{e}"),
            CodecError::WrongRoot { expected, found } => {
                write!(f, "expected <{expected}> document, found <{found}>")
            }
            CodecError::BadVersion(m) => write!(f, "bad version attribute: {m}"),
            CodecError::UnsupportedVersion { found, max } => {
                write!(f, "document version {found} is newer than supported version {max}")
            }
            CodecError::Field(m) => write!(f, "{m}"),
        }
    }
}
impl std::error::Error for CodecError {}

impl From<XmlError> for CodecError {
    fn from(e: XmlError) -> Self {
        CodecError::Xml(e)
    }
}

/// Build an envelope root: `<name version="N">`.
pub fn envelope(name: &str, version: u32) -> XmlNode {
    let mut n = XmlNode::new(name);
    n.attrs.push(("version".into(), version.to_string()));
    n
}

/// Parse a document and check it is a `<name version="v">` envelope with
/// `1 <= v <= max_version`. Returns the version and the root element.
pub fn open_envelope(
    src: &str,
    name: &str,
    max_version: u32,
) -> Result<(u32, XmlNode), CodecError> {
    let root = parse(src)?;
    if root.name != name {
        return Err(CodecError::WrongRoot { expected: name.into(), found: root.name });
    }
    let raw = root
        .attr("version")
        .ok_or_else(|| CodecError::BadVersion("missing version attribute".into()))?;
    let v: u32 = raw.parse().map_err(|_| CodecError::BadVersion(format!("{raw:?}")))?;
    if v == 0 {
        return Err(CodecError::BadVersion("version 0".into()));
    }
    if v > max_version {
        return Err(CodecError::UnsupportedVersion { found: v, max: max_version });
    }
    Ok((v, root))
}

/// Format an `f64` as the hex of its IEEE-754 bit pattern. Round-trips
/// bit-exactly through [`parse_f64_bits`], including NaN payloads,
/// infinities and signed zero.
pub fn fmt_f64_bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Inverse of [`fmt_f64_bits`].
pub fn parse_f64_bits(s: &str) -> Result<f64, CodecError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CodecError::Field(format!("bad f64 bit pattern {s:?}")))
}

/// Format a `u64` as hex (used for RNG words).
pub fn fmt_u64_hex(x: u64) -> String {
    format!("{x:016x}")
}

/// Inverse of [`fmt_u64_hex`].
pub fn parse_u64_hex(s: &str) -> Result<u64, CodecError> {
    u64::from_str_radix(s, 16).map_err(|_| CodecError::Field(format!("bad u64 hex {s:?}")))
}

/// Required attribute, as a string.
pub fn req_attr<'a>(n: &'a XmlNode, name: &str) -> Result<&'a str, CodecError> {
    n.attr(name).ok_or_else(|| CodecError::Field(format!("<{}> missing attribute {name}", n.name)))
}

/// Required attribute parsed with `FromStr` (decimal integers, bools…).
pub fn attr_parse<T: std::str::FromStr>(n: &XmlNode, name: &str) -> Result<T, CodecError> {
    let raw = req_attr(n, name)?;
    raw.parse().map_err(|_| {
        CodecError::Field(format!("<{}> attribute {name}={raw:?} is malformed", n.name))
    })
}

/// Required attribute holding an [`fmt_f64_bits`] value.
pub fn attr_f64_bits(n: &XmlNode, name: &str) -> Result<f64, CodecError> {
    parse_f64_bits(req_attr(n, name)?)
}

/// Required child element.
pub fn req_child<'a>(n: &'a XmlNode, name: &str) -> Result<&'a XmlNode, CodecError> {
    n.child(name).ok_or_else(|| CodecError::Field(format!("<{}> missing child <{name}>", n.name)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn f64_bits_roundtrip_specials() {
        for x in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE, 1e308] {
            let back = parse_f64_bits(&fmt_f64_bits(x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        assert_eq!(parse_f64_bits(&fmt_f64_bits(nan)).unwrap().to_bits(), nan.to_bits());
    }

    #[test]
    fn envelope_roundtrip() {
        let mut root = envelope("bce_checkpoint", 3);
        root.push(XmlNode::with_text("payload", "x"));
        let (v, back) = open_envelope(&root.render(), "bce_checkpoint", 3).unwrap();
        assert_eq!(v, 3);
        assert_eq!(back.child_text("payload"), Some("x"));
    }

    #[test]
    fn envelope_rejections() {
        let doc = envelope("bce_checkpoint", 2).render();
        assert!(matches!(
            open_envelope(&doc, "client_state", 2),
            Err(CodecError::WrongRoot { .. })
        ));
        assert!(matches!(
            open_envelope(&doc, "bce_checkpoint", 1),
            Err(CodecError::UnsupportedVersion { found: 2, max: 1 })
        ));
        assert!(matches!(
            open_envelope("<bce_checkpoint/>", "bce_checkpoint", 1),
            Err(CodecError::BadVersion(_))
        ));
        assert!(matches!(
            open_envelope("<bce_checkpoint version=\"zero\"/>", "bce_checkpoint", 1),
            Err(CodecError::BadVersion(_))
        ));
        assert!(matches!(
            open_envelope("<bce_checkpoint version=\"0\"/>", "bce_checkpoint", 1),
            Err(CodecError::BadVersion(_))
        ));
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let doc = envelope("bce_checkpoint", 1).render();
        for cut in 0..doc.len() {
            // Any prefix must yield Err or (for the trivial empty-ish
            // prefixes) never a panic.
            let _ = open_envelope(&doc[..cut], "bce_checkpoint", 1);
        }
        assert!(open_envelope("", "bce_checkpoint", 1).is_err());
        assert!(open_envelope("<bce_checkpoint version=\"1\">", "bce_checkpoint", 1).is_err());
    }

    #[test]
    fn field_helpers_error_on_missing() {
        let n = XmlNode::new("x");
        assert!(req_attr(&n, "a").is_err());
        assert!(req_child(&n, "c").is_err());
        assert!(attr_parse::<u64>(&n, "a").is_err());
        assert!(attr_f64_bits(&n, "a").is_err());
    }

    proptest! {
        #[test]
        fn f64_bits_roundtrip_any(bits in proptest::prelude::any::<u64>()) {
            let x = f64::from_bits(bits);
            prop_assert_eq!(parse_f64_bits(&fmt_f64_bits(x)).unwrap().to_bits(), bits);
        }

        #[test]
        fn u64_hex_roundtrip(x in proptest::prelude::any::<u64>()) {
            prop_assert_eq!(parse_u64_hex(&fmt_u64_hex(x)).unwrap(), x);
        }
    }
}

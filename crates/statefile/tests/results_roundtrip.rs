//! `<result>` (in-flight job) handling in state files.

use bce_statefile::{ClientStateDoc, StateFileError};

const WITH_RESULTS: &str = r#"<client_state>
  <project>
    <project_name>p</project_name>
    <resource_share>100</resource_share>
    <app>
      <id>3</id>
      <name>a</name>
      <runtime_mean>1000</runtime_mean>
      <latency_bound>86400</latency_bound>
    </app>
    <result><app_id>3</app_id><received_ago>3600</received_ago><progress>250</progress></result>
    <result><app_id>3</app_id></result>
  </project>
</client_state>"#;

#[test]
fn parses_results() {
    let doc = ClientStateDoc::parse_str(WITH_RESULTS).unwrap();
    assert_eq!(doc.initial_queue.len(), 2);
    let r = &doc.initial_queue[0];
    assert_eq!(r.app.0, 3);
    assert_eq!(r.received_ago.secs(), 3600.0);
    assert_eq!(r.progress.secs(), 250.0);
    // Missing fields default to zero.
    assert_eq!(doc.initial_queue[1].received_ago.secs(), 0.0);
}

#[test]
fn results_roundtrip() {
    let doc = ClientStateDoc::parse_str(WITH_RESULTS).unwrap();
    let doc2 = ClientStateDoc::parse_str(&doc.render()).unwrap();
    assert_eq!(doc, doc2);
}

#[test]
fn app_supply_roundtrip() {
    let xml = r#"<client_state>
      <project>
        <project_name>p</project_name>
        <app>
          <name>a</name>
          <runtime_mean>1000</runtime_mean>
          <latency_bound>86400</latency_bound>
          <supply_work_mean>3600</supply_work_mean>
          <supply_dry_mean>7200</supply_dry_mean>
        </app>
      </project>
    </client_state>"#;
    let doc = ClientStateDoc::parse_str(xml).unwrap();
    let supply = doc.projects[0].apps[0].supply.expect("supply parsed");
    assert_eq!(supply.work_mean.secs(), 3600.0);
    assert_eq!(supply.dry_mean.secs(), 7200.0);
    let doc2 = ClientStateDoc::parse_str(&doc.render()).unwrap();
    assert_eq!(doc, doc2);
}

#[test]
fn unknown_app_rejected() {
    let bad = WITH_RESULTS.replace("<app_id>3</app_id>", "<app_id>7</app_id>");
    assert!(matches!(ClientStateDoc::parse_str(&bad), Err(StateFileError::Schema(_))));
}

#[test]
fn negative_fields_rejected() {
    let bad = WITH_RESULTS.replace("<progress>250</progress>", "<progress>-1</progress>");
    assert!(matches!(ClientStateDoc::parse_str(&bad), Err(StateFileError::Schema(_))));
}

//! Property tests for the state-file ingest path: arbitrary documents must
//! round-trip exactly, and the XML layer must survive hostile text.

use bce_statefile::{parse_xml, CheckpointStore, ClientStateDoc, StoreError, XmlNode};
use bce_types::{
    AppClass, DailyWindow, EstErrorModel, Hardware, Preferences, ProcType, ProjectSpec,
    ResourceUsage, SimDuration,
};
use proptest::prelude::*;

fn text_strategy() -> impl Strategy<Value = String> {
    // Includes XML-special characters to exercise escaping.
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('0'),
            Just(' '),
            Just('&'),
            Just('<'),
            Just('>'),
            Just('"'),
            Just('\''),
            Just('é'),
        ],
        0..24,
    )
    .prop_map(|cs| cs.into_iter().collect::<String>().trim().to_string())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128 })]

    /// Any text content survives escape → render → parse.
    #[test]
    fn xml_text_roundtrip(text in text_strategy()) {
        let node = XmlNode::with_text("t", text.clone());
        let rendered = node.render();
        let parsed = parse_xml(&rendered).unwrap();
        prop_assert_eq!(parsed.text, text);
    }

    /// Attribute values survive the same cycle.
    #[test]
    fn xml_attr_roundtrip(value in text_strategy()) {
        let mut node = XmlNode::new("t");
        node.attrs.push(("k".to_string(), value.clone()));
        let parsed = parse_xml(&node.render()).unwrap();
        prop_assert_eq!(parsed.attr("k"), Some(value.as_str()));
    }

    /// Arbitrary well-formed documents round-trip structurally.
    #[test]
    fn doc_roundtrip(
        ncpus in 1u32..16,
        fpops in 1e8f64..1e10,
        gpus in 0u32..3,
        nprojects in 1usize..5,
        runtime in 10.0f64..1e5,
        slack in 1.1f64..100.0,
        cv in 0.0f64..0.5,
        share in 1.0f64..1000.0,
        buf_days in 0.001f64..2.0,
        window in proptest::option::of((0u8..24, 0u8..24)),
        on_frac in 0.0f64..1.0,
        seed in any::<u64>(),
        gpu_app in any::<bool>(),
        no_checkpoint in any::<bool>(),
        est_err in 0usize..3,
    ) {
        let mut hw = Hardware::cpu_only(ncpus, fpops);
        if gpus > 0 {
            hw = hw.with_group(ProcType::NvidiaGpu, gpus, fpops * 12.0);
        }
        let mut prefs = Preferences {
            work_buf_min: SimDuration::from_days(buf_days),
            ..Default::default()
        };
        if let Some((s, e)) = window {
            if s != e {
                prefs.compute_window = Some(DailyWindow::new(s as f64, e as f64));
            }
        }
        let mut projects = Vec::new();
        for i in 0..nprojects {
            let mut app = AppClass::cpu(
                i as u32 * 2,
                SimDuration::from_secs(runtime),
                SimDuration::from_secs(runtime * slack),
            )
            .with_cv(cv);
            if no_checkpoint {
                app = app.with_checkpoint(None);
            }
            app = app.with_est_error(match est_err {
                0 => EstErrorModel::Exact,
                1 => EstErrorModel::Systematic { factor: 2.0 },
                _ => EstErrorModel::LogNormal { sigma: 0.25 },
            });
            let mut p = ProjectSpec::new(i as u32, format!("proj{i}"), share).with_app(app);
            if gpu_app && gpus > 0 {
                p = p.with_app(AppClass {
                    id: bce_types::AppId(i as u32 * 2 + 1),
                    name: format!("gpu{i}"),
                    usage: ResourceUsage::gpu(ProcType::NvidiaGpu, 1.0, 0.1),
                    runtime_mean: SimDuration::from_secs(runtime / 3.0),
                    runtime_cv: cv,
                    est_error: EstErrorModel::Exact,
                    latency_bound: SimDuration::from_secs(runtime * slack),
                    checkpoint_period: Some(SimDuration::from_secs(120.0)),
                    working_set_bytes: 2e8,
                    input_bytes: 1e6,
                    output_bytes: 2e5,
                    weight: 1.5,
                    supply: None,
                });
            }
            projects.push(p);
        }
        let doc = ClientStateDoc {
            hardware: hw,
            prefs,
            projects,
            initial_queue: Vec::new(),
            on_frac,
            active_frac: on_frac / 2.0,
            cycle_mean: SimDuration::from_secs(3600.0),
            seed,
        };
        let xml = doc.render();
        let back = ClientStateDoc::parse_str(&xml).unwrap();
        prop_assert_eq!(back, doc);
    }

    /// The parser never panics on arbitrary input — it returns Ok or Err.
    #[test]
    fn xml_parser_total(input in "\\PC{0,200}") {
        let _ = parse_xml(&input);
        let _ = ClientStateDoc::parse_str(&input);
    }

    /// Nesting bombs (balanced or not) are typed errors, never a stack
    /// overflow — an overflow would abort an ingesting daemon worker.
    #[test]
    fn deep_nesting_is_total(depth in 0usize..4096, closes in 0usize..4096) {
        let input = format!("{}{}", "<x>".repeat(depth), "</x>".repeat(closes));
        let _ = parse_xml(&input);
        let _ = ClientStateDoc::parse_str(&input);
    }
}

// ---------------------------------------------------------------------
// Checkpoint-store corruption properties: arbitrary damage to the newest
// generation must fall back to the previous one with an accurate
// RecoveryReport — never a panic, never a silent restart from scratch.

static STORE_DIR: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn scratch_store() -> (std::path::PathBuf, CheckpointStore) {
    let n = STORE_DIR.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("bce-prop-store-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = CheckpointStore::with_real_io(dir.join("state.ckpt"), 3);
    (dir, store)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96 })]

    /// Truncate, bit-flip, or zero-fill the newest generation at an
    /// arbitrary position: if the bytes actually changed, the store
    /// opens the previous generation and reports exactly one rejected
    /// generation; if the damage was a no-op, it opens the newest.
    /// Wrecking every generation afterwards must yield the typed
    /// `NoValidGeneration` error, not an `Ok` that forgets history.
    #[test]
    fn corrupted_newest_generation_falls_back(
        kind in 0usize..3,
        pos in 0usize..4096,
        span in 1usize..96,
        bit in 0u32..8,
    ) {
        let (dir, store) = scratch_store();
        for i in 1..=3u32 {
            store.write(format!("generation payload {i}").as_bytes()).unwrap();
        }
        let gens = store.generations_on_disk().unwrap();
        prop_assert_eq!(gens.len(), 3);
        let newest = *gens.last().unwrap();
        let prev = gens[gens.len() - 2];
        let path = store.generation_path(newest);
        let original = std::fs::read(&path).unwrap();

        let mut bytes = original.clone();
        let i = pos % bytes.len();
        match kind {
            0 => bytes.truncate(i), // i < len: strictly shorter
            1 => bytes[i] ^= 1 << bit,
            _ => {
                let end = (i + span).min(bytes.len());
                bytes[i..end].fill(0);
            }
        }
        let damaged = bytes != original;
        std::fs::write(&path, &bytes).unwrap();

        let (payload, report) = store.read_latest().unwrap();
        if damaged {
            prop_assert_eq!(report.opened_generation, Some(prev));
            prop_assert!(report.recovered());
            prop_assert_eq!(payload, b"generation payload 2".to_vec());
            prop_assert_eq!(report.rejected.len(), 1);
            prop_assert_eq!(report.rejected[0].generation, newest);
            prop_assert!(!report.rejected[0].reason.is_empty());
        } else {
            prop_assert_eq!(report.opened_generation, Some(newest));
            prop_assert!(!report.recovered());
            prop_assert!(report.rejected.is_empty());
        }

        // Wreck every generation: the store must refuse to guess.
        for &g in &gens {
            let keep = bytes.len().min(8);
            std::fs::write(store.generation_path(g), &bytes[..keep]).unwrap();
        }
        match store.read_latest() {
            Err(StoreError::NoValidGeneration { rejected }) => {
                prop_assert_eq!(rejected.len(), gens.len());
            }
            other => prop_assert!(false, "expected NoValidGeneration, got {:?}", other.map(|(_, r)| r)),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Figures of merit (§4.2).
//!
//! * **Idle fraction** — fraction of peak-FLOPS capacity idle while the
//!   host was available.
//! * **Wasted fraction** — capacity spent on jobs that missed their
//!   deadline, plus progress lost to checkpoint rollbacks.
//! * **Resource-share violation** — RMS over projects of the difference
//!   between a project's share and the fraction of processing it received.
//! * **Monotony** — the paper leaves this informal ("the extent to which
//!   the system ran jobs of a single project for long periods"); we define
//!   it as the mean over fixed windows of `1 − H/ln N`, where `H` is the
//!   Shannon entropy of the per-project distribution of peak-FLOPS-seconds
//!   inside the window and `N` the number of attached projects. Windows
//!   with no processing are skipped; a single-project host scores 1 by
//!   convention (and monotony is reported as 0 when `N == 1` would make
//!   `ln N = 0`).
//! * **RPCs per job** — scheduler RPCs issued divided by jobs completed.
//!
//! All but RPCs/job lie in `[0, 1]` with 0 good; `scaled()` maps RPCs/job
//! through `x/(1+x)` when a bounded combination is wanted.

use bce_obs::{CounterId, MetricsRegistry, MetricsSnapshot};
use bce_types::{JobId, ProjectId, SimDuration, SimTime};
use std::collections::BTreeMap;

/// The paper's five figures of merit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiguresOfMerit {
    pub idle_fraction: f64,
    pub wasted_fraction: f64,
    pub share_violation: f64,
    pub monotony: f64,
    pub rpcs_per_job: f64,
}

impl FiguresOfMerit {
    /// All five mapped into `[0, 1]` (0 good), RPCs/job via `x/(1+x)`.
    pub fn scaled(&self) -> [f64; 5] {
        [
            self.idle_fraction,
            self.wasted_fraction,
            self.share_violation,
            self.monotony,
            self.rpcs_per_job / (1.0 + self.rpcs_per_job),
        ]
    }

    /// Subjectively-weighted combination (§4.2: "the overall evaluation of
    /// a policy is a subjectively-weighted combination of the metrics").
    pub fn weighted(&self, weights: [f64; 5]) -> f64 {
        self.scaled().iter().zip(weights).map(|(m, w)| m * w).sum()
    }
}

/// Robustness figures of merit, populated only by fault-injected runs
/// (all-zero otherwise). Kept separate from [`FiguresOfMerit`] so the
/// paper's five metrics — and determinism fingerprints built on them —
/// are untouched by the fault subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultMetrics {
    /// Scheduler RPCs lost in transit (injected transient failures).
    pub transient_rpc_failures: u64,
    /// File-transfer attempts that failed mid-flight.
    pub transfer_failures: u64,
    /// Host crashes injected.
    pub crashes: u64,
    /// Jobs permanently failed (transfer retry budget exhausted).
    pub jobs_errored: u64,
    /// Fraction of available capacity destroyed by faults: crash rollbacks
    /// plus progress on errored jobs, over available FLOPS·s. A subset of
    /// the ordinary wasted fraction, attributing waste to injected faults.
    pub fault_wasted_fraction: f64,
    /// Mean wall-clock seconds from a crash until every task it rolled
    /// back had regained its pre-crash progress (or left the queue).
    pub mean_recovery_secs: f64,
    /// Number of crashes whose recovery completed within the run.
    pub recoveries: u64,
}

impl FaultMetrics {
    /// Did any fault fire during the run?
    pub fn any(&self) -> bool {
        self.transient_rpc_failures > 0
            || self.transfer_failures > 0
            || self.crashes > 0
            || self.jobs_errored > 0
    }
}

/// Runtime performance counters for one emulation run. Not figures of
/// merit — these describe the *emulator's* work (event throughput, RR-sim
/// cache behaviour) and feed the `bce bench` harness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerfStats {
    /// Events popped from the emulator's queue.
    pub events_processed: u64,
    /// Largest simultaneous task-queue size observed.
    pub peak_jobs: usize,
    /// Times a decision point consulted the RR simulation.
    pub rr_queries: u64,
    /// Times the RR simulation actually ran (cache misses).
    pub rr_runs: u64,
    /// RR queries served from the retained snapshot inside the
    /// frozen-progress window (partial refreshes; a subset of hits).
    pub rr_frozen: u64,
    /// Availability transitions absorbed into an earlier one by the
    /// coalescing window (each saved one event-loop pass).
    pub flaps_coalesced: u64,
    /// Availability events whose net run-state delta was zero, skipping
    /// the reschedule/fetch pass entirely.
    pub avail_resched_skipped: u64,
}

impl PerfStats {
    pub fn rr_hits(&self) -> u64 {
        self.rr_queries - self.rr_runs
    }
    /// Fraction of RR-simulation queries served from the cache.
    pub fn rr_hit_rate(&self) -> f64 {
        if self.rr_queries == 0 {
            0.0
        } else {
            self.rr_hits() as f64 / self.rr_queries as f64
        }
    }
}

/// Per-project outcome summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectReport {
    pub id: ProjectId,
    pub name: String,
    pub share_frac: f64,
    /// Fraction of all delivered processing this project received.
    pub used_frac: f64,
    pub flops_used: f64,
    pub jobs_completed: u64,
    pub jobs_missed_deadline: u64,
    pub rpcs: u64,
}

/// The complete mutable state of a [`MetricsAccum`], captured by a run
/// checkpoint. Counter values are stored positionally in registration
/// order: `rpc.issued`, `rpc.transient_failures`, `jobs.completed`,
/// `jobs.missed_deadline`, `jobs.errored`, `xfer.failures`,
/// `fault.crashes`, `fault.recoveries`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsAccumSnapshot {
    pub capacity_secs: f64,
    pub available_secs: f64,
    pub used: Vec<(ProjectId, f64)>,
    pub wasted_flops: f64,
    pub window_used: Vec<(ProjectId, f64)>,
    pub window_end: SimTime,
    pub monotony_sum: f64,
    pub monotony_windows: u64,
    pub missed_ids: Vec<JobId>,
    pub fault_wasted_flops: f64,
    pub recovery_secs_sum: f64,
    pub counters: [u64; 8],
}

/// Accumulates metrics during an emulation run.
///
/// Since the observability redesign every discrete count lives in a
/// [`bce_obs::MetricsRegistry`] slot (scoped names like `rpc.issued`,
/// `jobs.completed`) addressed through pre-registered [`CounterId`]s, so
/// recording stays an indexed add while the CLI, bench harness and fleet
/// study all export the same `scope.name` schema via
/// [`MetricsAccum::export_snapshot`]. The continuous integrals (capacity,
/// usage, monotony windows) remain plain `f64` state: their accumulation
/// order is part of the bit-for-bit determinism contract.
#[derive(Debug, Clone)]
pub struct MetricsAccum {
    total_capacity_flops: f64, // peak FLOPS of the host
    monotony_window: SimDuration,
    // integrals
    capacity_secs: f64,             // capacity × elapsed (FLOPS·s)
    available_secs: f64,            // capacity × available time
    used: BTreeMap<ProjectId, f64>, // FLOPS·s delivered per project
    wasted_flops: f64,
    // monotony state
    window_used: BTreeMap<ProjectId, f64>,
    window_end: SimTime,
    monotony_sum: f64,
    monotony_windows: u64,
    nprojects: usize,
    // counters (registry slots)
    registry: MetricsRegistry,
    c_rpcs: CounterId,
    c_jobs_completed: CounterId,
    c_jobs_missed: CounterId,
    missed_ids: Vec<JobId>,
    // fault accounting
    fault_wasted_flops: f64,
    c_transient_rpc_failures: CounterId,
    c_transfer_failures: CounterId,
    c_crashes: CounterId,
    c_jobs_errored: CounterId,
    recovery_secs_sum: f64,
    c_recoveries: CounterId,
}

impl MetricsAccum {
    pub fn new(
        total_capacity_flops: f64,
        nprojects: usize,
        start: SimTime,
        monotony_window: SimDuration,
    ) -> Self {
        let mut registry = MetricsRegistry::new();
        let c_rpcs = registry.counter("rpc", "issued");
        let c_transient_rpc_failures = registry.counter("rpc", "transient_failures");
        let c_jobs_completed = registry.counter("jobs", "completed");
        let c_jobs_missed = registry.counter("jobs", "missed_deadline");
        let c_jobs_errored = registry.counter("jobs", "errored");
        let c_transfer_failures = registry.counter("xfer", "failures");
        let c_crashes = registry.counter("fault", "crashes");
        let c_recoveries = registry.counter("fault", "recoveries");
        MetricsAccum {
            total_capacity_flops,
            monotony_window,
            capacity_secs: 0.0,
            available_secs: 0.0,
            used: BTreeMap::new(),
            wasted_flops: 0.0,
            window_used: BTreeMap::new(),
            window_end: start + monotony_window,
            monotony_sum: 0.0,
            monotony_windows: 0,
            nprojects,
            registry,
            c_rpcs,
            c_jobs_completed,
            c_jobs_missed,
            missed_ids: Vec::new(),
            fault_wasted_flops: 0.0,
            c_transient_rpc_failures,
            c_transfer_failures,
            c_crashes,
            c_jobs_errored,
            recovery_secs_sum: 0.0,
            c_recoveries,
        }
    }

    /// Account an interval of constant allocation. `per_project` lists the
    /// peak FLOPS each project is engaging; `available` is whether the
    /// host could compute at all.
    pub fn advance(
        &mut self,
        from: SimTime,
        to: SimTime,
        per_project: &[(ProjectId, f64)],
        available: bool,
    ) {
        let dt = (to - from).secs();
        if dt <= 0.0 {
            return;
        }
        self.capacity_secs += self.total_capacity_flops * dt;
        if available {
            self.available_secs += self.total_capacity_flops * dt;
        }
        for &(p, f) in per_project {
            *self.used.entry(p).or_insert(0.0) += f * dt;
            *self.window_used.entry(p).or_insert(0.0) += f * dt;
        }
        // Close monotony windows crossed by this interval. (Allocation is
        // constant inside the interval, so splitting exactly at window
        // boundaries is unnecessary: usage assigns to the window where it
        // occurred in proportion; we approximate by closing at `to`.)
        while to >= self.window_end {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        let total: f64 = self.window_used.values().sum();
        if total > 0.0 && self.nprojects > 1 {
            let ln_n = (self.nprojects as f64).ln();
            let h: f64 = self
                .window_used
                .values()
                .filter(|&&v| v > 0.0)
                .map(|&v| {
                    let p = v / total;
                    -p * p.ln()
                })
                .sum();
            self.monotony_sum += 1.0 - (h / ln_n).min(1.0);
            self.monotony_windows += 1;
        }
        self.window_used.clear();
        self.window_end += self.monotony_window;
    }

    pub fn record_rpc(&mut self) {
        self.registry.inc(self.c_rpcs);
    }

    /// Record a completed-and-reported job.
    pub fn record_job_done(&mut self, id: JobId, met_deadline: bool, flops_spent: f64) {
        self.registry.inc(self.c_jobs_completed);
        if !met_deadline {
            self.registry.inc(self.c_jobs_missed);
            self.wasted_flops += flops_spent;
            self.missed_ids.push(id);
        }
    }

    /// Record execution seconds lost to a checkpoint rollback.
    pub fn record_rollback_waste(&mut self, flops: f64) {
        self.wasted_flops += flops;
    }

    /// Record a scheduler RPC lost in transit.
    pub fn record_transient_rpc_failure(&mut self) {
        self.registry.inc(self.c_transient_rpc_failures);
    }

    /// Record a mid-flight transfer failure.
    pub fn record_transfer_failure(&mut self) {
        self.registry.inc(self.c_transfer_failures);
    }

    /// Record a host crash and the FLOPS of progress it destroyed. The
    /// lost FLOPS are fault-attributed only: the generic wasted fraction
    /// picks the same rollback up through [`record_rollback_waste`] when
    /// the task eventually retires.
    pub fn record_crash(&mut self, lost_flops: f64) {
        self.registry.inc(self.c_crashes);
        self.fault_wasted_flops += lost_flops;
    }

    /// Record a permanently-failed job and the FLOPS already sunk into it
    /// (counted both as generic waste and fault-attributed waste).
    pub fn record_job_errored(&mut self, flops_spent: f64) {
        self.registry.inc(self.c_jobs_errored);
        self.wasted_flops += flops_spent;
        self.fault_wasted_flops += flops_spent;
    }

    /// Record a completed crash recovery (wall-clock seconds from the
    /// crash until pre-crash progress was regained).
    pub fn record_recovery(&mut self, secs: f64) {
        self.recovery_secs_sum += secs;
        self.registry.inc(self.c_recoveries);
    }

    fn recoveries(&self) -> u64 {
        self.registry.counter_value(self.c_recoveries)
    }

    /// Snapshot the robustness figures of merit.
    pub fn fault_metrics(&self) -> FaultMetrics {
        FaultMetrics {
            transient_rpc_failures: self.registry.counter_value(self.c_transient_rpc_failures),
            transfer_failures: self.registry.counter_value(self.c_transfer_failures),
            crashes: self.registry.counter_value(self.c_crashes),
            jobs_errored: self.registry.counter_value(self.c_jobs_errored),
            fault_wasted_fraction: if self.available_secs > 0.0 {
                (self.fault_wasted_flops / self.available_secs).clamp(0.0, 1.0)
            } else {
                0.0
            },
            mean_recovery_secs: if self.recoveries() > 0 {
                self.recovery_secs_sum / self.recoveries() as f64
            } else {
                0.0
            },
            recoveries: self.recoveries(),
        }
    }

    pub fn jobs_completed(&self) -> u64 {
        self.registry.counter_value(self.c_jobs_completed)
    }

    pub fn jobs_missed(&self) -> u64 {
        self.registry.counter_value(self.c_jobs_missed)
    }

    pub fn missed_ids(&self) -> &[JobId] {
        &self.missed_ids
    }

    pub fn flops_used_by(&self, p: ProjectId) -> f64 {
        self.used.get(&p).copied().unwrap_or(0.0)
    }

    pub fn total_flops_used(&self) -> f64 {
        self.used.values().sum()
    }

    pub fn available_fraction(&self) -> f64 {
        if self.capacity_secs > 0.0 {
            self.available_secs / self.capacity_secs
        } else {
            0.0
        }
    }

    /// Finalize into the five figures of merit. `shares` supplies each
    /// project's configured share fraction.
    pub fn finalize(&mut self, shares: &[(ProjectId, f64)]) -> FiguresOfMerit {
        // Close the trailing partial window.
        let total_in_window: f64 = self.window_used.values().sum();
        if total_in_window > 0.0 {
            self.close_window();
        }

        let used_total = self.total_flops_used();
        let idle_fraction = if self.available_secs > 0.0 {
            ((self.available_secs - used_total) / self.available_secs).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let wasted_fraction = if self.available_secs > 0.0 {
            (self.wasted_flops / self.available_secs).clamp(0.0, 1.0)
        } else {
            0.0
        };

        let share_sum: f64 = shares.iter().map(|(_, s)| s).sum();
        let mut sq = 0.0;
        for &(p, s) in shares {
            let share_frac = if share_sum > 0.0 { s / share_sum } else { 0.0 };
            let used_frac = if used_total > 0.0 { self.flops_used_by(p) / used_total } else { 0.0 };
            sq += (share_frac - used_frac).powi(2);
        }
        let share_violation =
            if shares.is_empty() { 0.0 } else { (sq / shares.len() as f64).sqrt() };

        let monotony = if self.monotony_windows > 0 {
            self.monotony_sum / self.monotony_windows as f64
        } else {
            0.0
        };
        let rpcs = self.registry.counter_value(self.c_rpcs);
        let rpcs_per_job = if self.jobs_completed() > 0 {
            rpcs as f64 / self.jobs_completed() as f64
        } else {
            rpcs as f64
        };

        FiguresOfMerit { idle_fraction, wasted_fraction, share_violation, monotony, rpcs_per_job }
    }

    /// Capture every mutable accumulator field for a checkpoint. The
    /// construction-time constants (capacity, window length, project
    /// count) are not captured: a restore target is always built through
    /// the same scenario and therefore already agrees on them.
    pub fn snapshot(&self) -> MetricsAccumSnapshot {
        MetricsAccumSnapshot {
            capacity_secs: self.capacity_secs,
            available_secs: self.available_secs,
            used: self.used.iter().map(|(&p, &v)| (p, v)).collect(),
            wasted_flops: self.wasted_flops,
            window_used: self.window_used.iter().map(|(&p, &v)| (p, v)).collect(),
            window_end: self.window_end,
            monotony_sum: self.monotony_sum,
            monotony_windows: self.monotony_windows,
            missed_ids: self.missed_ids.clone(),
            fault_wasted_flops: self.fault_wasted_flops,
            recovery_secs_sum: self.recovery_secs_sum,
            counters: [
                self.registry.counter_value(self.c_rpcs),
                self.registry.counter_value(self.c_transient_rpc_failures),
                self.registry.counter_value(self.c_jobs_completed),
                self.registry.counter_value(self.c_jobs_missed),
                self.registry.counter_value(self.c_jobs_errored),
                self.registry.counter_value(self.c_transfer_failures),
                self.registry.counter_value(self.c_crashes),
                self.registry.counter_value(self.c_recoveries),
            ],
        }
    }

    /// Overwrite the mutable state from a snapshot. Must be called on a
    /// freshly-constructed accumulator (all counters zero) so the counter
    /// replay lands on the captured values exactly.
    pub fn restore_snapshot(&mut self, snap: &MetricsAccumSnapshot) {
        self.capacity_secs = snap.capacity_secs;
        self.available_secs = snap.available_secs;
        self.used = snap.used.iter().copied().collect();
        self.wasted_flops = snap.wasted_flops;
        self.window_used = snap.window_used.iter().copied().collect();
        self.window_end = snap.window_end;
        self.monotony_sum = snap.monotony_sum;
        self.monotony_windows = snap.monotony_windows;
        self.missed_ids = snap.missed_ids.clone();
        self.fault_wasted_flops = snap.fault_wasted_flops;
        self.recovery_secs_sum = snap.recovery_secs_sum;
        let ids = [
            self.c_rpcs,
            self.c_transient_rpc_failures,
            self.c_jobs_completed,
            self.c_jobs_missed,
            self.c_jobs_errored,
            self.c_transfer_failures,
            self.c_crashes,
            self.c_recoveries,
        ];
        for (id, &v) in ids.into_iter().zip(&snap.counters) {
            self.registry.add(id, v);
        }
    }

    /// Freeze the run's instruments — the registry counters plus derived
    /// gauges for the figures of merit, fault fractions and emulator perf
    /// counters — into the one deterministic `scope.name` schema every
    /// consumer (CLI, bench harness, fleet study) reads.
    pub fn export_snapshot(
        &mut self,
        merit: &FiguresOfMerit,
        faults: &FaultMetrics,
        perf: &PerfStats,
    ) -> MetricsSnapshot {
        let g = self.registry.gauge("merit", "idle_fraction");
        self.registry.set(g, merit.idle_fraction);
        let g = self.registry.gauge("merit", "wasted_fraction");
        self.registry.set(g, merit.wasted_fraction);
        let g = self.registry.gauge("merit", "share_violation");
        self.registry.set(g, merit.share_violation);
        let g = self.registry.gauge("merit", "monotony");
        self.registry.set(g, merit.monotony);
        let g = self.registry.gauge("merit", "rpcs_per_job");
        self.registry.set(g, merit.rpcs_per_job);
        let g = self.registry.gauge("host", "available_fraction");
        self.registry.set(g, self.available_fraction());
        let g = self.registry.gauge("fault", "wasted_fraction");
        self.registry.set(g, faults.fault_wasted_fraction);
        let g = self.registry.gauge("fault", "mean_recovery_secs");
        self.registry.set(g, faults.mean_recovery_secs);
        let c = self.registry.counter("perf", "events_processed");
        self.registry.add(c, perf.events_processed);
        let c = self.registry.counter("perf", "peak_jobs");
        self.registry.add(c, perf.peak_jobs as u64);
        let c = self.registry.counter("perf", "rr_queries");
        self.registry.add(c, perf.rr_queries);
        let c = self.registry.counter("perf", "rr_runs");
        self.registry.add(c, perf.rr_runs);
        let c = self.registry.counter("perf", "rr_frozen");
        self.registry.add(c, perf.rr_frozen);
        let c = self.registry.counter("perf", "flaps_coalesced");
        self.registry.add(c, perf.flaps_coalesced);
        let c = self.registry.counter("perf", "avail_resched_skipped");
        self.registry.add(c, perf.avail_resched_skipped);
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn idle_fraction_half() {
        let mut m = MetricsAccum::new(10.0, 1, t(0.0), SimDuration::from_secs(100.0));
        // 100 s at 5 of 10 FLOPS used.
        m.advance(t(0.0), t(100.0), &[(ProjectId(0), 5.0)], true);
        let f = m.finalize(&[(ProjectId(0), 1.0)]);
        assert!((f.idle_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unavailable_time_not_counted_as_available_idle() {
        let mut m = MetricsAccum::new(10.0, 1, t(0.0), SimDuration::from_secs(1000.0));
        m.advance(t(0.0), t(50.0), &[(ProjectId(0), 10.0)], true);
        m.advance(t(50.0), t(100.0), &[], false);
        let av = m.available_fraction();
        assert!((av - 0.5).abs() < 1e-12);
        let f = m.finalize(&[(ProjectId(0), 1.0)]);
        assert!((f.idle_fraction - 0.0).abs() < 1e-12);
    }

    #[test]
    fn share_violation_rms() {
        let mut m = MetricsAccum::new(10.0, 2, t(0.0), SimDuration::from_secs(1000.0));
        // P0 gets everything; shares equal: violation = RMS(0.5, -0.5) = 0.5.
        m.advance(t(0.0), t(100.0), &[(ProjectId(0), 10.0)], true);
        let f = m.finalize(&[(ProjectId(0), 1.0), (ProjectId(1), 1.0)]);
        assert!((f.share_violation - 0.5).abs() < 1e-12);
    }

    #[test]
    fn share_violation_zero_when_fair() {
        let mut m = MetricsAccum::new(10.0, 2, t(0.0), SimDuration::from_secs(1000.0));
        m.advance(t(0.0), t(100.0), &[(ProjectId(0), 7.5), (ProjectId(1), 2.5)], true);
        let f = m.finalize(&[(ProjectId(0), 3.0), (ProjectId(1), 1.0)]);
        assert!(f.share_violation < 1e-12);
    }

    #[test]
    fn monotony_extremes() {
        // Alternating exclusive windows: each window single-project =>
        // monotony 1.
        let mut m = MetricsAccum::new(10.0, 2, t(0.0), SimDuration::from_secs(10.0));
        for i in 0..10 {
            let p = ProjectId(i % 2);
            m.advance(t(i as f64 * 10.0), t((i + 1) as f64 * 10.0), &[(p, 10.0)], true);
        }
        let f = m.finalize(&[(ProjectId(0), 1.0), (ProjectId(1), 1.0)]);
        assert!((f.monotony - 1.0).abs() < 1e-9);

        // Evenly mixed within every window => monotony 0.
        let mut m = MetricsAccum::new(10.0, 2, t(0.0), SimDuration::from_secs(10.0));
        m.advance(t(0.0), t(100.0), &[(ProjectId(0), 5.0), (ProjectId(1), 5.0)], true);
        let f = m.finalize(&[(ProjectId(0), 1.0), (ProjectId(1), 1.0)]);
        assert!(f.monotony < 1e-9);
    }

    #[test]
    fn monotony_single_project_is_zero_by_convention() {
        let mut m = MetricsAccum::new(10.0, 1, t(0.0), SimDuration::from_secs(10.0));
        m.advance(t(0.0), t(100.0), &[(ProjectId(0), 10.0)], true);
        let f = m.finalize(&[(ProjectId(0), 1.0)]);
        assert_eq!(f.monotony, 0.0);
    }

    #[test]
    fn wasted_and_rpcs() {
        let mut m = MetricsAccum::new(10.0, 1, t(0.0), SimDuration::from_secs(1000.0));
        m.advance(t(0.0), t(100.0), &[(ProjectId(0), 10.0)], true);
        m.record_rpc();
        m.record_rpc();
        m.record_job_done(JobId(1), true, 300.0);
        m.record_job_done(JobId(2), false, 200.0);
        m.record_rollback_waste(100.0);
        let f = m.finalize(&[(ProjectId(0), 1.0)]);
        assert_eq!(m.jobs_completed(), 2);
        assert_eq!(m.jobs_missed(), 1);
        assert_eq!(m.missed_ids(), &[JobId(2)]);
        // wasted = (200 + 100) / (10 * 100)
        assert!((f.wasted_fraction - 0.3).abs() < 1e-12);
        assert!((f.rpcs_per_job - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fault_metrics_accumulate_separately() {
        let mut m = MetricsAccum::new(10.0, 1, t(0.0), SimDuration::from_secs(1000.0));
        m.advance(t(0.0), t(100.0), &[(ProjectId(0), 10.0)], true);
        assert!(!m.fault_metrics().any());
        m.record_transient_rpc_failure();
        m.record_transfer_failure();
        m.record_crash(100.0); // fault-attributed only
        m.record_job_errored(200.0); // both generic and fault waste
        m.record_recovery(30.0);
        m.record_recovery(50.0);
        let fm = m.fault_metrics();
        assert!(fm.any());
        assert_eq!(fm.transient_rpc_failures, 1);
        assert_eq!(fm.transfer_failures, 1);
        assert_eq!(fm.crashes, 1);
        assert_eq!(fm.jobs_errored, 1);
        // fault waste = (100 + 200) / (10 × 100)
        assert!((fm.fault_wasted_fraction - 0.3).abs() < 1e-12);
        assert!((fm.mean_recovery_secs - 40.0).abs() < 1e-12);
        assert_eq!(fm.recoveries, 2);
        // Generic wasted fraction only sees the errored job's 200.
        let f = m.finalize(&[(ProjectId(0), 1.0)]);
        assert!((f.wasted_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn scaled_and_weighted() {
        let f = FiguresOfMerit {
            idle_fraction: 0.1,
            wasted_fraction: 0.2,
            share_violation: 0.3,
            monotony: 0.4,
            rpcs_per_job: 1.0,
        };
        let s = f.scaled();
        assert_eq!(s[4], 0.5);
        let w = f.weighted([1.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((w - 0.1).abs() < 1e-12);
    }
}

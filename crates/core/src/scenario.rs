//! Scenario descriptions — the emulator's input (§4.1).
//!
//! A scenario is one point in the space the BOINC client population
//! inhabits: host hardware, availability pattern, preferences, attached
//! projects with their shares and job characteristics. "Each computer
//! constitutes a scenario in which the scheduling policies operate."

use bce_avail::{AvailSpec, AvailTrace};
use bce_client::NetworkModel;
use bce_types::{Hardware, ProjectSpec};
use bce_types::{InitialJob, ModelError, Preferences, ProcType};

/// A complete scenario description.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: String,
    /// Root seed for every stochastic element of the run.
    pub seed: u64,
    pub hardware: Hardware,
    pub prefs: Preferences,
    pub projects: Vec<ProjectSpec>,
    pub avail: AvailSpec,
    /// Optional recorded host-power trace overriding `avail.host`.
    pub host_trace: Option<AvailTrace>,
    /// Optional network link model (None = instant transfers).
    pub network: Option<NetworkModel>,
    /// Jobs already in the client's queue when the emulation starts
    /// (imported in-flight results from a state file).
    pub initial_queue: Vec<InitialJob>,
}

impl Scenario {
    pub fn new(name: impl Into<String>, hardware: Hardware) -> Self {
        Scenario {
            name: name.into(),
            seed: 0,
            hardware,
            prefs: Preferences::default(),
            projects: Vec::new(),
            avail: AvailSpec::always_on(),
            host_trace: None,
            network: None,
            initial_queue: Vec::new(),
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_prefs(mut self, prefs: Preferences) -> Self {
        self.prefs = prefs;
        self
    }

    pub fn with_project(mut self, p: ProjectSpec) -> Self {
        self.projects.push(p);
        self
    }

    pub fn with_avail(mut self, avail: AvailSpec) -> Self {
        self.avail = avail;
        self
    }

    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = Some(network);
        self
    }

    pub fn with_initial_job(mut self, job: InitialJob) -> Self {
        self.initial_queue.push(job);
        self
    }

    /// Sanity-check the scenario before emulation.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.projects.is_empty() {
            return Err(ModelError::Empty("projects"));
        }
        if self.hardware.total_peak_flops() <= 0.0 {
            return Err(ModelError::OutOfRange {
                what: "total_peak_flops",
                value: self.hardware.total_peak_flops(),
                expected: "> 0",
            });
        }
        let mut seen = std::collections::HashSet::new();
        for p in &self.projects {
            if !seen.insert(p.id) {
                return Err(ModelError::DuplicateId(p.id.to_string()));
            }
            if p.resource_share < 0.0 {
                return Err(ModelError::OutOfRange {
                    what: "resource_share",
                    value: p.resource_share,
                    expected: ">= 0",
                });
            }
            if p.apps.is_empty() {
                return Err(ModelError::Empty("project apps"));
            }
            for app in &p.apps {
                let t = app.usage.main_proc_type();
                if self.hardware.ninstances(t) == 0 && t != ProcType::Cpu {
                    return Err(ModelError::MissingProcType {
                        project: p.name.clone(),
                        proc_type: t.name(),
                    });
                }
                if !app.runtime_mean.is_positive() {
                    return Err(ModelError::OutOfRange {
                        what: "runtime_mean",
                        value: app.runtime_mean.secs(),
                        expected: "> 0",
                    });
                }
            }
        }
        for ij in &self.initial_queue {
            let Some(project) = self.projects.iter().find(|p| p.id == ij.project) else {
                return Err(ModelError::DuplicateId(format!(
                    "initial job references unknown project {}",
                    ij.project
                )));
            };
            if !project.apps.iter().any(|a| a.id == ij.app) {
                return Err(ModelError::DuplicateId(format!(
                    "initial job references unknown app {} of {}",
                    ij.app, ij.project
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::{AppClass, SimDuration};

    fn base() -> Scenario {
        Scenario::new("t", Hardware::cpu_only(1, 1e9)).with_project(
            ProjectSpec::new(0, "p", 100.0).with_app(AppClass::cpu(
                0,
                SimDuration::from_secs(100.0),
                SimDuration::from_secs(1000.0),
            )),
        )
    }

    #[test]
    fn valid_scenario_passes() {
        assert!(base().validate().is_ok());
    }

    #[test]
    fn empty_projects_rejected() {
        let s = Scenario::new("t", Hardware::cpu_only(1, 1e9));
        assert_eq!(s.validate(), Err(ModelError::Empty("projects")));
    }

    #[test]
    fn gpu_app_without_gpu_rejected() {
        let s = Scenario::new("t", Hardware::cpu_only(1, 1e9)).with_project(
            ProjectSpec::new(0, "p", 100.0).with_app(AppClass::gpu(
                0,
                ProcType::NvidiaGpu,
                SimDuration::from_secs(100.0),
                SimDuration::from_secs(1000.0),
            )),
        );
        assert!(matches!(s.validate(), Err(ModelError::MissingProcType { .. })));
    }

    #[test]
    fn duplicate_project_ids_rejected() {
        let mut s = base();
        s.projects.push(s.projects[0].clone());
        assert!(matches!(s.validate(), Err(ModelError::DuplicateId(_))));
    }

    #[test]
    fn negative_share_rejected() {
        let mut s = base();
        s.projects[0].resource_share = -1.0;
        assert!(matches!(s.validate(), Err(ModelError::OutOfRange { .. })));
    }
}

//! Scenario descriptions — the emulator's input (§4.1).
//!
//! A scenario is one point in the space the BOINC client population
//! inhabits: host hardware, availability pattern, preferences, attached
//! projects with their shares and job characteristics. "Each computer
//! constitutes a scenario in which the scheduling policies operate."

use bce_avail::{AvailSpec, AvailTrace};
use bce_client::NetworkModel;
use bce_types::{Hardware, ProjectSpec};
use bce_types::{InitialJob, ModelError, Preferences, ProcType, ScenarioErrors};

/// A complete scenario description.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: String,
    /// Root seed for every stochastic element of the run.
    pub seed: u64,
    pub hardware: Hardware,
    pub prefs: Preferences,
    pub projects: Vec<ProjectSpec>,
    pub avail: AvailSpec,
    /// Optional recorded host-power trace overriding `avail.host`.
    pub host_trace: Option<AvailTrace>,
    /// Optional network link model (None = instant transfers).
    pub network: Option<NetworkModel>,
    /// Jobs already in the client's queue when the emulation starts
    /// (imported in-flight results from a state file).
    pub initial_queue: Vec<InitialJob>,
}

impl Scenario {
    pub fn new(name: impl Into<String>, hardware: Hardware) -> Self {
        Scenario {
            name: name.into(),
            seed: 0,
            hardware,
            prefs: Preferences::default(),
            projects: Vec::new(),
            avail: AvailSpec::always_on(),
            host_trace: None,
            network: None,
            initial_queue: Vec::new(),
        }
    }

    #[deprecated(note = "use ScenarioBuilder::seed (or Scenario::from_spec)")]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    #[deprecated(note = "use ScenarioBuilder::prefs (or Scenario::from_spec)")]
    pub fn with_prefs(mut self, prefs: Preferences) -> Self {
        self.prefs = prefs;
        self
    }

    #[deprecated(note = "use ScenarioBuilder::project (or Scenario::from_spec)")]
    pub fn with_project(mut self, p: ProjectSpec) -> Self {
        self.projects.push(p);
        self
    }

    #[deprecated(note = "use ScenarioBuilder::avail (or Scenario::from_spec)")]
    pub fn with_avail(mut self, avail: AvailSpec) -> Self {
        self.avail = avail;
        self
    }

    #[deprecated(note = "use ScenarioBuilder::network (or Scenario::from_spec)")]
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = Some(network);
        self
    }

    #[deprecated(note = "use ScenarioBuilder::initial_job (or Scenario::from_spec)")]
    pub fn with_initial_job(mut self, job: InitialJob) -> Self {
        self.initial_queue.push(job);
        self
    }

    /// Sanity-check the scenario before emulation, reporting *every*
    /// problem found (a typed [`ScenarioErrors`] list), not just the
    /// first. The emulator assumes a validated scenario; feeding it an
    /// invalid one may panic, so [`crate::ScenarioBuilder::build`] and
    /// the `bce validate` subcommand both route through here.
    pub fn validate(&self) -> Result<(), ScenarioErrors> {
        // `true` when `x` is a usable positive finite quantity; NaN and
        // infinities fail (NaN fails every comparison).
        fn positive_finite(x: f64) -> bool {
            x > 0.0 && x.is_finite()
        }

        let mut errors: Vec<ModelError> = Vec::new();
        if self.projects.is_empty() {
            errors.push(ModelError::Empty("projects"));
        }
        if !positive_finite(self.hardware.total_peak_flops()) {
            errors.push(ModelError::OutOfRange {
                what: "total_peak_flops",
                value: self.hardware.total_peak_flops(),
                expected: "> 0 and finite",
            });
        }
        let mut seen = std::collections::HashSet::new();
        for p in &self.projects {
            if !seen.insert(p.id) {
                errors.push(ModelError::DuplicateId(p.id.to_string()));
            }
            if !positive_finite(p.resource_share) {
                errors.push(ModelError::OutOfRange {
                    what: "resource_share",
                    value: p.resource_share,
                    expected: "> 0 and finite",
                });
            }
            if p.apps.is_empty() {
                errors.push(ModelError::Empty("project apps"));
            }
            for app in &p.apps {
                let t = app.usage.main_proc_type();
                if self.hardware.ninstances(t) == 0 && t != ProcType::Cpu {
                    errors.push(ModelError::MissingProcType {
                        project: p.name.clone(),
                        proc_type: t.name(),
                    });
                }
                if !positive_finite(app.runtime_mean.secs()) {
                    errors.push(ModelError::OutOfRange {
                        what: "runtime_mean",
                        value: app.runtime_mean.secs(),
                        expected: "> 0 and finite",
                    });
                }
                if !positive_finite(app.latency_bound.secs()) {
                    errors.push(ModelError::OutOfRange {
                        what: "latency_bound",
                        value: app.latency_bound.secs(),
                        expected: "> 0 and finite",
                    });
                }
                if let Some(cp) = app.checkpoint_period {
                    if !positive_finite(cp.secs()) {
                        errors.push(ModelError::OutOfRange {
                            what: "checkpoint_period",
                            value: cp.secs(),
                            expected: "> 0 and finite when present",
                        });
                    }
                }
            }
        }
        for ij in &self.initial_queue {
            match self.projects.iter().find(|p| p.id == ij.project) {
                None => errors.push(ModelError::DuplicateId(format!(
                    "initial job references unknown project {}",
                    ij.project
                ))),
                Some(project) => {
                    if !project.apps.iter().any(|a| a.id == ij.app) {
                        errors.push(ModelError::DuplicateId(format!(
                            "initial job references unknown app {} of {}",
                            ij.app, ij.project
                        )));
                    }
                }
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(ScenarioErrors(errors))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::{AppClass, SimDuration};

    fn base() -> Scenario {
        crate::ScenarioBuilder::new("t", Hardware::cpu_only(1, 1e9))
            .project(ProjectSpec::new(0, "p", 100.0).with_app(AppClass::cpu(
                0,
                SimDuration::from_secs(100.0),
                SimDuration::from_secs(1000.0),
            )))
            .build_unchecked()
    }

    #[test]
    fn valid_scenario_passes() {
        assert!(base().validate().is_ok());
    }

    fn errors_of(s: &Scenario) -> Vec<ModelError> {
        s.validate().expect_err("expected validation errors").0
    }

    #[test]
    fn empty_projects_rejected() {
        let s = Scenario::new("t", Hardware::cpu_only(1, 1e9));
        assert_eq!(errors_of(&s), vec![ModelError::Empty("projects")]);
    }

    #[test]
    fn gpu_app_without_gpu_rejected() {
        let s = crate::ScenarioBuilder::new("t", Hardware::cpu_only(1, 1e9))
            .project(ProjectSpec::new(0, "p", 100.0).with_app(AppClass::gpu(
                0,
                ProcType::NvidiaGpu,
                SimDuration::from_secs(100.0),
                SimDuration::from_secs(1000.0),
            )))
            .build_unchecked();
        assert!(matches!(errors_of(&s)[..], [ModelError::MissingProcType { .. }]));
    }

    #[test]
    fn duplicate_project_ids_rejected() {
        let mut s = base();
        s.projects.push(s.projects[0].clone());
        assert!(errors_of(&s).iter().any(|e| matches!(e, ModelError::DuplicateId(_))));
    }

    #[test]
    fn nonpositive_or_nonfinite_share_rejected() {
        for bad in [-1.0, 0.0, f64::NAN, f64::INFINITY] {
            let mut s = base();
            s.projects[0].resource_share = bad;
            assert!(
                errors_of(&s)
                    .iter()
                    .any(|e| matches!(e, ModelError::OutOfRange { what: "resource_share", .. })),
                "share {bad} must be rejected"
            );
        }
    }

    #[test]
    fn nonfinite_durations_rejected() {
        let mut s = base();
        s.projects[0].apps[0].runtime_mean = SimDuration::from_secs(f64::NAN);
        s.projects[0].apps[0].latency_bound = SimDuration::from_secs(f64::INFINITY);
        let errs = errors_of(&s);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::OutOfRange { what: "runtime_mean", .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::OutOfRange { what: "latency_bound", .. })));
    }

    #[test]
    fn zero_checkpoint_period_rejected_but_none_allowed() {
        let mut s = base();
        s.projects[0].apps[0].checkpoint_period = Some(SimDuration::from_secs(0.0));
        assert!(errors_of(&s)
            .iter()
            .any(|e| matches!(e, ModelError::OutOfRange { what: "checkpoint_period", .. })));
        s.projects[0].apps[0].checkpoint_period = None;
        assert!(s.validate().is_ok(), "a never-checkpointing app is legal");
    }

    #[test]
    fn all_problems_reported_at_once() {
        // One pass must surface every defect, not stop at the first.
        let mut s = base();
        s.projects[0].resource_share = -1.0;
        s.projects[0].apps[0].runtime_mean = SimDuration::from_secs(0.0);
        s.projects.push(s.projects[0].clone());
        let errs = errors_of(&s);
        assert!(errs.len() >= 4, "expected share x2 + runtime x2 + duplicate, got {errs:?}");
        assert!(errs.iter().any(|e| matches!(e, ModelError::DuplicateId(_))));
        let rendered = bce_types::ScenarioErrors(errs).to_string();
        assert!(rendered.contains("problems:"), "{rendered}");
        assert!(rendered.contains("resource_share"), "{rendered}");
    }
}

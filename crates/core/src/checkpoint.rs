//! Crash-safe run checkpoints: the complete deterministic state of an
//! emulation between two event-loop iterations, and a versioned XML
//! serialization of it.
//!
//! A [`CheckpointState`] captures everything [`crate::Emulator`] mutates
//! during a run — the pending event queue with its tie-break sequence,
//! the simulation clock, every RNG stream position (availability
//! processes, server job factories and supply processes, fault plans),
//! the client's tasks/transfers/debts/backoffs including the RR-sim
//! cache, the metric accumulators, and the reproducible observation
//! state (message log, timeline segments). Restoring it and running to
//! the end produces a result whose
//! [`crate::EmulationResult::bit_fingerprint`] equals the uninterrupted
//! run's — that identity is the contract this module exists to keep, and
//! the round-trip property tests enforce it.
//!
//! **What is deliberately *not* captured:** wall-clock instruments. The
//! profiler, the typed-trace buffer and the exported metrics snapshot
//! are observation-only and excluded from the fingerprint, so a resumed
//! run may report different span timings while remaining bit-identical
//! where it matters.
//!
//! The on-disk format reuses `bce-statefile`'s XML machinery through a
//! `<bce_checkpoint version="1">` envelope; floats are stored as the hex
//! of their IEEE-754 bit pattern so serialization is exact. Malformed,
//! truncated or hostile input yields a [`CheckpointError`], never a
//! panic.

use crate::emulator::Event;
use crate::metrics::MetricsAccumSnapshot;
use bce_avail::HostRunState;
use bce_client::{
    AccountingSnapshot, ClientSnapshot, DirtClass, DirtyGroups, ProjectClientSnapshot, RrOutcome,
    RrStats, TaskSnapshot, TaskState, XferRetrySnapshot,
};
use bce_faults::RetryState;
use bce_server::{ServerSnapshot, ServerStats};
use bce_sim::{Component, Level, LogEntry, Occupancy, Rng, Segment};
use bce_statefile::{
    attr_f64_bits, attr_parse, envelope, fmt_f64_bits, fmt_u64_hex, frame, open_envelope,
    parse_u64_hex, req_attr, req_child, CodecError, IoOp, RealIo, StateIo, XmlNode,
};
use bce_types::{
    AppId, InstanceId, JobId, JobSpec, ProcMap, ProcType, ProjectId, ResourceUsage, SimDuration,
    SimTime,
};
use std::path::Path;

/// Current version of the checkpoint document format. Bumped to 2 when
/// the RR dirty-tracking state (`rr_dirty`, `frozen_until`, the `frozen`
/// counter) and the availability coalescing counters joined the capture;
/// v1 documents lack them and cannot resume bit-identically.
const VERSION: u32 = 2;
/// Root element name of the checkpoint document.
const ROOT: &str = "bce_checkpoint";

/// Error restoring or decoding a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// The document failed to decode (malformed XML, wrong root, newer
    /// version, missing or malformed field).
    Codec(CodecError),
    /// A filesystem operation failed. Carries which operation and which
    /// path, so a daemon log line is actionable without strace.
    Io { op: IoOp, path: std::path::PathBuf, source: std::io::Error },
    /// The file's checksummed frame failed validation — truncation, bit
    /// rot, or a torn rename. Distinct from [`CheckpointError::Codec`]:
    /// the *storage* is damaged, not the document schema.
    Corrupt { path: std::path::PathBuf, reason: String },
    /// The checkpoint was taken from a different scenario (name or seed
    /// differ); resuming it here could not be bit-identical to anything.
    ScenarioMismatch { expected: String, found: String },
    /// The emulator configuration is incompatible with the checkpoint
    /// (e.g. fault injection on in one and off in the other).
    ConfigMismatch(String),
}

impl CheckpointError {
    fn io(op: IoOp, path: &Path, source: std::io::Error) -> Self {
        CheckpointError::Io { op, path: path.to_path_buf(), source }
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Codec(e) => write!(f, "checkpoint decode error: {e}"),
            CheckpointError::Io { op, path, source } => {
                write!(f, "checkpoint i/o error: {op} {}: {source}", path.display())
            }
            CheckpointError::Corrupt { path, reason } => {
                write!(f, "checkpoint corrupt: {}: {reason}", path.display())
            }
            CheckpointError::ScenarioMismatch { expected, found } => {
                write!(f, "checkpoint is for scenario {found}, emulator runs {expected}")
            }
            CheckpointError::ConfigMismatch(what) => {
                write!(f, "checkpoint incompatible with emulator config: {what}")
            }
        }
    }
}
impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Codec(e)
    }
}

/// The complete deterministic state of one emulation run at an event
/// boundary. Opaque: produced by [`crate::Emulator::checkpoint_at`] (or
/// the periodic sink of [`crate::Emulator::run_with_checkpoints_in`]),
/// consumed by [`crate::Emulator::resume`], and round-tripped through
/// [`CheckpointState::to_xml_string`] / [`CheckpointState::from_xml_str`]
/// for crash-safe persistence.
#[derive(Debug, Clone)]
pub struct CheckpointState {
    pub(crate) scenario_name: String,
    pub(crate) seed: u64,
    pub(crate) duration: SimDuration,
    pub(crate) now: SimTime,
    pub(crate) generation: u64,
    pub(crate) events_processed: u64,
    pub(crate) peak_jobs: u64,
    pub(crate) flaps_coalesced: u64,
    pub(crate) avail_resched_skipped: u64,
    /// The run had already reached its end when captured; resuming only
    /// finalizes.
    pub(crate) finished: bool,
    pub(crate) run_state: HostRunState,
    pub(crate) queue: Vec<(SimTime, u64, Event)>,
    pub(crate) queue_next_seq: u64,
    /// Host, user, network availability sources in [`bce_avail::Governor`]
    /// order; `None` = trace-driven source (immutable, nothing to save).
    pub(crate) avail: [Option<(Rng, bool, SimTime)>; 3],
    pub(crate) servers: Vec<(ProjectId, ServerSnapshot)>,
    pub(crate) client: ClientSnapshot,
    pub(crate) rpc_fault_streams: Option<Vec<(ProjectId, Rng)>>,
    pub(crate) crash_rng: Option<Rng>,
    pub(crate) recoveries: Vec<(SimTime, Vec<(JobId, f64)>)>,
    pub(crate) metrics: MetricsAccumSnapshot,
    pub(crate) log: Option<(Vec<LogEntry>, u64)>,
    pub(crate) timeline: Option<Vec<(InstanceId, Vec<Segment>)>>,
    pub(crate) assignment: Vec<(JobId, Vec<InstanceId>)>,
}

impl CheckpointState {
    /// Simulation time of the captured event boundary.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Name of the scenario the checkpoint was taken from.
    pub fn scenario_name(&self) -> &str {
        &self.scenario_name
    }

    /// Seed of the scenario the checkpoint was taken from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` when the captured run had already completed; resuming such
    /// a checkpoint performs no further simulation.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Dirt class of the captured client's RR tracker (tests use this to
    /// witness that a checkpoint really was taken mid-dirty).
    pub fn rr_dirt_class(&self) -> bce_client::DirtClass {
        self.client.rr_dirty.class()
    }

    /// End of the captured client's frozen-progress window.
    pub fn rr_frozen_until(&self) -> SimTime {
        self.client.rr_frozen_until
    }

    /// Serialize to the versioned XML document format.
    pub fn to_xml_string(&self) -> String {
        self.to_xml().render()
    }

    /// Parse a serialized checkpoint. Malformed input of any kind —
    /// truncation, wrong document type, missing fields, bad numbers —
    /// returns an error and never panics.
    pub fn from_xml_str(src: &str) -> Result<Self, CheckpointError> {
        let (v, root) = open_envelope(src, ROOT, VERSION)?;
        if v < VERSION {
            // Every field is required for a bit-identical resume; older
            // documents are missing the RR dirty-tracking state, so they
            // are rejected outright rather than resumed with silently
            // reset cache state.
            return Err(bce_statefile::CodecError::BadVersion(format!(
                "v{v} checkpoint predates RR dirty-state tracking (need v{VERSION})"
            ))
            .into());
        }
        Ok(Self::from_xml(&root)?)
    }

    /// Write the checkpoint to `path` atomically and durably: the
    /// serialized document is wrapped in a CRC-64 frame, fsynced in a
    /// same-directory temp file, renamed over the target, and the parent
    /// directory fsynced — a crash at any point leaves either the old
    /// checkpoint or the new one, never a truncated file, and later
    /// corruption is detectable on read.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        write_atomic(path, self.to_xml_string().as_bytes())
    }

    /// Read and parse a checkpoint file (framed, or legacy unframed —
    /// see [`read_checkpoint_text`]).
    pub fn read_from(path: &Path) -> Result<Self, CheckpointError> {
        let (src, _legacy) = read_checkpoint_text(path)?;
        Self::from_xml_str(&src)
    }

    fn to_xml(&self) -> XmlNode {
        let mut root = envelope(ROOT, VERSION);

        let mut scenario = XmlNode::new("scenario");
        scenario.attrs.push(("name".into(), self.scenario_name.clone()));
        scenario.attrs.push(("seed".into(), self.seed.to_string()));
        root.push(scenario);

        let mut clock = XmlNode::new("clock");
        push_time(&mut clock, "now", self.now);
        clock.attrs.push(("duration".into(), fmt_f64_bits(self.duration.secs())));
        clock.attrs.push(("generation".into(), self.generation.to_string()));
        clock.attrs.push(("events_processed".into(), self.events_processed.to_string()));
        clock.attrs.push(("peak_jobs".into(), self.peak_jobs.to_string()));
        clock.attrs.push(("flaps_coalesced".into(), self.flaps_coalesced.to_string()));
        clock.attrs.push(("avail_resched_skipped".into(), self.avail_resched_skipped.to_string()));
        push_bool(&mut clock, "finished", self.finished);
        root.push(clock);

        root.push(run_state_node("run_state", &self.run_state));

        let mut queue = XmlNode::new("queue");
        queue.attrs.push(("next_seq".into(), self.queue_next_seq.to_string()));
        for (time, seq, event) in &self.queue {
            let mut ev = XmlNode::new("ev");
            push_time(&mut ev, "time", *time);
            ev.attrs.push(("seq".into(), seq.to_string()));
            let (kind, generation) = match event {
                Event::SchedPoint => ("sched", None),
                Event::Client { generation } => ("client", Some(*generation)),
                Event::AvailChange => ("avail", None),
                Event::FetchRetry { generation } => ("fetch", Some(*generation)),
                Event::Crash => ("crash", None),
            };
            ev.attrs.push(("kind".into(), kind.into()));
            if let Some(g) = generation {
                ev.attrs.push(("gen".into(), g.to_string()));
            }
            queue.push(ev);
        }
        root.push(queue);

        let mut avail = XmlNode::new("avail");
        for state in &self.avail {
            avail.push(match state {
                Some((rng, on, next)) => {
                    let mut src = onoff_node("src", rng, *on, *next);
                    src.attrs.insert(0, ("kind".into(), "process".into()));
                    src
                }
                None => {
                    let mut src = XmlNode::new("src");
                    src.attrs.push(("kind".into(), "trace".into()));
                    src
                }
            });
        }
        root.push(avail);

        let mut servers = XmlNode::new("servers");
        for (id, snap) in &self.servers {
            servers.push(server_node(*id, snap));
        }
        root.push(servers);

        root.push(client_node(&self.client));

        if let Some(streams) = &self.rpc_fault_streams {
            let mut rpc = XmlNode::new("rpc_faults");
            for (id, rng) in streams {
                let mut s = XmlNode::new("stream");
                s.attrs.push(("id".into(), id.0.to_string()));
                s.attrs.push(("rng".into(), rng_to_hex(rng)));
                rpc.push(s);
            }
            root.push(rpc);
        }
        if let Some(rng) = &self.crash_rng {
            let mut crash = XmlNode::new("crash");
            crash.attrs.push(("rng".into(), rng_to_hex(rng)));
            root.push(crash);
        }

        let mut recoveries = XmlNode::new("recoveries");
        for (start, targets) in &self.recoveries {
            let mut r = XmlNode::new("recovery");
            push_time(&mut r, "start", *start);
            for (job, progress) in targets {
                let mut t = XmlNode::new("target");
                t.attrs.push(("job".into(), job.0.to_string()));
                t.attrs.push(("progress".into(), fmt_f64_bits(*progress)));
                r.push(t);
            }
            recoveries.push(r);
        }
        root.push(recoveries);

        root.push(metrics_node(&self.metrics));

        if let Some((entries, dropped)) = &self.log {
            let mut log = XmlNode::new("log");
            log.attrs.push(("dropped".into(), dropped.to_string()));
            for e in entries {
                let mut entry = XmlNode::new("entry");
                push_time(&mut entry, "time", e.time);
                entry.attrs.push(("level".into(), e.level.name().into()));
                entry.attrs.push(("component".into(), e.component.name().into()));
                entry.attrs.push(("msg".into(), e.message.clone()));
                log.push(entry);
            }
            root.push(log);
        }

        if let Some(tracks) = &self.timeline {
            let mut timeline = XmlNode::new("timeline");
            for (inst, segments) in tracks {
                let mut track = XmlNode::new("track");
                push_instance(&mut track, *inst);
                for seg in segments {
                    let mut s = XmlNode::new("seg");
                    push_time(&mut s, "start", seg.start);
                    push_time(&mut s, "end", seg.end);
                    match seg.occ {
                        Occupancy::Idle => s.attrs.push(("occ".into(), "idle".into())),
                        Occupancy::Unavailable => s.attrs.push(("occ".into(), "unavail".into())),
                        Occupancy::Busy { project, job } => {
                            s.attrs.push(("occ".into(), "busy".into()));
                            s.attrs.push(("project".into(), project.0.to_string()));
                            s.attrs.push(("job".into(), job.0.to_string()));
                        }
                    }
                    track.push(s);
                }
                timeline.push(track);
            }
            root.push(timeline);
        }

        let mut assignment = XmlNode::new("assignment");
        for (job, insts) in &self.assignment {
            let mut j = XmlNode::new("job");
            j.attrs.push(("id".into(), job.0.to_string()));
            for inst in insts {
                let mut i = XmlNode::new("inst");
                push_instance(&mut i, *inst);
                j.push(i);
            }
            assignment.push(j);
        }
        root.push(assignment);

        root
    }

    fn from_xml(root: &XmlNode) -> Result<Self, CodecError> {
        let scenario = req_child(root, "scenario")?;
        let scenario_name = req_attr(scenario, "name")?.to_string();
        let seed: u64 = attr_parse(scenario, "seed")?;

        let clock = req_child(root, "clock")?;
        let now = time_attr(clock, "now")?;
        let duration = SimDuration::from_secs(attr_f64_bits(clock, "duration")?);
        let generation: u64 = attr_parse(clock, "generation")?;
        let events_processed: u64 = attr_parse(clock, "events_processed")?;
        let peak_jobs: u64 = attr_parse(clock, "peak_jobs")?;
        let flaps_coalesced: u64 = attr_parse(clock, "flaps_coalesced")?;
        let avail_resched_skipped: u64 = attr_parse(clock, "avail_resched_skipped")?;
        let finished = bool_attr(clock, "finished")?;

        let run_state = parse_run_state(req_child(root, "run_state")?)?;

        let queue_el = req_child(root, "queue")?;
        let queue_next_seq: u64 = attr_parse(queue_el, "next_seq")?;
        let mut queue = Vec::new();
        for ev in queue_el.children_named("ev") {
            let time = time_attr(ev, "time")?;
            let seq: u64 = attr_parse(ev, "seq")?;
            let event = match req_attr(ev, "kind")? {
                "sched" => Event::SchedPoint,
                "client" => Event::Client { generation: attr_parse(ev, "gen")? },
                "avail" => Event::AvailChange,
                "fetch" => Event::FetchRetry { generation: attr_parse(ev, "gen")? },
                "crash" => Event::Crash,
                other => return Err(CodecError::Field(format!("unknown event kind {other:?}"))),
            };
            queue.push((time, seq, event));
        }

        let avail_el = req_child(root, "avail")?;
        let srcs: Vec<&XmlNode> = avail_el.children_named("src").collect();
        if srcs.len() != 3 {
            return Err(CodecError::Field(format!(
                "<avail> needs exactly 3 <src> children, found {}",
                srcs.len()
            )));
        }
        let mut avail: [Option<(Rng, bool, SimTime)>; 3] = [None, None, None];
        for (slot, src) in avail.iter_mut().zip(srcs) {
            *slot = match req_attr(src, "kind")? {
                "process" => Some(parse_onoff(src)?),
                "trace" => None,
                other => return Err(CodecError::Field(format!("unknown avail kind {other:?}"))),
            };
        }

        let servers_el = req_child(root, "servers")?;
        let mut servers = Vec::new();
        for s in servers_el.children_named("server") {
            servers.push(parse_server(s)?);
        }

        let client = parse_client(req_child(root, "client")?)?;

        let rpc_fault_streams = match root.child("rpc_faults") {
            Some(rpc) => {
                let mut streams = Vec::new();
                for s in rpc.children_named("stream") {
                    streams.push((ProjectId(attr_parse(s, "id")?), rng_attr(s, "rng")?));
                }
                Some(streams)
            }
            None => None,
        };
        let crash_rng = match root.child("crash") {
            Some(c) => Some(rng_attr(c, "rng")?),
            None => None,
        };

        let mut recoveries = Vec::new();
        for r in req_child(root, "recoveries")?.children_named("recovery") {
            let start = time_attr(r, "start")?;
            let mut targets = Vec::new();
            for t in r.children_named("target") {
                targets.push((JobId(attr_parse(t, "job")?), attr_f64_bits(t, "progress")?));
            }
            recoveries.push((start, targets));
        }

        let metrics = parse_metrics(req_child(root, "metrics")?)?;

        let log = match root.child("log") {
            Some(log_el) => {
                let dropped: u64 = attr_parse(log_el, "dropped")?;
                let mut entries = Vec::new();
                for e in log_el.children_named("entry") {
                    let level = Level::from_name(req_attr(e, "level")?).ok_or_else(|| {
                        CodecError::Field(format!("unknown log level {:?}", e.attr("level")))
                    })?;
                    let component =
                        Component::from_name(req_attr(e, "component")?).ok_or_else(|| {
                            CodecError::Field(format!(
                                "unknown log component {:?}",
                                e.attr("component")
                            ))
                        })?;
                    entries.push(LogEntry {
                        time: time_attr(e, "time")?,
                        level,
                        component,
                        message: req_attr(e, "msg")?.to_string(),
                    });
                }
                Some((entries, dropped))
            }
            None => None,
        };

        let timeline = match root.child("timeline") {
            Some(tl) => {
                let mut tracks = Vec::new();
                for track in tl.children_named("track") {
                    let inst = parse_instance(track)?;
                    let mut segments = Vec::new();
                    for s in track.children_named("seg") {
                        let occ = match req_attr(s, "occ")? {
                            "idle" => Occupancy::Idle,
                            "unavail" => Occupancy::Unavailable,
                            "busy" => Occupancy::Busy {
                                project: ProjectId(attr_parse(s, "project")?),
                                job: JobId(attr_parse(s, "job")?),
                            },
                            other => {
                                return Err(CodecError::Field(format!(
                                    "unknown occupancy {other:?}"
                                )))
                            }
                        };
                        segments.push(Segment {
                            start: time_attr(s, "start")?,
                            end: time_attr(s, "end")?,
                            occ,
                        });
                    }
                    tracks.push((inst, segments));
                }
                Some(tracks)
            }
            None => None,
        };

        let mut assignment = Vec::new();
        for j in req_child(root, "assignment")?.children_named("job") {
            let job = JobId(attr_parse(j, "id")?);
            let mut insts = Vec::new();
            for i in j.children_named("inst") {
                insts.push(parse_instance(i)?);
            }
            assignment.push((job, insts));
        }

        Ok(CheckpointState {
            scenario_name,
            seed,
            duration,
            now,
            generation,
            events_processed,
            peak_jobs,
            flaps_coalesced,
            avail_resched_skipped,
            finished,
            run_state,
            queue,
            queue_next_seq,
            avail,
            servers,
            client,
            rpc_fault_streams,
            crash_rng,
            recoveries,
            metrics,
            log,
            timeline,
            assignment,
        })
    }
}

/// Policy for writing periodic run checkpoints from an executor: every
/// `every` of simulated time, the run's [`CheckpointState`] is written
/// atomically under `dir` (one file per run, named after the run label).
/// An executor finding a checkpoint file for a run resumes from it
/// instead of starting over — the result is bit-identical either way.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointPolicy {
    /// Directory the per-run `.ckpt` files live in (created on demand).
    pub dir: std::path::PathBuf,
    /// Simulated time between checkpoints.
    pub every: SimDuration,
}

/// Write `payload` to `path` atomically and durably. Shared by run
/// checkpoints and campaign checkpoints. The payload is wrapped in a
/// CRC-64 frame ([`bce_statefile::frame`]), then published with the full
/// durability discipline the temp+rename contract actually requires:
/// fsync the temp file *before* the rename (otherwise the rename can
/// publish a name whose data never hit the platter) and fsync the parent
/// directory *after* (otherwise the new name itself can vanish in a
/// crash).
pub fn write_atomic(path: &Path, payload: &[u8]) -> Result<(), CheckpointError> {
    write_atomic_io(path, payload, &RealIo)
}

/// [`write_atomic`] over an injectable I/O backend (chaos tests).
pub fn write_atomic_io(
    path: &Path,
    payload: &[u8],
    io: &dyn StateIo,
) -> Result<(), CheckpointError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        CheckpointError::io(IoOp::Open, path, std::io::Error::other("path has no file name"))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let framed = frame::encode(payload);
    if let Err(e) = io.write_durable(&tmp, &framed) {
        let _ = io.remove_file(&tmp);
        return Err(CheckpointError::io(IoOp::Write, &tmp, e));
    }
    if let Err(e) = io.rename(&tmp, path) {
        let _ = io.remove_file(&tmp);
        return Err(CheckpointError::io(IoOp::Rename, path, e));
    }
    let dir = dir.map(Path::to_path_buf).unwrap_or_else(|| std::path::PathBuf::from("."));
    io.sync_dir(&dir).map_err(|e| CheckpointError::io(IoOp::Fsync, &dir, e))
}

/// Read a checkpoint file's text payload, verifying the CRC-64 frame.
///
/// Legacy checkpoints written before framing are bare XML; they are
/// version-sniffed (no `BCEFRAME` magic) and still load, returning
/// `true` in the second slot so callers can surface a deprecation note —
/// an unframed file has no corruption detection and should be rewritten
/// by the next save.
pub fn read_checkpoint_text(path: &Path) -> Result<(String, bool), CheckpointError> {
    read_checkpoint_text_io(path, &RealIo)
}

/// [`read_checkpoint_text`] over an injectable I/O backend.
pub fn read_checkpoint_text_io(
    path: &Path,
    io: &dyn StateIo,
) -> Result<(String, bool), CheckpointError> {
    let bytes = io.read(path).map_err(|e| CheckpointError::io(IoOp::Read, path, e))?;
    match frame::decode(&bytes) {
        Ok(payload) => match std::str::from_utf8(payload) {
            Ok(text) => Ok((text.to_string(), false)),
            Err(_) => Err(CheckpointError::Corrupt {
                path: path.to_path_buf(),
                reason: "framed payload is not valid UTF-8".into(),
            }),
        },
        Err(frame::FrameError::NotFramed) => match String::from_utf8(bytes) {
            Ok(text) => Ok((text, true)),
            Err(_) => Err(CheckpointError::Corrupt {
                path: path.to_path_buf(),
                reason: "legacy checkpoint is not valid UTF-8".into(),
            }),
        },
        Err(e) => Err(CheckpointError::Corrupt { path: path.to_path_buf(), reason: e.to_string() }),
    }
}

// --- Attribute helpers -------------------------------------------------

fn push_time(node: &mut XmlNode, name: &str, t: SimTime) {
    node.attrs.push((name.into(), fmt_f64_bits(t.secs())));
}

fn time_attr(node: &XmlNode, name: &str) -> Result<SimTime, CodecError> {
    Ok(SimTime::from_secs(attr_f64_bits(node, name)?))
}

fn push_f64(node: &mut XmlNode, name: &str, x: f64) {
    node.attrs.push((name.into(), fmt_f64_bits(x)));
}

fn push_bool(node: &mut XmlNode, name: &str, b: bool) {
    node.attrs.push((name.into(), if b { "1" } else { "0" }.into()));
}

fn bool_attr(node: &XmlNode, name: &str) -> Result<bool, CodecError> {
    match req_attr(node, name)? {
        "1" => Ok(true),
        "0" => Ok(false),
        other => Err(CodecError::Field(format!("<{}> {name}={other:?} is not 0/1", node.name))),
    }
}

fn rng_to_hex(rng: &Rng) -> String {
    rng.state().iter().map(|w| fmt_u64_hex(*w)).collect()
}

fn rng_attr(node: &XmlNode, name: &str) -> Result<Rng, CodecError> {
    let raw = req_attr(node, name)?;
    if raw.len() != 64 || !raw.is_ascii() {
        return Err(CodecError::Field(format!("<{}> {name} is not a 64-hex RNG state", node.name)));
    }
    let mut words = [0u64; 4];
    for (i, w) in words.iter_mut().enumerate() {
        *w = parse_u64_hex(&raw[i * 16..(i + 1) * 16])?;
    }
    Ok(Rng::from_state(words))
}

/// `(rng, on, next-toggle-time)` of an on/off process as one element.
fn onoff_node(name: &str, rng: &Rng, on: bool, next: SimTime) -> XmlNode {
    let mut n = XmlNode::new(name);
    n.attrs.push(("rng".into(), rng_to_hex(rng)));
    push_bool(&mut n, "on", on);
    push_time(&mut n, "next", next);
    n
}

fn parse_onoff(node: &XmlNode) -> Result<(Rng, bool, SimTime), CodecError> {
    Ok((rng_attr(node, "rng")?, bool_attr(node, "on")?, time_attr(node, "next")?))
}

fn run_state_node(name: &str, rs: &HostRunState) -> XmlNode {
    let mut n = XmlNode::new(name);
    push_bool(&mut n, "can_compute", rs.can_compute);
    push_bool(&mut n, "can_gpu", rs.can_gpu);
    push_bool(&mut n, "net_up", rs.net_up);
    push_bool(&mut n, "user_active", rs.user_active);
    n
}

fn parse_run_state(node: &XmlNode) -> Result<HostRunState, CodecError> {
    Ok(HostRunState {
        can_compute: bool_attr(node, "can_compute")?,
        can_gpu: bool_attr(node, "can_gpu")?,
        net_up: bool_attr(node, "net_up")?,
        user_active: bool_attr(node, "user_active")?,
    })
}

fn procmap_node(name: &str, map: &ProcMap<f64>) -> XmlNode {
    let mut n = XmlNode::new(name);
    for (i, v) in map.0.iter().enumerate() {
        push_f64(&mut n, &format!("v{i}"), *v);
    }
    n
}

fn parse_procmap(node: &XmlNode) -> Result<ProcMap<f64>, CodecError> {
    let mut map = ProcMap([0.0; ProcType::COUNT]);
    for (i, v) in map.0.iter_mut().enumerate() {
        *v = attr_f64_bits(node, &format!("v{i}"))?;
    }
    Ok(map)
}

fn push_instance(node: &mut XmlNode, inst: InstanceId) {
    node.attrs.push(("proc".into(), inst.proc_type.index().to_string()));
    node.attrs.push(("index".into(), inst.index.to_string()));
}

fn parse_instance(node: &XmlNode) -> Result<InstanceId, CodecError> {
    let idx: usize = attr_parse(node, "proc")?;
    let proc_type = ProcType::from_index(idx)
        .ok_or_else(|| CodecError::Field(format!("bad proc type index {idx}")))?;
    Ok(InstanceId { proc_type, index: attr_parse(node, "index")? })
}

fn retry_attrs(node: &mut XmlNode, prefix: &str, state: &RetryState) {
    node.attrs.push((format!("{prefix}_failures"), state.consecutive_failures().to_string()));
    push_time(node, &format!("{prefix}_until"), state.until);
}

fn parse_retry(node: &XmlNode, prefix: &str) -> Result<RetryState, CodecError> {
    Ok(RetryState::from_parts(
        attr_parse(node, &format!("{prefix}_failures"))?,
        time_attr(node, &format!("{prefix}_until"))?,
    ))
}

// --- Server ------------------------------------------------------------

fn server_node(id: ProjectId, snap: &ServerSnapshot) -> XmlNode {
    let mut n = XmlNode::new("server");
    n.attrs.push(("id".into(), id.0.to_string()));

    let mut factory = XmlNode::new("factory");
    factory.attrs.push(("next_seq".into(), snap.factory_next_seq.to_string()));
    factory.attrs.push(("rng".into(), rng_to_hex(&snap.factory_rng)));
    n.push(factory);

    if let Some((rng, on, next)) = &snap.uptime {
        n.push(onoff_node("uptime", rng, *on, *next));
    }
    if let Some((rng, on, next)) = &snap.supply {
        n.push(onoff_node("supply", rng, *on, *next));
    }
    let mut app_supply = XmlNode::new("app_supply");
    for (app, (rng, on, next)) in &snap.app_supply {
        let mut a = onoff_node("app", rng, *on, *next);
        a.attrs.insert(0, ("id".into(), app.0.to_string()));
        app_supply.push(a);
    }
    n.push(app_supply);

    if let Some(remaining) = snap.batch_remaining {
        let mut b = XmlNode::new("batch");
        b.attrs.push(("remaining".into(), remaining.to_string()));
        n.push(b);
    }

    let mut in_progress = XmlNode::new("in_progress");
    for (job, deadline) in &snap.in_progress {
        let mut j = XmlNode::new("job");
        j.attrs.push(("id".into(), job.0.to_string()));
        push_time(&mut j, "deadline", *deadline);
        in_progress.push(j);
    }
    n.push(in_progress);

    let mut stats = XmlNode::new("stats");
    let s = &snap.stats;
    for (name, v) in [
        ("rpcs", s.rpcs),
        ("failed_rpcs", s.failed_rpcs),
        ("jobs_dispatched", s.jobs_dispatched),
        ("reported_in_time", s.reported_in_time),
        ("reported_late", s.reported_late),
        ("timed_out", s.timed_out),
        ("errored", s.errored),
    ] {
        stats.attrs.push((name.into(), v.to_string()));
    }
    n.push(stats);
    n
}

fn parse_server(node: &XmlNode) -> Result<(ProjectId, ServerSnapshot), CodecError> {
    let id = ProjectId(attr_parse(node, "id")?);
    let factory = req_child(node, "factory")?;
    let mut app_supply = Vec::new();
    for a in req_child(node, "app_supply")?.children_named("app") {
        app_supply.push((AppId(attr_parse(a, "id")?), parse_onoff(a)?));
    }
    let mut in_progress = Vec::new();
    for j in req_child(node, "in_progress")?.children_named("job") {
        in_progress.push((JobId(attr_parse(j, "id")?), time_attr(j, "deadline")?));
    }
    let stats_el = req_child(node, "stats")?;
    let stats = ServerStats {
        rpcs: attr_parse(stats_el, "rpcs")?,
        failed_rpcs: attr_parse(stats_el, "failed_rpcs")?,
        jobs_dispatched: attr_parse(stats_el, "jobs_dispatched")?,
        reported_in_time: attr_parse(stats_el, "reported_in_time")?,
        reported_late: attr_parse(stats_el, "reported_late")?,
        timed_out: attr_parse(stats_el, "timed_out")?,
        errored: attr_parse(stats_el, "errored")?,
    };
    Ok((
        id,
        ServerSnapshot {
            factory_next_seq: attr_parse(factory, "next_seq")?,
            factory_rng: rng_attr(factory, "rng")?,
            uptime: node.child("uptime").map(parse_onoff).transpose()?,
            supply: node.child("supply").map(parse_onoff).transpose()?,
            app_supply,
            batch_remaining: node.child("batch").map(|b| attr_parse(b, "remaining")).transpose()?,
            in_progress,
            stats,
        },
    ))
}

// --- Client ------------------------------------------------------------

fn spec_node(spec: &JobSpec) -> XmlNode {
    let mut n = XmlNode::new("spec");
    n.attrs.push(("id".into(), spec.id.0.to_string()));
    n.attrs.push(("project".into(), spec.project.0.to_string()));
    n.attrs.push(("app".into(), spec.app.0.to_string()));
    push_f64(&mut n, "avg_cpus", spec.usage.avg_cpus);
    if let Some((t, count)) = spec.usage.coproc {
        n.attrs.push(("coproc_type".into(), t.index().to_string()));
        push_f64(&mut n, "coproc_n", count);
    }
    push_f64(&mut n, "duration", spec.duration.secs());
    push_f64(&mut n, "duration_est", spec.duration_est.secs());
    push_f64(&mut n, "latency_bound", spec.latency_bound.secs());
    if let Some(cp) = spec.checkpoint_period {
        push_f64(&mut n, "checkpoint_period", cp.secs());
    }
    push_f64(&mut n, "working_set_bytes", spec.working_set_bytes);
    push_f64(&mut n, "input_bytes", spec.input_bytes);
    push_f64(&mut n, "output_bytes", spec.output_bytes);
    push_time(&mut n, "received", spec.received);
    n
}

fn parse_spec(n: &XmlNode) -> Result<JobSpec, CodecError> {
    let coproc = match n.attr("coproc_type") {
        Some(_) => {
            let idx: usize = attr_parse(n, "coproc_type")?;
            let t = ProcType::from_index(idx)
                .ok_or_else(|| CodecError::Field(format!("bad coproc type index {idx}")))?;
            Some((t, attr_f64_bits(n, "coproc_n")?))
        }
        None => None,
    };
    Ok(JobSpec {
        id: JobId(attr_parse(n, "id")?),
        project: ProjectId(attr_parse(n, "project")?),
        app: AppId(attr_parse(n, "app")?),
        usage: ResourceUsage { avg_cpus: attr_f64_bits(n, "avg_cpus")?, coproc },
        duration: SimDuration::from_secs(attr_f64_bits(n, "duration")?),
        duration_est: SimDuration::from_secs(attr_f64_bits(n, "duration_est")?),
        latency_bound: SimDuration::from_secs(attr_f64_bits(n, "latency_bound")?),
        checkpoint_period: n
            .attr("checkpoint_period")
            .map(|_| attr_f64_bits(n, "checkpoint_period").map(SimDuration::from_secs))
            .transpose()?,
        working_set_bytes: attr_f64_bits(n, "working_set_bytes")?,
        input_bytes: attr_f64_bits(n, "input_bytes")?,
        output_bytes: attr_f64_bits(n, "output_bytes")?,
        received: time_attr(n, "received")?,
    })
}

fn task_node(name: &str, task: &TaskSnapshot) -> XmlNode {
    let mut n = XmlNode::new(name);
    n.attrs.push(("state".into(), task.state.name().into()));
    push_f64(&mut n, "progress", task.progress);
    push_f64(&mut n, "checkpointed", task.checkpointed);
    push_f64(&mut n, "run_start_progress", task.run_start_progress);
    push_bool(&mut n, "in_memory", task.in_memory);
    push_f64(&mut n, "rollback_waste", task.rollback_waste);
    if let Some(t) = task.completed_at {
        push_time(&mut n, "completed_at", t);
    }
    n.push(spec_node(&task.spec));
    n
}

fn parse_task(n: &XmlNode) -> Result<TaskSnapshot, CodecError> {
    let state = TaskState::from_name(req_attr(n, "state")?)
        .ok_or_else(|| CodecError::Field(format!("unknown task state {:?}", n.attr("state"))))?;
    Ok(TaskSnapshot {
        spec: parse_spec(req_child(n, "spec")?)?,
        state,
        progress: attr_f64_bits(n, "progress")?,
        checkpointed: attr_f64_bits(n, "checkpointed")?,
        run_start_progress: attr_f64_bits(n, "run_start_progress")?,
        in_memory: bool_attr(n, "in_memory")?,
        rollback_waste: attr_f64_bits(n, "rollback_waste")?,
        completed_at: n.attr("completed_at").map(|_| time_attr(n, "completed_at")).transpose()?,
    })
}

/// One serialized in-flight transfer: (job, remaining, total, fail_at).
type XferParts = (JobId, f64, f64, Option<f64>);

fn xfers_node(name: &str, xfers: &[XferParts]) -> XmlNode {
    let mut n = XmlNode::new(name);
    for (job, remaining, total, fail_at) in xfers {
        let mut x = XmlNode::new("xfer");
        x.attrs.push(("job".into(), job.0.to_string()));
        push_f64(&mut x, "remaining", *remaining);
        push_f64(&mut x, "total", *total);
        if let Some(f) = fail_at {
            push_f64(&mut x, "fail_at", *f);
        }
        n.push(x);
    }
    n
}

fn parse_xfers(n: &XmlNode) -> Result<Vec<XferParts>, CodecError> {
    let mut out = Vec::new();
    for x in n.children_named("xfer") {
        out.push((
            JobId(attr_parse(x, "job")?),
            attr_f64_bits(x, "remaining")?,
            attr_f64_bits(x, "total")?,
            x.attr("fail_at").map(|_| attr_f64_bits(x, "fail_at")).transpose()?,
        ));
    }
    Ok(out)
}

fn client_node(c: &ClientSnapshot) -> XmlNode {
    let mut n = XmlNode::new("client");
    push_time(&mut n, "last_advance", c.last_advance);
    n.attrs.push(("rpcs_issued".into(), c.rpcs_issued.to_string()));
    n.attrs.push(("state_gen".into(), c.state_gen.to_string()));

    let mut projects = XmlNode::new("projects");
    for p in &c.projects {
        let mut pn = XmlNode::new("project");
        pn.attrs.push(("id".into(), p.id.0.to_string()));
        retry_attrs(&mut pn, "backoff", &p.backoff);
        retry_attrs(&mut pn, "comm", &p.comm_retry);
        push_time(&mut pn, "next_rpc_allowed", p.next_rpc_allowed);
        projects.push(pn);
    }
    n.push(projects);

    let mut tasks = XmlNode::new("tasks");
    for t in &c.tasks {
        tasks.push(task_node("task", t));
    }
    n.push(tasks);
    let mut finished = XmlNode::new("finished");
    for t in &c.finished {
        finished.push(task_node("task", t));
    }
    n.push(finished);

    let mut acc = XmlNode::new("accounting");
    push_time(&mut acc, "rec_updated", c.accounting.rec_updated);
    for (id, map) in &c.accounting.debts {
        let mut d = procmap_node("debt", map);
        d.attrs.insert(0, ("id".into(), id.0.to_string()));
        acc.push(d);
    }
    for (id, map) in &c.accounting.lt_debts {
        let mut d = procmap_node("lt_debt", map);
        d.attrs.insert(0, ("id".into(), id.0.to_string()));
        acc.push(d);
    }
    for (id, v) in &c.accounting.rec {
        let mut r = XmlNode::new("rec");
        r.attrs.push(("id".into(), id.0.to_string()));
        push_f64(&mut r, "v", *v);
        acc.push(r);
    }
    n.push(acc);

    n.push(xfers_node("downloads", &c.downloads));
    n.push(xfers_node("uploads", &c.uploads));

    if let Some(rng) = &c.xfer_faults_rng {
        let mut x = XmlNode::new("xfer_faults");
        x.attrs.push(("rng".into(), rng_to_hex(rng)));
        n.push(x);
    }
    let mut retries = XmlNode::new("xfer_retries");
    for r in &c.xfer_retries {
        let mut rn = XmlNode::new("retry");
        rn.attrs.push(("job".into(), r.job.0.to_string()));
        push_bool(&mut rn, "upload", r.upload);
        push_f64(&mut rn, "bytes", r.bytes);
        retry_attrs(&mut rn, "state", &r.state);
        retries.push(rn);
    }
    n.push(retries);

    let mut rr = XmlNode::new("rr_cache");
    let mut missed = XmlNode::new("missed");
    for id in &c.rr_cache.missed {
        let mut j = XmlNode::new("job");
        j.attrs.push(("id".into(), id.0.to_string()));
        missed.push(j);
    }
    rr.push(missed);
    rr.push(procmap_node("sat", &c.rr_cache.sat.map(|_, d| d.secs())));
    rr.push(procmap_node("shortfall", &c.rr_cache.shortfall));
    let mut finish = XmlNode::new("finish");
    for (id, dt) in &c.rr_cache.finish {
        let mut j = XmlNode::new("job");
        j.attrs.push(("id".into(), id.0.to_string()));
        push_f64(&mut j, "dt", dt.secs());
        finish.push(j);
    }
    rr.push(finish);
    rr.push(procmap_node("busy_now", &c.rr_cache.busy_now));
    n.push(rr);

    if let Some((t, rs, g0, g1)) = &c.rr_key {
        let mut k = run_state_node("rr_key", rs);
        push_time(&mut k, "now", *t);
        k.attrs.push(("g0".into(), g0.to_string()));
        k.attrs.push(("g1".into(), g1.to_string()));
        n.push(k);
    }
    let mut stats = XmlNode::new("rr_stats");
    stats.attrs.push(("queries".into(), c.rr_stats.queries.to_string()));
    stats.attrs.push(("runs".into(), c.rr_stats.runs.to_string()));
    stats.attrs.push(("frozen".into(), c.rr_stats.frozen.to_string()));
    n.push(stats);

    // Dirty-tracking state of the retained snapshot: without it a resumed
    // run would full-resimulate where the uninterrupted run served a
    // frozen hit, skewing the rr_runs counter out of bit-identity.
    let mut dirty = XmlNode::new("rr_dirty");
    dirty.attrs.push(("class".into(), c.rr_dirty.class().name().into()));
    push_time(&mut dirty, "frozen_until", c.rr_frozen_until);
    for (pt, id) in c.rr_dirty.groups() {
        let mut g = XmlNode::new("group");
        g.attrs.push(("pt".into(), pt.index().to_string()));
        g.attrs.push(("project".into(), id.0.to_string()));
        dirty.push(g);
    }
    n.push(dirty);

    n
}

fn parse_client(n: &XmlNode) -> Result<ClientSnapshot, CodecError> {
    let mut projects = Vec::new();
    for p in req_child(n, "projects")?.children_named("project") {
        projects.push(ProjectClientSnapshot {
            id: ProjectId(attr_parse(p, "id")?),
            backoff: parse_retry(p, "backoff")?,
            comm_retry: parse_retry(p, "comm")?,
            next_rpc_allowed: time_attr(p, "next_rpc_allowed")?,
        });
    }
    let mut tasks = Vec::new();
    for t in req_child(n, "tasks")?.children_named("task") {
        tasks.push(parse_task(t)?);
    }
    let mut finished = Vec::new();
    for t in req_child(n, "finished")?.children_named("task") {
        finished.push(parse_task(t)?);
    }

    let acc = req_child(n, "accounting")?;
    let mut debts = Vec::new();
    for d in acc.children_named("debt") {
        debts.push((ProjectId(attr_parse(d, "id")?), parse_procmap(d)?));
    }
    let mut lt_debts = Vec::new();
    for d in acc.children_named("lt_debt") {
        lt_debts.push((ProjectId(attr_parse(d, "id")?), parse_procmap(d)?));
    }
    let mut rec = Vec::new();
    for r in acc.children_named("rec") {
        rec.push((ProjectId(attr_parse(r, "id")?), attr_f64_bits(r, "v")?));
    }
    let accounting =
        AccountingSnapshot { debts, lt_debts, rec, rec_updated: time_attr(acc, "rec_updated")? };

    let mut xfer_retries = Vec::new();
    for r in req_child(n, "xfer_retries")?.children_named("retry") {
        xfer_retries.push(XferRetrySnapshot {
            job: JobId(attr_parse(r, "job")?),
            upload: bool_attr(r, "upload")?,
            bytes: attr_f64_bits(r, "bytes")?,
            state: parse_retry(r, "state")?,
        });
    }

    let rr = req_child(n, "rr_cache")?;
    let mut missed = Vec::new();
    for j in req_child(rr, "missed")?.children_named("job") {
        missed.push(JobId(attr_parse(j, "id")?));
    }
    let mut finish = Vec::new();
    for j in req_child(rr, "finish")?.children_named("job") {
        finish.push((JobId(attr_parse(j, "id")?), SimDuration::from_secs(attr_f64_bits(j, "dt")?)));
    }
    let rr_cache = RrOutcome {
        missed,
        sat: parse_procmap(req_child(rr, "sat")?)?.map(|_, s| SimDuration::from_secs(*s)),
        shortfall: parse_procmap(req_child(rr, "shortfall")?)?,
        finish,
        busy_now: parse_procmap(req_child(rr, "busy_now")?)?,
    };

    let rr_key = match n.child("rr_key") {
        Some(k) => Some((
            time_attr(k, "now")?,
            parse_run_state(k)?,
            attr_parse(k, "g0")?,
            attr_parse(k, "g1")?,
        )),
        None => None,
    };
    let stats = req_child(n, "rr_stats")?;
    let rr_stats = RrStats {
        queries: attr_parse(stats, "queries")?,
        runs: attr_parse(stats, "runs")?,
        frozen: attr_parse(stats, "frozen")?,
    };

    let dirty = req_child(n, "rr_dirty")?;
    let rr_frozen_until = time_attr(dirty, "frozen_until")?;
    let class_name = req_attr(dirty, "class")?;
    let class = DirtClass::from_name(class_name)
        .ok_or_else(|| CodecError::Field(format!("unknown dirt class {class_name:?}")))?;
    let mut dirty_groups = Vec::new();
    for g in dirty.children_named("group") {
        let pti: usize = attr_parse(g, "pt")?;
        let pt = *ProcType::ALL
            .get(pti)
            .ok_or_else(|| CodecError::Field(format!("bad proc type index {pti}")))?;
        dirty_groups.push((pt, ProjectId(attr_parse(g, "project")?)));
    }
    let rr_dirty = DirtyGroups::from_parts(class, dirty_groups);

    Ok(ClientSnapshot {
        projects,
        tasks,
        finished,
        accounting,
        downloads: parse_xfers(req_child(n, "downloads")?)?,
        uploads: parse_xfers(req_child(n, "uploads")?)?,
        last_advance: time_attr(n, "last_advance")?,
        rpcs_issued: attr_parse(n, "rpcs_issued")?,
        xfer_faults_rng: n.child("xfer_faults").map(|x| rng_attr(x, "rng")).transpose()?,
        xfer_retries,
        state_gen: attr_parse(n, "state_gen")?,
        rr_cache,
        rr_key,
        rr_stats,
        rr_frozen_until,
        rr_dirty,
    })
}

// --- Metrics -----------------------------------------------------------

fn metrics_node(m: &MetricsAccumSnapshot) -> XmlNode {
    let mut n = XmlNode::new("metrics");
    push_f64(&mut n, "capacity_secs", m.capacity_secs);
    push_f64(&mut n, "available_secs", m.available_secs);
    push_f64(&mut n, "wasted_flops", m.wasted_flops);
    push_time(&mut n, "window_end", m.window_end);
    push_f64(&mut n, "monotony_sum", m.monotony_sum);
    n.attrs.push(("monotony_windows".into(), m.monotony_windows.to_string()));
    push_f64(&mut n, "fault_wasted_flops", m.fault_wasted_flops);
    push_f64(&mut n, "recovery_secs_sum", m.recovery_secs_sum);
    for (i, c) in m.counters.iter().enumerate() {
        n.attrs.push((format!("c{i}"), c.to_string()));
    }
    for (id, v) in &m.used {
        let mut u = XmlNode::new("used");
        u.attrs.push(("id".into(), id.0.to_string()));
        push_f64(&mut u, "v", *v);
        n.push(u);
    }
    for (id, v) in &m.window_used {
        let mut u = XmlNode::new("window_used");
        u.attrs.push(("id".into(), id.0.to_string()));
        push_f64(&mut u, "v", *v);
        n.push(u);
    }
    for id in &m.missed_ids {
        let mut u = XmlNode::new("missed");
        u.attrs.push(("job".into(), id.0.to_string()));
        n.push(u);
    }
    n
}

fn parse_metrics(n: &XmlNode) -> Result<MetricsAccumSnapshot, CodecError> {
    let mut counters = [0u64; 8];
    for (i, c) in counters.iter_mut().enumerate() {
        *c = attr_parse(n, &format!("c{i}"))?;
    }
    let mut used = Vec::new();
    for u in n.children_named("used") {
        used.push((ProjectId(attr_parse(u, "id")?), attr_f64_bits(u, "v")?));
    }
    let mut window_used = Vec::new();
    for u in n.children_named("window_used") {
        window_used.push((ProjectId(attr_parse(u, "id")?), attr_f64_bits(u, "v")?));
    }
    let mut missed_ids = Vec::new();
    for u in n.children_named("missed") {
        missed_ids.push(JobId(attr_parse(u, "job")?));
    }
    Ok(MetricsAccumSnapshot {
        capacity_secs: attr_f64_bits(n, "capacity_secs")?,
        available_secs: attr_f64_bits(n, "available_secs")?,
        used,
        wasted_flops: attr_f64_bits(n, "wasted_flops")?,
        window_used,
        window_end: time_attr(n, "window_end")?,
        monotony_sum: attr_f64_bits(n, "monotony_sum")?,
        monotony_windows: attr_parse(n, "monotony_windows")?,
        missed_ids,
        fault_wasted_flops: attr_f64_bits(n, "fault_wasted_flops")?,
        recovery_secs_sum: attr_f64_bits(n, "recovery_secs_sum")?,
        counters,
    })
}

//! Rendering: the ASCII time-line visualization of processor usage
//! (the paper's Figure 2 output) and the textual emulation report.

use crate::emulator::EmulationResult;
use bce_sim::{Occupancy, Timeline};
use bce_types::{SimDuration, SimTime};
use std::fmt::Write as _;

/// Render the timeline as one row per processor instance, one column per
/// time bucket. Busy buckets show the project's letter (`A`, `B`, …,
/// by project id), idle buckets `.`, unavailable buckets `-`; mixed
/// buckets show the plurality occupant in lowercase.
pub fn render_timeline(tl: &Timeline, width: usize) -> String {
    let horizon = tl.horizon();
    if horizon <= SimTime::ZERO || width == 0 {
        return String::new();
    }
    let bucket = SimDuration::from_secs(horizon.secs() / width as f64);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline: {width} buckets x {bucket} ({} total); A..Z = project, . idle, - unavailable",
        SimDuration::from_secs(horizon.secs())
    );
    for track in tl.tracks() {
        let _ = write!(out, "{:>8} |", track.instance.to_string());
        for b in 0..width {
            let t0 = SimTime::from_secs(bucket.secs() * b as f64);
            let t1 = t0 + bucket;
            // Dominant occupancy within the bucket.
            let mut busy_by_project: Vec<(u32, f64)> = Vec::new();
            let mut idle = 0.0;
            let mut unavail = 0.0;
            for seg in track.segments() {
                let lo = seg.start.max(t0);
                let hi = seg.end.min(t1);
                let overlap = (hi - lo).secs();
                if overlap <= 0.0 {
                    continue;
                }
                match seg.occ {
                    Occupancy::Busy { project, .. } => {
                        match busy_by_project.iter_mut().find(|(p, _)| *p == project.0) {
                            Some((_, acc)) => *acc += overlap,
                            None => busy_by_project.push((project.0, overlap)),
                        }
                    }
                    Occupancy::Idle => idle += overlap,
                    Occupancy::Unavailable => unavail += overlap,
                }
            }
            let busy_total: f64 = busy_by_project.iter().map(|(_, v)| v).sum();
            let ch = if busy_total <= 0.0 && idle <= 0.0 && unavail <= 0.0 {
                ' '
            } else if busy_total >= idle && busy_total >= unavail && busy_total > 0.0 {
                let (p, share) = busy_by_project
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .copied()
                    .unwrap();
                let letter = (b'A' + (p % 26) as u8) as char;
                if share >= 0.95 * bucket.secs() {
                    letter
                } else {
                    letter.to_ascii_lowercase()
                }
            } else if idle >= unavail {
                '.'
            } else {
                '-'
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Render the figures of merit and per-project outcomes as an aligned
/// report.
pub fn render_report(r: &EmulationResult) -> String {
    let mut out = String::new();
    let m = &r.merit;
    let _ = writeln!(out, "=== emulation report: {} ({}) ===", r.scenario_name, r.duration);
    let _ = writeln!(out, "figures of merit (0 good, 1 bad):");
    let _ = writeln!(out, "  idle fraction     {:>8.4}", m.idle_fraction);
    let _ = writeln!(out, "  wasted fraction   {:>8.4}", m.wasted_fraction);
    let _ = writeln!(out, "  share violation   {:>8.4}", m.share_violation);
    let _ = writeln!(out, "  monotony          {:>8.4}", m.monotony);
    let _ = writeln!(out, "  RPCs per job      {:>8.3}", m.rpcs_per_job);
    let _ = writeln!(
        out,
        "jobs: {} completed, {} missed deadline, {} unfinished; host available {:.1}%",
        r.jobs_completed,
        r.jobs_missed_deadline,
        r.jobs_unfinished,
        100.0 * r.available_fraction
    );
    if r.faults.any() {
        let fm = &r.faults;
        let _ = writeln!(out, "injected faults:");
        let _ = writeln!(out, "  transient RPC failures {:>8}", fm.transient_rpc_failures);
        let _ = writeln!(out, "  transfer failures      {:>8}", fm.transfer_failures);
        let _ = writeln!(out, "  host crashes           {:>8}", fm.crashes);
        let _ = writeln!(out, "  jobs errored           {:>8}", fm.jobs_errored);
        let _ = writeln!(out, "  fault-wasted fraction  {:>8.4}", fm.fault_wasted_fraction);
        if fm.recoveries > 0 {
            let _ = writeln!(
                out,
                "  mean crash recovery    {:>8} ({} recovered)",
                SimDuration::from_secs(fm.mean_recovery_secs),
                fm.recoveries
            );
        }
    }
    let _ = writeln!(
        out,
        "{:<12} {:>7} {:>7} {:>10} {:>8} {:>8}",
        "project", "share", "used", "jobs", "missed", "RPCs"
    );
    for p in &r.projects {
        let _ = writeln!(
            out,
            "{:<12} {:>6.1}% {:>6.1}% {:>10} {:>8} {:>8}",
            p.name,
            100.0 * p.share_frac,
            100.0 * p.used_frac,
            p.jobs_completed,
            p.jobs_missed_deadline,
            p.rpcs
        );
    }
    out
}

impl std::fmt::Display for EmulationResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&render_report(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_sim::InstanceTrack;
    use bce_types::{InstanceId, JobId, ProcType, ProjectId};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn timeline_renders_letters() {
        let inst = InstanceId { proc_type: ProcType::Cpu, index: 0 };
        let mut tl = Timeline::new([inst]);
        let tr: &mut InstanceTrack = tl.track_mut(inst).unwrap();
        tr.record(t(0.0), t(50.0), Occupancy::Busy { project: ProjectId(0), job: JobId(1) });
        tr.record(t(50.0), t(75.0), Occupancy::Idle);
        tr.record(t(75.0), t(100.0), Occupancy::Unavailable);
        let s = render_timeline(&tl, 4);
        // 4 buckets of 25 s: A, A, ., -
        let row = s.lines().nth(1).unwrap();
        assert!(row.ends_with("AA.-"), "row: {row}");
    }

    #[test]
    fn mixed_bucket_lowercase() {
        let inst = InstanceId { proc_type: ProcType::Cpu, index: 0 };
        let mut tl = Timeline::new([inst]);
        let tr = tl.track_mut(inst).unwrap();
        tr.record(t(0.0), t(60.0), Occupancy::Busy { project: ProjectId(1), job: JobId(1) });
        tr.record(t(60.0), t(100.0), Occupancy::Idle);
        let s = render_timeline(&tl, 1);
        let row = s.lines().nth(1).unwrap();
        assert!(row.ends_with('b'), "row: {row}");
    }

    #[test]
    fn empty_timeline_is_empty_string() {
        let tl = Timeline::new([]);
        assert!(render_timeline(&tl, 10).is_empty());
    }
}

//! The declarative scenario format: `ScenarioSpec`, a versioned JSON
//! document that lowers onto [`ScenarioBuilder`] / [`Scenario::validate`].
//!
//! Design rules (see `docs/SCENARIO_FORMAT.md`):
//!
//! - **Strict**: unknown keys, duplicate keys, wrong types, and documents
//!   nested deeper than [`bce_statefile::MAX_JSON_DEPTH`] are hard typed
//!   errors, never warnings. A file that parses means every byte of it was
//!   understood.
//! - **Deterministic**: canonical output renders finite `f64`s with Rust's
//!   shortest-round-trip formatting (bit-exact by construction) and
//!   non-finite values as `"bits:<16 hex>"` strings, so a parse → print
//!   cycle is a byte-stable golden file and a spec round-trip preserves
//!   `bit_fingerprint`s.
//! - **Same validation as code**: parsing checks structure only; semantic
//!   checks go through the one [`Scenario::validate`] path, so file-defined
//!   scenarios can express exactly what code-defined ones can — no more,
//!   no less.
//!
//! The document also carries an optional `faults` overlay (a
//! [`FaultConfig`]) so unreliable-host scenario families live in the same
//! file format; the emulator keeps faults in [`crate::EmulatorConfig`], so
//! the overlay is returned alongside the scenario rather than inside it.

use crate::builder::ScenarioBuilder;
use crate::scenario::Scenario;
use bce_avail::{AvailSpec, AvailTrace, OnOffSpec};
use bce_client::NetworkModel;
use bce_faults::FaultConfig;
use bce_statefile::json::{self, JsonValue};
use bce_statefile::{fmt_f64_bits, parse_f64_bits, JsonError};
use bce_types::{
    AppClass, AppId, DailyWindow, EstErrorModel, Hardware, InitialJob, Preferences, ProcType,
    ProjectId, ProjectSpec, ResourceUsage, ScenarioErrors, ServerUptime, SimDuration, SimTime,
    SporadicSupply, WorkSupply,
};

/// Value of the required top-level `"format"` key.
pub const FORMAT: &str = "bce-scenario";
/// Newest scenario-spec version this build reads and writes.
pub const VERSION: u32 = 1;

/// A scenario as described by a spec document: the assembled (but not yet
/// validated) [`Scenario`] plus the optional fault overlay.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    scenario: Scenario,
    /// Fault overlay to apply to the run's `EmulatorConfig`.
    pub faults: Option<FaultConfig>,
}

/// Error from [`ScenarioSpec::parse`]. Every variant names the JSON path
/// it occurred at (`scenario`, `scenario.projects[2].apps[0]`, ...).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not well-formed JSON.
    Json(JsonError),
    /// The `"format"` key is missing or names a different format.
    WrongFormat { found: String },
    /// The `"version"` key is missing or not a positive integer.
    BadVersion(String),
    /// The document is from a future format version.
    UnsupportedVersion { found: u32, max: u32 },
    /// A required key is absent.
    Missing { path: String, key: &'static str },
    /// A key this version does not define (strict mode: hard error).
    UnknownKey { path: String, key: String },
    /// A value has the wrong JSON type.
    WrongType { path: String, expected: &'static str, found: &'static str },
    /// A value parsed but is structurally unusable (bad enum tag, bad bit
    /// pattern, out-of-range integer...).
    Invalid { path: String, message: String },
    /// The assembled scenario failed [`Scenario::validate`].
    Validation(ScenarioErrors),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "{e}"),
            SpecError::WrongFormat { found } => {
                write!(f, "not a scenario spec: format {found:?} (expected {FORMAT:?})")
            }
            SpecError::BadVersion(found) => {
                write!(f, "bad version {found:?} (expected a positive integer)")
            }
            SpecError::UnsupportedVersion { found, max } => {
                write!(f, "unsupported spec version {found} (this build reads up to {max})")
            }
            SpecError::Missing { path, key } => write!(f, "{path}: missing required key {key:?}"),
            SpecError::UnknownKey { path, key } => {
                write!(f, "{path}: unknown key {key:?} (unknown keys are errors)")
            }
            SpecError::WrongType { path, expected, found } => {
                write!(f, "{path}: expected {expected}, found {found}")
            }
            SpecError::Invalid { path, message } => write!(f, "{path}: {message}"),
            SpecError::Validation(errs) => write!(f, "{errs}"),
        }
    }
}
impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

impl ScenarioSpec {
    /// Wrap an assembled scenario (no fault overlay).
    pub fn new(scenario: Scenario) -> Self {
        ScenarioSpec { scenario, faults: None }
    }

    /// Snapshot an existing scenario into spec form, e.g. to print it as a
    /// golden file.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        ScenarioSpec::new(scenario.clone())
    }

    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The described scenario, *before* validation.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Validate via the one true path and return the scenario plus the
    /// fault overlay.
    pub fn build(self) -> Result<(Scenario, Option<FaultConfig>), SpecError> {
        let faults = self.faults;
        let scenario =
            ScenarioBuilder::from(self.scenario).build().map_err(SpecError::Validation)?;
        Ok((scenario, faults))
    }

    /// Parse a spec document. Structural errors only; call
    /// [`ScenarioSpec::build`] (or [`Scenario::from_spec`]) to validate.
    pub fn parse(src: &str) -> Result<ScenarioSpec, SpecError> {
        let doc = json::parse(src)?;
        let mut root = Obj::new("scenario", &doc)?;

        match root.take("format") {
            Some(JsonValue::Str(s)) if s == FORMAT => {}
            Some(JsonValue::Str(s)) => return Err(SpecError::WrongFormat { found: s.clone() }),
            Some(v) => return Err(SpecError::WrongFormat { found: v.type_name().to_string() }),
            None => return Err(SpecError::WrongFormat { found: "<missing>".to_string() }),
        }
        match root.take("version") {
            Some(JsonValue::Num(n)) if *n >= 1.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                let v = *n as u32;
                if v > VERSION {
                    return Err(SpecError::UnsupportedVersion { found: v, max: VERSION });
                }
            }
            Some(v) => return Err(SpecError::BadVersion(format!("{v:?}"))),
            None => return Err(SpecError::BadVersion("<missing>".to_string())),
        }

        let name = root.req_str("name")?.to_string();
        let seed = match root.take("seed") {
            Some(v) => read_u64(&root.sub("seed"), v)?,
            None => 0,
        };
        let hardware = read_hardware(&root.sub("hardware"), root.req("hardware")?)?;
        let prefs = match root.take("prefs") {
            Some(v) => read_prefs(&root.sub("prefs"), v)?,
            None => Preferences::default(),
        };
        let projects_v = root.req("projects")?;
        let projects_path = root.sub("projects");
        let projects_arr = as_arr(&projects_path, projects_v)?;
        let mut projects = Vec::with_capacity(projects_arr.len());
        for (i, pv) in projects_arr.iter().enumerate() {
            projects.push(read_project(&format!("{projects_path}[{i}]"), pv)?);
        }
        let avail = match root.take("availability") {
            Some(v) => read_avail(&root.sub("availability"), v)?,
            None => AvailSpec::always_on(),
        };
        let host_trace = match root.take("host_trace") {
            Some(v) => Some(read_trace(&root.sub("host_trace"), v)?),
            None => None,
        };
        let network = match root.take("network") {
            Some(v) => Some(read_network(&root.sub("network"), v)?),
            None => None,
        };
        let faults = match root.take("faults") {
            Some(v) => Some(read_faults(&root.sub("faults"), v)?),
            None => None,
        };
        let initial_queue = match root.take("initial_queue") {
            Some(v) => {
                let path = root.sub("initial_queue");
                let arr = as_arr(&path, v)?;
                let mut q = Vec::with_capacity(arr.len());
                for (i, jv) in arr.iter().enumerate() {
                    q.push(read_initial_job(&format!("{path}[{i}]"), jv)?);
                }
                q
            }
            None => Vec::new(),
        };
        root.reject_unknown()?;

        let mut builder = ScenarioBuilder::new(name, hardware)
            .seed(seed)
            .prefs(prefs)
            .projects(projects)
            .avail(avail)
            .initial_jobs(initial_queue);
        if let Some(t) = host_trace {
            builder = builder.host_trace(t);
        }
        if let Some(n) = network {
            builder = builder.network(n);
        }
        Ok(ScenarioSpec { scenario: builder.build_unchecked(), faults })
    }

    /// Render the canonical JSON document: fixed key order, explicit
    /// defaults, shortest-round-trip numbers, trailing newline. Output is a
    /// fixed point of `parse` ∘ `to_canonical_json`.
    pub fn to_canonical_json(&self) -> String {
        let s = &self.scenario;
        let mut root: Vec<(String, JsonValue)> = vec![
            ("format".into(), JsonValue::Str(FORMAT.into())),
            ("version".into(), JsonValue::Num(VERSION as f64)),
            ("name".into(), JsonValue::Str(s.name.clone())),
            ("seed".into(), write_u64(s.seed)),
            ("hardware".into(), write_hardware(&s.hardware)),
            ("prefs".into(), write_prefs(&s.prefs)),
            ("projects".into(), JsonValue::Arr(s.projects.iter().map(write_project).collect())),
            ("availability".into(), write_avail(&s.avail)),
        ];
        if let Some(t) = &s.host_trace {
            root.push(("host_trace".into(), write_trace(t)));
        }
        if let Some(n) = &s.network {
            root.push((
                "network".into(),
                obj([("down_bps", num(n.down_bps)), ("up_bps", num(n.up_bps))]),
            ));
        }
        if let Some(fc) = &self.faults {
            let mut fv = vec![
                ("rpc_fail_prob".to_string(), num(fc.rpc_fail_prob)),
                ("transfer_fail_prob".to_string(), num(fc.transfer_fail_prob)),
            ];
            if let Some(mtbf) = fc.crash_mtbf {
                fv.push(("crash_mtbf_s".to_string(), num(mtbf.secs())));
            }
            root.push(("faults".into(), JsonValue::Obj(fv)));
        }
        if !s.initial_queue.is_empty() {
            root.push((
                "initial_queue".into(),
                JsonValue::Arr(
                    s.initial_queue
                        .iter()
                        .map(|ij| {
                            obj([
                                ("project", JsonValue::Num(ij.project.0 as f64)),
                                ("app", JsonValue::Num(ij.app.0 as f64)),
                                ("received_ago_s", num(ij.received_ago.secs())),
                                ("progress_s", num(ij.progress.secs())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        JsonValue::Obj(root).render()
    }
}

impl Scenario {
    /// Validate a parsed spec and return the scenario, discarding any fault
    /// overlay. The declarative counterpart of [`ScenarioBuilder::build`].
    pub fn from_spec(spec: ScenarioSpec) -> Result<Scenario, ScenarioErrors> {
        ScenarioBuilder::from(spec.scenario).build()
    }
}

// ---------------------------------------------------------------------------
// Encoding helpers
// ---------------------------------------------------------------------------

/// Encode an `f64`: JSON number when finite (shortest-round-trip printing
/// is bit-exact), `"bits:<16 hex>"` otherwise.
fn num(x: f64) -> JsonValue {
    if x.is_finite() {
        JsonValue::Num(x)
    } else {
        JsonValue::Str(format!("bits:{}", fmt_f64_bits(x)))
    }
}

fn obj<const N: usize>(entries: [(&str, JsonValue); N]) -> JsonValue {
    JsonValue::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Encode a `u64`: JSON number when exactly representable in an `f64`
/// (≤ 2^53), decimal string otherwise.
fn write_u64(x: u64) -> JsonValue {
    if x <= (1u64 << 53) {
        JsonValue::Num(x as f64)
    } else {
        JsonValue::Str(x.to_string())
    }
}

fn proc_key(t: ProcType) -> &'static str {
    match t {
        ProcType::Cpu => "cpu",
        ProcType::NvidiaGpu => "nvidia_gpu",
        ProcType::AtiGpu => "ati_gpu",
    }
}

fn write_hardware(hw: &Hardware) -> JsonValue {
    let mut entries = Vec::new();
    for t in ProcType::ALL {
        if hw.ninstances(t) > 0 {
            entries.push((
                proc_key(t).to_string(),
                obj([
                    ("count", JsonValue::Num(hw.ninstances(t) as f64)),
                    ("flops_per_inst", num(hw.flops_per_inst(t))),
                ]),
            ));
        }
    }
    entries.push(("mem_bytes".to_string(), num(hw.mem_bytes)));
    entries.push(("vram_bytes".to_string(), num(hw.vram_bytes)));
    JsonValue::Obj(entries)
}

fn write_window(w: &DailyWindow) -> JsonValue {
    obj([("start_sec", num(w.start_sec)), ("end_sec", num(w.end_sec))])
}

fn write_prefs(p: &Preferences) -> JsonValue {
    let mut entries = vec![
        ("work_buf_min_s".to_string(), num(p.work_buf_min.secs())),
        ("work_buf_extra_s".to_string(), num(p.work_buf_extra.secs())),
        ("run_if_user_active".to_string(), JsonValue::Bool(p.run_if_user_active)),
        ("gpu_if_user_active".to_string(), JsonValue::Bool(p.gpu_if_user_active)),
        ("max_ncpus_frac".to_string(), num(p.max_ncpus_frac)),
        ("ram_max_frac_busy".to_string(), num(p.ram_max_frac_busy)),
        ("ram_max_frac_idle".to_string(), num(p.ram_max_frac_idle)),
    ];
    if let Some(w) = &p.compute_window {
        entries.push(("compute_window".to_string(), write_window(w)));
    }
    if let Some(w) = &p.gpu_window {
        entries.push(("gpu_window".to_string(), write_window(w)));
    }
    entries.push(("leave_apps_in_memory".to_string(), JsonValue::Bool(p.leave_apps_in_memory)));
    JsonValue::Obj(entries)
}

fn write_est_error(e: &EstErrorModel) -> JsonValue {
    match e {
        EstErrorModel::Exact => obj([("kind", JsonValue::Str("exact".into()))]),
        EstErrorModel::Systematic { factor } => {
            obj([("kind", JsonValue::Str("systematic".into())), ("factor", num(*factor))])
        }
        EstErrorModel::LogNormal { sigma } => {
            obj([("kind", JsonValue::Str("log_normal".into())), ("sigma", num(*sigma))])
        }
    }
}

fn write_app(a: &AppClass) -> JsonValue {
    let mut entries = vec![
        ("id".to_string(), JsonValue::Num(a.id.0 as f64)),
        ("name".to_string(), JsonValue::Str(a.name.clone())),
        ("proc".to_string(), JsonValue::Str(proc_key(a.usage.main_proc_type()).into())),
    ];
    if let Some((_, ninst)) = a.usage.coproc {
        entries.push(("gpu_instances".to_string(), num(ninst)));
    }
    entries.push(("avg_cpus".to_string(), num(a.usage.avg_cpus)));
    entries.push(("runtime_mean_s".to_string(), num(a.runtime_mean.secs())));
    entries.push(("runtime_cv".to_string(), num(a.runtime_cv)));
    entries.push(("est_error".to_string(), write_est_error(&a.est_error)));
    entries.push(("latency_bound_s".to_string(), num(a.latency_bound.secs())));
    entries.push((
        "checkpoint_s".to_string(),
        match a.checkpoint_period {
            Some(d) => num(d.secs()),
            None => JsonValue::Null,
        },
    ));
    entries.push(("working_set_bytes".to_string(), num(a.working_set_bytes)));
    entries.push(("input_bytes".to_string(), num(a.input_bytes)));
    entries.push(("output_bytes".to_string(), num(a.output_bytes)));
    entries.push(("weight".to_string(), num(a.weight)));
    if let Some(sp) = &a.supply {
        entries.push((
            "supply".to_string(),
            obj([
                ("work_mean_s", num(sp.work_mean.secs())),
                ("dry_mean_s", num(sp.dry_mean.secs())),
            ]),
        ));
    }
    JsonValue::Obj(entries)
}

fn write_project(p: &ProjectSpec) -> JsonValue {
    let supply = match p.supply {
        WorkSupply::Unlimited => obj([("kind", JsonValue::Str("unlimited".into()))]),
        WorkSupply::Sporadic { work_mean, dry_mean } => obj([
            ("kind", JsonValue::Str("sporadic".into())),
            ("work_mean_s", num(work_mean.secs())),
            ("dry_mean_s", num(dry_mean.secs())),
        ]),
        WorkSupply::Batch { njobs } => {
            obj([("kind", JsonValue::Str("batch".into())), ("njobs", write_u64(njobs))])
        }
    };
    let uptime = match p.uptime {
        ServerUptime::AlwaysUp => obj([("kind", JsonValue::Str("always_up".into()))]),
        ServerUptime::Sporadic { up_mean, down_mean } => obj([
            ("kind", JsonValue::Str("sporadic".into())),
            ("up_mean_s", num(up_mean.secs())),
            ("down_mean_s", num(down_mean.secs())),
        ]),
    };
    obj([
        ("id", JsonValue::Num(p.id.0 as f64)),
        ("name", JsonValue::Str(p.name.clone())),
        ("resource_share", num(p.resource_share)),
        ("supply", supply),
        ("uptime", uptime),
        ("apps", JsonValue::Arr(p.apps.iter().map(write_app).collect())),
    ])
}

fn write_onoff(s: &OnOffSpec) -> JsonValue {
    match s {
        OnOffSpec::AlwaysOn => obj([("kind", JsonValue::Str("always_on".into()))]),
        OnOffSpec::AlwaysOff => obj([("kind", JsonValue::Str("always_off".into()))]),
        OnOffSpec::Exponential { up_mean, down_mean, start_on } => obj([
            ("kind", JsonValue::Str("exponential".into())),
            ("up_mean_s", num(up_mean.secs())),
            ("down_mean_s", num(down_mean.secs())),
            ("start_on", JsonValue::Bool(*start_on)),
        ]),
    }
}

fn write_avail(a: &AvailSpec) -> JsonValue {
    obj([
        ("host", write_onoff(&a.host)),
        ("user_active", write_onoff(&a.user_active)),
        ("network", write_onoff(&a.network)),
    ])
}

fn write_trace(t: &AvailTrace) -> JsonValue {
    obj([
        ("initial", JsonValue::Bool(t.initial())),
        (
            "transitions",
            JsonValue::Arr(
                t.transitions()
                    .iter()
                    .map(|(tt, s)| JsonValue::Arr(vec![num(tt.secs()), JsonValue::Bool(*s)]))
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Decoding helpers
// ---------------------------------------------------------------------------

/// An object reader that tracks which keys were consumed, so anything left
/// over is reported as an [`SpecError::UnknownKey`].
struct Obj<'a> {
    path: String,
    entries: &'a [(String, JsonValue)],
    taken: Vec<bool>,
}

impl<'a> Obj<'a> {
    fn new(path: impl Into<String>, v: &'a JsonValue) -> Result<Self, SpecError> {
        let path = path.into();
        match v {
            JsonValue::Obj(entries) => Ok(Obj { path, taken: vec![false; entries.len()], entries }),
            other => {
                Err(SpecError::WrongType { path, expected: "object", found: other.type_name() })
            }
        }
    }

    fn sub(&self, key: &str) -> String {
        format!("{}.{key}", self.path)
    }

    fn take(&mut self, key: &str) -> Option<&'a JsonValue> {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if k == key {
                self.taken[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn req(&mut self, key: &'static str) -> Result<&'a JsonValue, SpecError> {
        self.take(key).ok_or_else(|| SpecError::Missing { path: self.path.clone(), key })
    }

    fn req_str(&mut self, key: &'static str) -> Result<&'a str, SpecError> {
        let path = self.sub(key);
        as_str(&path, self.req(key)?)
    }

    fn f64_or(&mut self, key: &str, default: f64) -> Result<f64, SpecError> {
        match self.take(key) {
            Some(v) => read_f64(&self.sub(key), v),
            None => Ok(default),
        }
    }

    fn dur_or(&mut self, key: &str, default_secs: f64) -> Result<SimDuration, SpecError> {
        Ok(SimDuration::from_secs(self.f64_or(key, default_secs)?))
    }

    fn req_f64(&mut self, key: &'static str) -> Result<f64, SpecError> {
        let path = self.sub(key);
        read_f64(&path, self.req(key)?)
    }

    fn req_dur(&mut self, key: &'static str) -> Result<SimDuration, SpecError> {
        Ok(SimDuration::from_secs(self.req_f64(key)?))
    }

    fn bool_or(&mut self, key: &str, default: bool) -> Result<bool, SpecError> {
        match self.take(key) {
            Some(v) => as_bool(&self.sub(key), v),
            None => Ok(default),
        }
    }

    fn req_u32(&mut self, key: &'static str) -> Result<u32, SpecError> {
        let path = self.sub(key);
        read_u32(&path, self.req(key)?)
    }

    fn reject_unknown(&self) -> Result<(), SpecError> {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !self.taken[i] {
                return Err(SpecError::UnknownKey { path: self.path.clone(), key: k.clone() });
            }
        }
        Ok(())
    }
}

fn as_str<'a>(path: &str, v: &'a JsonValue) -> Result<&'a str, SpecError> {
    v.as_str().ok_or_else(|| SpecError::WrongType {
        path: path.to_string(),
        expected: "string",
        found: v.type_name(),
    })
}

fn as_bool(path: &str, v: &JsonValue) -> Result<bool, SpecError> {
    v.as_bool().ok_or_else(|| SpecError::WrongType {
        path: path.to_string(),
        expected: "bool",
        found: v.type_name(),
    })
}

fn as_arr<'a>(path: &str, v: &'a JsonValue) -> Result<&'a [JsonValue], SpecError> {
    v.as_arr().ok_or_else(|| SpecError::WrongType {
        path: path.to_string(),
        expected: "array",
        found: v.type_name(),
    })
}

/// Read an f64 as either a JSON number or a `"bits:<16 hex>"` string.
fn read_f64(path: &str, v: &JsonValue) -> Result<f64, SpecError> {
    match v {
        JsonValue::Num(n) => Ok(*n),
        JsonValue::Str(s) => match s.strip_prefix("bits:") {
            Some(hex) => parse_f64_bits(hex).map_err(|_| SpecError::Invalid {
                path: path.to_string(),
                message: format!("bad f64 bit pattern {hex:?}"),
            }),
            None => Err(SpecError::WrongType {
                path: path.to_string(),
                expected: "number or \"bits:<16 hex>\"",
                found: "string",
            }),
        },
        other => Err(SpecError::WrongType {
            path: path.to_string(),
            expected: "number or \"bits:<16 hex>\"",
            found: other.type_name(),
        }),
    }
}

fn read_u64(path: &str, v: &JsonValue) -> Result<u64, SpecError> {
    let bad = |message: String| SpecError::Invalid { path: path.to_string(), message };
    match v {
        JsonValue::Num(n) => {
            if *n < 0.0 || n.fract() != 0.0 || *n > (1u64 << 53) as f64 {
                Err(bad(format!("{n} is not an unsigned integer ≤ 2^53 (use a decimal string)")))
            } else {
                Ok(*n as u64)
            }
        }
        JsonValue::Str(s) => {
            s.parse::<u64>().map_err(|_| bad(format!("bad unsigned integer {s:?}")))
        }
        other => Err(SpecError::WrongType {
            path: path.to_string(),
            expected: "unsigned integer (number or decimal string)",
            found: other.type_name(),
        }),
    }
}

fn read_u32(path: &str, v: &JsonValue) -> Result<u32, SpecError> {
    let x = read_u64(path, v)?;
    u32::try_from(x).map_err(|_| SpecError::Invalid {
        path: path.to_string(),
        message: format!("{x} does not fit in 32 bits"),
    })
}

fn read_proc(path: &str, v: &JsonValue) -> Result<ProcType, SpecError> {
    match as_str(path, v)? {
        "cpu" => Ok(ProcType::Cpu),
        "nvidia_gpu" => Ok(ProcType::NvidiaGpu),
        "ati_gpu" => Ok(ProcType::AtiGpu),
        other => Err(SpecError::Invalid {
            path: path.to_string(),
            message: format!("unknown processor type {other:?} (cpu | nvidia_gpu | ati_gpu)"),
        }),
    }
}

fn read_hardware(path: &str, v: &JsonValue) -> Result<Hardware, SpecError> {
    let mut o = Obj::new(path, v)?;
    let mut hw = Hardware::cpu_only(0, 0.0);
    for t in ProcType::ALL {
        let (count, flops) = match o.take(proc_key(t)) {
            Some(gv) => {
                let mut g = Obj::new(o.sub(proc_key(t)), gv)?;
                let count = g.req_u32("count")?;
                let flops = g.req_f64("flops_per_inst")?;
                g.reject_unknown()?;
                (count, flops)
            }
            None => (0, 0.0),
        };
        hw = hw.with_group(t, count, flops);
    }
    hw = hw.with_mem(o.f64_or("mem_bytes", 8e9)?).with_vram(o.f64_or("vram_bytes", 0.0)?);
    o.reject_unknown()?;
    Ok(hw)
}

fn read_window(path: &str, v: &JsonValue) -> Result<DailyWindow, SpecError> {
    let mut o = Obj::new(path, v)?;
    let w = DailyWindow { start_sec: o.req_f64("start_sec")?, end_sec: o.req_f64("end_sec")? };
    o.reject_unknown()?;
    Ok(w)
}

fn read_prefs(path: &str, v: &JsonValue) -> Result<Preferences, SpecError> {
    let mut o = Obj::new(path, v)?;
    let d = Preferences::default();
    let p = Preferences {
        work_buf_min: o.dur_or("work_buf_min_s", d.work_buf_min.secs())?,
        work_buf_extra: o.dur_or("work_buf_extra_s", d.work_buf_extra.secs())?,
        run_if_user_active: o.bool_or("run_if_user_active", d.run_if_user_active)?,
        gpu_if_user_active: o.bool_or("gpu_if_user_active", d.gpu_if_user_active)?,
        max_ncpus_frac: o.f64_or("max_ncpus_frac", d.max_ncpus_frac)?,
        ram_max_frac_busy: o.f64_or("ram_max_frac_busy", d.ram_max_frac_busy)?,
        ram_max_frac_idle: o.f64_or("ram_max_frac_idle", d.ram_max_frac_idle)?,
        compute_window: match o.take("compute_window") {
            Some(wv) => Some(read_window(&o.sub("compute_window"), wv)?),
            None => None,
        },
        gpu_window: match o.take("gpu_window") {
            Some(wv) => Some(read_window(&o.sub("gpu_window"), wv)?),
            None => None,
        },
        leave_apps_in_memory: o.bool_or("leave_apps_in_memory", d.leave_apps_in_memory)?,
    };
    o.reject_unknown()?;
    Ok(p)
}

fn read_est_error(path: &str, v: &JsonValue) -> Result<EstErrorModel, SpecError> {
    let mut o = Obj::new(path, v)?;
    let kind = o.req_str("kind")?.to_string();
    let e = match kind.as_str() {
        "exact" => EstErrorModel::Exact,
        "systematic" => EstErrorModel::Systematic { factor: o.req_f64("factor")? },
        "log_normal" => EstErrorModel::LogNormal { sigma: o.req_f64("sigma")? },
        other => {
            return Err(SpecError::Invalid {
                path: path.to_string(),
                message: format!(
                    "unknown est_error kind {other:?} (exact | systematic | log_normal)"
                ),
            })
        }
    };
    o.reject_unknown()?;
    Ok(e)
}

fn read_app(path: &str, v: &JsonValue) -> Result<AppClass, SpecError> {
    let mut o = Obj::new(path, v)?;
    let id = o.req_u32("id")?;
    let proc = match o.take("proc") {
        Some(pv) => read_proc(&o.sub("proc"), pv)?,
        None => ProcType::Cpu,
    };
    let default_name = if proc.is_gpu() { format!("gpu_app{id}") } else { format!("app{id}") };
    let name = match o.take("name") {
        Some(nv) => as_str(&o.sub("name"), nv)?.to_string(),
        None => default_name,
    };
    let gpu_instances = o.take("gpu_instances");
    let usage = if proc.is_gpu() {
        let ninst = match gpu_instances {
            Some(gv) => read_f64(&o.sub("gpu_instances"), gv)?,
            None => 1.0,
        };
        ResourceUsage { avg_cpus: o.f64_or("avg_cpus", 0.05)?, coproc: Some((proc, ninst)) }
    } else {
        if gpu_instances.is_some() {
            return Err(SpecError::Invalid {
                path: path.to_string(),
                message: "gpu_instances requires a GPU \"proc\"".to_string(),
            });
        }
        ResourceUsage { avg_cpus: o.f64_or("avg_cpus", 1.0)?, coproc: None }
    };
    let app = AppClass {
        id: AppId(id),
        name,
        usage,
        runtime_mean: o.req_dur("runtime_mean_s")?,
        runtime_cv: o.f64_or("runtime_cv", 0.05)?,
        est_error: match o.take("est_error") {
            Some(ev) => read_est_error(&o.sub("est_error"), ev)?,
            None => EstErrorModel::Exact,
        },
        latency_bound: o.req_dur("latency_bound_s")?,
        checkpoint_period: match o.take("checkpoint_s") {
            Some(JsonValue::Null) => None,
            Some(cv) => Some(SimDuration::from_secs(read_f64(&o.sub("checkpoint_s"), cv)?)),
            None => Some(SimDuration::from_secs(60.0)),
        },
        working_set_bytes: o.f64_or("working_set_bytes", 1e8)?,
        input_bytes: o.f64_or("input_bytes", 0.0)?,
        output_bytes: o.f64_or("output_bytes", 0.0)?,
        weight: o.f64_or("weight", 1.0)?,
        supply: match o.take("supply") {
            Some(sv) => {
                let mut so = Obj::new(o.sub("supply"), sv)?;
                let sp = SporadicSupply {
                    work_mean: so.req_dur("work_mean_s")?,
                    dry_mean: so.req_dur("dry_mean_s")?,
                };
                so.reject_unknown()?;
                Some(sp)
            }
            None => None,
        },
    };
    o.reject_unknown()?;
    Ok(app)
}

fn read_project(path: &str, v: &JsonValue) -> Result<ProjectSpec, SpecError> {
    let mut o = Obj::new(path, v)?;
    let id = o.req_u32("id")?;
    let name = match o.take("name") {
        Some(nv) => as_str(&o.sub("name"), nv)?.to_string(),
        None => format!("project{id}"),
    };
    let resource_share = o.req_f64("resource_share")?;
    let supply = match o.take("supply") {
        Some(sv) => {
            let spath = o.sub("supply");
            let mut so = Obj::new(spath.clone(), sv)?;
            let kind = so.req_str("kind")?.to_string();
            let s = match kind.as_str() {
                "unlimited" => WorkSupply::Unlimited,
                "sporadic" => WorkSupply::Sporadic {
                    work_mean: so.req_dur("work_mean_s")?,
                    dry_mean: so.req_dur("dry_mean_s")?,
                },
                "batch" => {
                    WorkSupply::Batch { njobs: read_u64(&so.sub("njobs"), so.req("njobs")?)? }
                }
                other => {
                    return Err(SpecError::Invalid {
                        path: spath,
                        message: format!(
                            "unknown supply kind {other:?} (unlimited | sporadic | batch)"
                        ),
                    })
                }
            };
            so.reject_unknown()?;
            s
        }
        None => WorkSupply::Unlimited,
    };
    let uptime = match o.take("uptime") {
        Some(uv) => {
            let upath = o.sub("uptime");
            let mut uo = Obj::new(upath.clone(), uv)?;
            let kind = uo.req_str("kind")?.to_string();
            let u = match kind.as_str() {
                "always_up" => ServerUptime::AlwaysUp,
                "sporadic" => ServerUptime::Sporadic {
                    up_mean: uo.req_dur("up_mean_s")?,
                    down_mean: uo.req_dur("down_mean_s")?,
                },
                other => {
                    return Err(SpecError::Invalid {
                        path: upath,
                        message: format!("unknown uptime kind {other:?} (always_up | sporadic)"),
                    })
                }
            };
            uo.reject_unknown()?;
            u
        }
        None => ServerUptime::AlwaysUp,
    };
    let apps_v = o.req("apps")?;
    let apps_path = o.sub("apps");
    let apps_arr = as_arr(&apps_path, apps_v)?;
    let mut apps = Vec::with_capacity(apps_arr.len());
    for (i, av) in apps_arr.iter().enumerate() {
        apps.push(read_app(&format!("{apps_path}[{i}]"), av)?);
    }
    o.reject_unknown()?;
    Ok(ProjectSpec { id: ProjectId(id), name, resource_share, apps, supply, uptime })
}

fn read_onoff(path: &str, v: &JsonValue) -> Result<OnOffSpec, SpecError> {
    let mut o = Obj::new(path, v)?;
    let kind = o.req_str("kind")?.to_string();
    let s = match kind.as_str() {
        "always_on" => OnOffSpec::AlwaysOn,
        "always_off" => OnOffSpec::AlwaysOff,
        "exponential" => OnOffSpec::Exponential {
            up_mean: o.req_dur("up_mean_s")?,
            down_mean: o.req_dur("down_mean_s")?,
            start_on: o.bool_or("start_on", true)?,
        },
        // Decode-only sugar; canonical output writes the lowered form.
        "duty_cycle" => {
            let frac = o.req_f64("on_fraction")?;
            let cycle = o.req_dur("cycle_s")?;
            if !(0.0..=1.0).contains(&frac) {
                return Err(SpecError::Invalid {
                    path: path.to_string(),
                    message: format!("on_fraction {frac} outside [0, 1]"),
                });
            }
            OnOffSpec::duty_cycle(frac, cycle)
        }
        other => {
            return Err(SpecError::Invalid {
                path: path.to_string(),
                message: format!(
                    "unknown kind {other:?} (always_on | always_off | exponential | duty_cycle)"
                ),
            })
        }
    };
    o.reject_unknown()?;
    Ok(s)
}

fn read_avail(path: &str, v: &JsonValue) -> Result<AvailSpec, SpecError> {
    let mut o = Obj::new(path, v)?;
    let d = AvailSpec::always_on();
    let a = AvailSpec {
        host: match o.take("host") {
            Some(hv) => read_onoff(&o.sub("host"), hv)?,
            None => d.host,
        },
        user_active: match o.take("user_active") {
            Some(uv) => read_onoff(&o.sub("user_active"), uv)?,
            None => d.user_active,
        },
        network: match o.take("network") {
            Some(nv) => read_onoff(&o.sub("network"), nv)?,
            None => d.network,
        },
    };
    o.reject_unknown()?;
    Ok(a)
}

fn read_trace(path: &str, v: &JsonValue) -> Result<AvailTrace, SpecError> {
    let mut o = Obj::new(path, v)?;
    let initial = o.bool_or("initial", true)?;
    let trans_v = o.req("transitions")?;
    let tpath = o.sub("transitions");
    let arr = as_arr(&tpath, trans_v)?;
    let mut transitions = Vec::with_capacity(arr.len());
    let mut last = f64::NEG_INFINITY;
    for (i, tv) in arr.iter().enumerate() {
        let ipath = format!("{tpath}[{i}]");
        let pair = as_arr(&ipath, tv)?;
        if pair.len() != 2 {
            return Err(SpecError::Invalid {
                path: ipath,
                message: format!("expected [time_s, state] pair, found {} items", pair.len()),
            });
        }
        let t = read_f64(&format!("{ipath}[0]"), &pair[0])?;
        let s = as_bool(&format!("{ipath}[1]"), &pair[1])?;
        if t < last {
            return Err(SpecError::Invalid {
                path: ipath,
                message: "transition times must be non-decreasing".to_string(),
            });
        }
        last = t;
        transitions.push((SimTime::from_secs(t), s));
    }
    o.reject_unknown()?;
    Ok(AvailTrace::new(initial, transitions))
}

fn read_network(path: &str, v: &JsonValue) -> Result<NetworkModel, SpecError> {
    let mut o = Obj::new(path, v)?;
    let n = NetworkModel { down_bps: o.req_f64("down_bps")?, up_bps: o.req_f64("up_bps")? };
    o.reject_unknown()?;
    Ok(n)
}

fn read_faults(path: &str, v: &JsonValue) -> Result<FaultConfig, SpecError> {
    let mut o = Obj::new(path, v)?;
    let fc = FaultConfig {
        rpc_fail_prob: o.f64_or("rpc_fail_prob", 0.0)?,
        transfer_fail_prob: o.f64_or("transfer_fail_prob", 0.0)?,
        crash_mtbf: match o.take("crash_mtbf_s") {
            Some(JsonValue::Null) | None => None,
            Some(cv) => Some(SimDuration::from_secs(read_f64(&o.sub("crash_mtbf_s"), cv)?)),
        },
        ..FaultConfig::OFF
    };
    for (key, prob) in
        [("rpc_fail_prob", fc.rpc_fail_prob), ("transfer_fail_prob", fc.transfer_fail_prob)]
    {
        if !(0.0..=1.0).contains(&prob) {
            return Err(SpecError::Invalid {
                path: o.sub(key),
                message: format!("probability {prob} outside [0, 1]"),
            });
        }
    }
    o.reject_unknown()?;
    Ok(fc)
}

fn read_initial_job(path: &str, v: &JsonValue) -> Result<InitialJob, SpecError> {
    let mut o = Obj::new(path, v)?;
    let ij = InitialJob {
        project: ProjectId(o.req_u32("project")?),
        app: AppId(o.req_u32("app")?),
        received_ago: o.req_dur("received_ago_s")?,
        progress: o.dur_or("progress_s", 0.0)?,
    };
    o.reject_unknown()?;
    Ok(ij)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::Preferences;

    /// A scenario exercising every optional feature of the format.
    fn kitchen_sink() -> Scenario {
        ScenarioBuilder::new(
            "sink",
            Hardware::cpu_only(4, 2.5e9)
                .with_group(ProcType::NvidiaGpu, 1, 1e10)
                .with_mem(16e9)
                .with_vram(2e9),
        )
        .seed(42)
        .prefs(Preferences {
            work_buf_min: SimDuration::from_secs(600.0),
            compute_window: Some(DailyWindow::new(9.0, 17.0)),
            gpu_window: Some(DailyWindow::new(22.0, 6.0)),
            leave_apps_in_memory: true,
            ..Preferences::default()
        })
        .project(
            ProjectSpec::new(0, "alpha", 100.0)
                .with_app(
                    AppClass::cpu(0, SimDuration::from_secs(900.0), SimDuration::from_hours(6.0))
                        .with_cv(0.1)
                        .with_est_error(EstErrorModel::LogNormal { sigma: 0.3 })
                        .with_files(1e6, 2e6)
                        .with_supply(SimDuration::from_hours(4.0), SimDuration::from_hours(1.0)),
                )
                .with_supply(WorkSupply::Sporadic {
                    work_mean: SimDuration::from_hours(20.0),
                    dry_mean: SimDuration::from_hours(4.0),
                })
                .with_uptime(ServerUptime::Sporadic {
                    up_mean: SimDuration::from_hours(100.0),
                    down_mean: SimDuration::from_hours(2.0),
                }),
        )
        .project(
            ProjectSpec::new(1, "beta", 300.0)
                .with_app(
                    AppClass::gpu(
                        1,
                        ProcType::NvidiaGpu,
                        SimDuration::from_secs(300.0),
                        SimDuration::from_hours(12.0),
                    )
                    .with_checkpoint(None)
                    .with_weight(2.0)
                    .with_est_error(EstErrorModel::Systematic { factor: 1.5 }),
                )
                .with_supply(WorkSupply::Batch { njobs: 500 }),
        )
        .avail(AvailSpec {
            host: OnOffSpec::duty_cycle(0.8, SimDuration::from_hours(8.0)),
            user_active: OnOffSpec::Exponential {
                up_mean: SimDuration::from_hours(2.0),
                down_mean: SimDuration::from_hours(6.0),
                start_on: false,
            },
            network: OnOffSpec::AlwaysOn,
        })
        .host_trace(AvailTrace::new(
            true,
            vec![(SimTime::from_secs(100.0), false), (SimTime::from_secs(350.5), true)],
        ))
        .network(NetworkModel { down_bps: 1e7, up_bps: 1e6 })
        .initial_job(InitialJob {
            project: ProjectId(0),
            app: AppId(0),
            received_ago: SimDuration::from_secs(120.0),
            progress: SimDuration::from_secs(30.0),
        })
        .build()
        .expect("kitchen sink is valid")
    }

    fn roundtrip(spec: &ScenarioSpec) -> ScenarioSpec {
        ScenarioSpec::parse(&spec.to_canonical_json()).expect("canonical output reparses")
    }

    #[test]
    fn kitchen_sink_roundtrips() {
        let spec = ScenarioSpec::from_scenario(&kitchen_sink()).with_faults(FaultConfig {
            rpc_fail_prob: 0.01,
            transfer_fail_prob: 0.02,
            crash_mtbf: Some(SimDuration::from_days(3.0)),
            ..FaultConfig::OFF
        });
        let back = roundtrip(&spec);
        // Canonical form is a fixed point...
        assert_eq!(back.to_canonical_json(), spec.to_canonical_json());
        // ...and every component is value-identical.
        let (a, b) = (spec.scenario(), back.scenario());
        assert_eq!(a.name, b.name);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.hardware, b.hardware);
        assert_eq!(a.prefs, b.prefs);
        assert_eq!(a.projects, b.projects);
        assert_eq!(a.avail, b.avail);
        assert_eq!(a.host_trace, b.host_trace);
        assert_eq!(a.network, b.network);
        assert_eq!(a.initial_queue, b.initial_queue);
        assert_eq!(spec.faults, back.faults);
    }

    #[test]
    fn nonfinite_f64s_transport_as_bits() {
        let mut s = kitchen_sink();
        s.projects[0].resource_share = f64::INFINITY;
        s.hardware = s.hardware.with_mem(f64::NAN);
        let spec = ScenarioSpec::from_scenario(&s);
        let text = spec.to_canonical_json();
        assert!(text.contains("\"bits:7ff0000000000000\""), "{text}");
        let back = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(back.scenario().projects[0].resource_share, f64::INFINITY);
        assert!(back.scenario().hardware.mem_bytes.is_nan());
        assert_eq!(back.scenario().hardware.mem_bytes.to_bits(), s.hardware.mem_bytes.to_bits());
    }

    #[test]
    fn large_seed_roundtrips_via_string() {
        let mut s = kitchen_sink();
        s.seed = u64::MAX - 7;
        let spec = ScenarioSpec::from_scenario(&s);
        let back = roundtrip(&spec);
        assert_eq!(back.scenario().seed, u64::MAX - 7);
    }

    fn minimal_doc() -> String {
        r#"{
  "format": "bce-scenario",
  "version": 1,
  "name": "mini",
  "hardware": {"cpu": {"count": 1, "flops_per_inst": 1e9}},
  "projects": [
    {"id": 0, "resource_share": 100,
     "apps": [{"id": 0, "runtime_mean_s": 1000, "latency_bound_s": 86400}]}
  ]
}"#
        .to_string()
    }

    #[test]
    fn minimal_doc_gets_documented_defaults() {
        let spec = ScenarioSpec::parse(&minimal_doc()).unwrap();
        let (s, faults) = spec.build().unwrap();
        assert_eq!(s.seed, 0);
        assert_eq!(s.prefs, Preferences::default());
        assert_eq!(s.avail, AvailSpec::always_on());
        assert_eq!(s.projects[0].name, "project0");
        let app = &s.projects[0].apps[0];
        assert_eq!(app.name, "app0");
        assert_eq!(app.runtime_cv, 0.05);
        assert_eq!(app.checkpoint_period, Some(SimDuration::from_secs(60.0)));
        assert_eq!(faults, None);
    }

    #[test]
    fn unknown_keys_are_hard_errors_at_every_level() {
        for (inject, needle) in [
            ("\"name\": \"mini\",", "\"name\": \"mini\", \"surprise\": 1,"),
            ("\"count\": 1,", "\"count\": 1, \"ghz\": 3,"),
            ("\"id\": 0, \"resource_share\"", "\"id\": 0, \"color\": \"red\", \"resource_share\""),
            ("{\"id\": 0, \"runtime_mean_s\"", "{\"id\": 0, \"runtime\": 5, \"runtime_mean_s\""),
        ] {
            let doc = minimal_doc().replace(inject, needle);
            assert_ne!(doc, minimal_doc(), "injection must apply");
            let err = ScenarioSpec::parse(&doc).unwrap_err();
            assert!(
                matches!(err, SpecError::UnknownKey { .. }),
                "expected UnknownKey, got {err:?}"
            );
        }
    }

    #[test]
    fn unknown_key_error_names_the_path() {
        let doc = minimal_doc()
            .replace("\"runtime_mean_s\": 1000,", "\"runtime_mean_s\": 1000, \"nope\": 1,");
        let err = ScenarioSpec::parse(&doc).unwrap_err();
        match err {
            SpecError::UnknownKey { path, key } => {
                assert_eq!(path, "scenario.projects[0].apps[0]");
                assert_eq!(key, "nope");
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
    }

    #[test]
    fn wrong_types_are_rejected() {
        let doc = minimal_doc().replace("\"name\": \"mini\"", "\"name\": 7");
        assert!(matches!(ScenarioSpec::parse(&doc).unwrap_err(), SpecError::WrongType { .. }));
        let doc = minimal_doc().replace("\"runtime_mean_s\": 1000", "\"runtime_mean_s\": [1]");
        assert!(matches!(ScenarioSpec::parse(&doc).unwrap_err(), SpecError::WrongType { .. }));
    }

    #[test]
    fn missing_required_keys_are_reported() {
        let doc = minimal_doc().replace("\"latency_bound_s\": 86400", "\"weight\": 1");
        match ScenarioSpec::parse(&doc).unwrap_err() {
            SpecError::Missing { path, key } => {
                assert_eq!(path, "scenario.projects[0].apps[0]");
                assert_eq!(key, "latency_bound_s");
            }
            other => panic!("expected Missing, got {other:?}"),
        }
    }

    #[test]
    fn format_and_version_are_enforced() {
        let doc = minimal_doc().replace("bce-scenario", "bce-campaign");
        assert!(matches!(ScenarioSpec::parse(&doc).unwrap_err(), SpecError::WrongFormat { .. }));
        let doc = minimal_doc().replace("\"version\": 1", "\"version\": 99");
        assert_eq!(
            ScenarioSpec::parse(&doc).unwrap_err(),
            SpecError::UnsupportedVersion { found: 99, max: VERSION }
        );
        let doc = minimal_doc().replace("\"version\": 1", "\"version\": 1.5");
        assert!(matches!(ScenarioSpec::parse(&doc).unwrap_err(), SpecError::BadVersion(_)));
    }

    #[test]
    fn hostile_depth_is_rejected() {
        let deep = format!(
            "{{\"format\": \"bce-scenario\", \"version\": 1, \"name\": {}1{}}}",
            "[".repeat(200),
            "]".repeat(200)
        );
        assert!(matches!(ScenarioSpec::parse(&deep).unwrap_err(), SpecError::Json(_)));
    }

    #[test]
    fn duty_cycle_sugar_lowers_to_exponential() {
        let doc = minimal_doc().replace(
            "\"projects\":",
            "\"availability\": {\"host\": {\"kind\": \"duty_cycle\", \"on_fraction\": 0.25, \"cycle_s\": 14400}},\n  \"projects\":",
        );
        let spec = ScenarioSpec::parse(&doc).unwrap();
        assert_eq!(
            spec.scenario().avail.host,
            OnOffSpec::duty_cycle(0.25, SimDuration::from_hours(4.0))
        );
        // Canonical output writes the lowered exponential form.
        assert!(spec.to_canonical_json().contains("\"kind\": \"exponential\""));
    }

    #[test]
    fn validation_goes_through_the_one_true_path() {
        let doc = minimal_doc().replace("\"resource_share\": 100", "\"resource_share\": -5");
        let spec = ScenarioSpec::parse(&doc).expect("structurally fine");
        let err = spec.build().unwrap_err();
        assert!(matches!(err, SpecError::Validation(_)), "{err}");
        assert!(err.to_string().contains("resource_share"), "{err}");
    }

    #[test]
    fn from_spec_matches_builder() {
        let s = kitchen_sink();
        let got = Scenario::from_spec(ScenarioSpec::from_scenario(&s)).unwrap();
        assert_eq!(got.projects, s.projects);
        assert_eq!(got.seed, s.seed);
    }

    #[test]
    fn gpu_instances_on_cpu_app_rejected() {
        let doc = minimal_doc().replace(
            "\"runtime_mean_s\": 1000,",
            "\"runtime_mean_s\": 1000, \"gpu_instances\": 1,",
        );
        // Key order puts gpu_instances after runtime_mean_s; still rejected.
        let err = ScenarioSpec::parse(&doc).unwrap_err();
        assert!(matches!(err, SpecError::Invalid { .. }), "{err:?}");
    }
}

//! # bce-core — BCE, the BOINC client emulator
//!
//! The paper's primary artifact (§4.3): "a program that takes as input a
//! description of a usage scenario, emulates (using the actual BOINC
//! client code) the behavior of the client over some period of time, and
//! calculates various performance metrics."
//!
//! This crate binds the emulated client (`bce-client`), the simulated
//! project servers (`bce-server`) and the availability model
//! (`bce-avail`) into a deterministic discrete-event loop, accumulates the
//! five figures of merit of §4.2, and renders the usage timeline and
//! message log.

pub mod builder;
pub mod checkpoint;
pub mod emulator;
pub mod metrics;
pub mod observe;
pub mod render;
pub mod scenario;
pub mod spec;

pub use bce_faults::{FaultConfig, RetryPolicy};
pub use bce_obs::{
    MetricsRegistry, MetricsSnapshot, ProfileReport, Profiler, TraceBuffer, TraceEvent,
    TraceRecord, TraceSink, Tracer,
};
pub use builder::ScenarioBuilder;
pub use checkpoint::{CheckpointError, CheckpointPolicy, CheckpointState};
pub use emulator::{EmulationResult, Emulator, EmulatorArena, EmulatorConfig};
pub use metrics::{FaultMetrics, FiguresOfMerit, MetricsAccum, PerfStats, ProjectReport};
pub use observe::RunObserver;
pub use render::{render_report, render_timeline};
pub use scenario::Scenario;
pub use spec::{ScenarioSpec, SpecError};

//! The emulator's instrumentation facade.
//!
//! [`RunObserver`] is the single point through which the event loop
//! reports what it decided. Each notification fans out to two sinks:
//!
//! * the human-readable [`MsgLog`] (exact legacy strings — the rendered
//!   log, and therefore every figure output and determinism fingerprint,
//!   is byte-identical to the pre-observer emulator), and
//! * the typed [`TraceSink`], which stores [`TraceEvent`] values for
//!   JSONL export and `bce trace`.
//!
//! Both sinks are lazy: the log formats only at or above its level, and
//! the trace sink never constructs an event when disabled (see
//! `bce-obs`). Events that did not exist before the redesign
//! (`FetchDeferred`, `TransferFailed`, `Recovered`) go to the trace sink
//! only, so enabling neither sink, either sink, or both never changes a
//! result bit.

use bce_client::Reschedule;
use bce_obs::{TraceBuffer, TraceEvent, TraceSink, Tracer};
use bce_sim::{Component, MsgLog};
use bce_types::{JobId, ProjectId, SimTime};

/// Typed observation sink for one emulation run.
#[derive(Debug)]
pub struct RunObserver {
    pub log: MsgLog,
    pub trace: TraceSink,
}

impl RunObserver {
    pub fn new(log: MsgLog, trace: TraceSink) -> Self {
        RunObserver { log, trace }
    }

    /// A job uploaded its result and the server ruled on the deadline.
    pub fn job_finished(&mut self, now: SimTime, job: JobId, project: ProjectId, met: bool) {
        self.log.info(now, Component::Task, || {
            format!(
                "job {} of {} finished ({})",
                job,
                project,
                if met { "met deadline" } else { "MISSED deadline" }
            )
        });
        self.trace.emit(now, || TraceEvent::JobFinished { job, project, met_deadline: met });
    }

    /// A job exhausted its transfer retry budget and failed permanently.
    pub fn job_errored(&mut self, now: SimTime, job: JobId, project: ProjectId) {
        self.log.warn(now, Component::Task, || {
            format!("job {job} of {project} errored: transfer retries exhausted")
        });
        self.trace.emit(now, || TraceEvent::JobErrored { job, project });
    }

    /// The scheduler changed the running set (no-op when nothing moved).
    pub fn scheduled(&mut self, now: SimTime, r: &Reschedule) {
        if r.started.is_empty() && r.preempted.is_empty() {
            return;
        }
        self.log.info(now, Component::Sched, || {
            format!("schedule: start {:?}, preempt {:?}", r.started, r.preempted)
        });
        self.trace.emit(now, || TraceEvent::Scheduled {
            started: r.started.clone(),
            preempted: r.preempted.clone(),
        });
    }

    /// Host availability transitioned.
    pub fn avail_changed(&mut self, now: SimTime, compute: bool, gpu: bool, net: bool) {
        self.log.info(now, Component::Avail, || {
            format!("availability: compute={compute} gpu={gpu} net={net}")
        });
        self.trace.emit(now, || TraceEvent::AvailChanged {
            can_compute: compute,
            can_gpu: gpu,
            net_up: net,
        });
    }

    /// A scheduler RPC round-trip succeeded.
    pub fn rpc_reply(
        &mut self,
        now: SimTime,
        project: ProjectId,
        cpu_secs: f64,
        gpu_secs: f64,
        jobs: usize,
    ) {
        self.log.info(now, Component::Fetch, || {
            format!(
                "RPC to {project}: requested {cpu_secs:.0}s CPU / {gpu_secs:.0}s GPU, got {jobs} jobs"
            )
        });
        self.trace.emit(now, || TraceEvent::RpcReply {
            project,
            cpu_secs,
            gpu_secs,
            jobs: jobs as u64,
        });
    }

    /// A scheduler RPC hit a scheduled server outage.
    pub fn rpc_down(&mut self, now: SimTime, project: ProjectId) {
        self.log.warn(now, Component::Fetch, || format!("RPC to {project}: server down"));
        self.trace.emit(now, || TraceEvent::RpcDown { project });
    }

    /// A scheduler RPC was lost to an injected transient fault.
    pub fn rpc_lost(&mut self, now: SimTime, project: ProjectId) {
        self.log.warn(now, Component::Fetch, || {
            format!("RPC to {project}: lost in transit (transient)")
        });
        self.trace.emit(now, || TraceEvent::RpcLost { project });
    }

    /// An injected host crash rolled back running work.
    pub fn crashed(
        &mut self,
        now: SimTime,
        tasks_rolled_back: usize,
        exec_secs_lost: f64,
        transfers_restarted: usize,
    ) {
        self.log.warn(now, Component::Task, || {
            format!(
                "host crash: {tasks_rolled_back} task(s) rolled back ({exec_secs_lost:.0} exec-s lost), {transfers_restarted} transfer(s) restarted"
            )
        });
        self.trace.emit(now, || TraceEvent::Crashed {
            tasks_rolled_back: tasks_rolled_back as u64,
            exec_secs_lost,
            transfers_restarted: transfers_restarted as u64,
        });
    }

    /// Trace-only: work fetch saw a shortfall but every candidate project
    /// was backed off. Not part of the legacy log schema.
    pub fn fetch_deferred(&mut self, now: SimTime, project: ProjectId, until: SimTime) {
        self.trace.emit(now, || TraceEvent::FetchDeferred { project, until });
    }

    /// Trace-only: one file-transfer attempt failed.
    pub fn transfer_failed(&mut self, now: SimTime, job: JobId, upload: bool) {
        self.trace.emit(now, || TraceEvent::TransferFailed { job, upload });
    }

    /// Trace-only: all work lost to the last crash has been re-computed.
    pub fn recovered(&mut self, now: SimTime, secs: f64) {
        self.trace.emit(now, || TraceEvent::Recovered { secs });
    }

    /// Is the typed trace recording? (Used to gate input computation for
    /// trace-only events.)
    #[inline]
    pub fn tracing(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Split into the log and the recorded trace buffer.
    pub fn finish(mut self) -> (MsgLog, TraceBuffer) {
        let buf = self.trace.take_buffer();
        (self.log, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_sim::Level;

    fn observer(trace_cap: usize) -> RunObserver {
        RunObserver::new(MsgLog::new(Level::Info, 64), TraceSink::buffered(trace_cap))
    }

    #[test]
    fn fan_out_writes_both_sinks_with_legacy_strings() {
        let mut obs = observer(16);
        obs.job_finished(SimTime::from_secs(5.0), JobId(3), ProjectId(1), false);
        let (log, trace) = obs.finish();
        assert_eq!(log.entries().len(), 1);
        assert_eq!(log.entries()[0].message, "job J3 of P1 finished (MISSED deadline)");
        assert_eq!(trace.len(), 1);
        assert_eq!(
            trace.records()[0].event,
            TraceEvent::JobFinished { job: JobId(3), project: ProjectId(1), met_deadline: false }
        );
    }

    #[test]
    fn empty_reschedule_is_silent() {
        let mut obs = observer(16);
        obs.scheduled(SimTime::ZERO, &Reschedule::default());
        let (log, trace) = obs.finish();
        assert!(log.entries().is_empty());
        assert!(trace.is_empty());
    }

    #[test]
    fn trace_only_events_do_not_touch_the_log() {
        let mut obs = observer(16);
        obs.fetch_deferred(SimTime::ZERO, ProjectId(0), SimTime::from_secs(60.0));
        obs.transfer_failed(SimTime::ZERO, JobId(1), true);
        obs.recovered(SimTime::ZERO, 12.0);
        let (log, trace) = obs.finish();
        assert!(log.entries().is_empty());
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn disabled_trace_still_logs() {
        let mut obs = observer(0);
        assert!(!obs.tracing());
        obs.rpc_down(SimTime::ZERO, ProjectId(2));
        let (log, trace) = obs.finish();
        assert_eq!(log.entries().len(), 1);
        assert!(trace.is_empty());
    }
}

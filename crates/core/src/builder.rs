//! Fluent scenario construction.
//!
//! [`ScenarioBuilder`] is the preferred way to assemble a [`Scenario`]:
//! it reads as a description (host, projects, availability, preferences)
//! rather than a struct literal, applies every piece in one expression,
//! and validates on [`ScenarioBuilder::build`] so malformed scenarios
//! fail at construction instead of inside the emulator.
//!
//! ```
//! use bce_core::ScenarioBuilder;
//! use bce_types::{AppClass, Hardware, ProjectSpec, SimDuration};
//!
//! let scenario = ScenarioBuilder::new("doc", Hardware::cpu_only(2, 1e9))
//!     .seed(7)
//!     .project(ProjectSpec::new(0, "alpha", 100.0).with_app(AppClass::cpu(
//!         0,
//!         SimDuration::from_secs(600.0),
//!         SimDuration::from_hours(6.0),
//!     )))
//!     .build()
//!     .expect("valid scenario");
//! assert_eq!(scenario.seed, 7);
//! ```
//!
//! The legacy `Scenario::with_*` chain methods are deprecated: every
//! in-tree user goes through the builder (or [`Scenario::from_spec`] for
//! JSON scenario files), and a single shim test below keeps the old
//! chain compiling until it is removed. `build_unchecked` exists for
//! tests that construct deliberately-invalid scenarios.

use crate::scenario::Scenario;
use bce_avail::{AvailSpec, AvailTrace};
use bce_client::NetworkModel;
use bce_types::{Hardware, InitialJob, Preferences, ProjectSpec, ScenarioErrors};

/// Fluent builder for [`Scenario`]. See the module docs for an example.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Start from the two things every scenario needs: a name and host
    /// hardware. Everything else has the same defaults as
    /// [`Scenario::new`]: seed 0, default preferences, always-on
    /// availability, instant network, no projects.
    pub fn new(name: impl Into<String>, hardware: Hardware) -> Self {
        ScenarioBuilder { scenario: Scenario::new(name, hardware) }
    }

    /// Root seed for every stochastic element of the run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Replace the host hardware.
    pub fn hardware(mut self, hardware: Hardware) -> Self {
        self.scenario.hardware = hardware;
        self
    }

    /// Set the user preferences (work buffer, scheduling period, usage
    /// limits).
    pub fn prefs(mut self, prefs: Preferences) -> Self {
        self.scenario.prefs = prefs;
        self
    }

    /// Attach a project.
    pub fn project(mut self, p: ProjectSpec) -> Self {
        self.scenario.projects.push(p);
        self
    }

    /// Attach several projects at once.
    pub fn projects(mut self, ps: impl IntoIterator<Item = ProjectSpec>) -> Self {
        self.scenario.projects.extend(ps);
        self
    }

    /// Set the availability model.
    pub fn avail(mut self, avail: AvailSpec) -> Self {
        self.scenario.avail = avail;
        self
    }

    /// Override host power with a recorded trace.
    pub fn host_trace(mut self, trace: AvailTrace) -> Self {
        self.scenario.host_trace = Some(trace);
        self
    }

    /// Model a finite network link (None/default = instant transfers).
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.scenario.network = Some(network);
        self
    }

    /// Import one in-flight job into the client's starting queue.
    pub fn initial_job(mut self, job: InitialJob) -> Self {
        self.scenario.initial_queue.push(job);
        self
    }

    /// Import several in-flight jobs.
    pub fn initial_jobs(mut self, jobs: impl IntoIterator<Item = InitialJob>) -> Self {
        self.scenario.initial_queue.extend(jobs);
        self
    }

    /// Validate and finish. Fails exactly when [`Scenario::validate`]
    /// would, reporting the full typed error list.
    pub fn build(self) -> Result<Scenario, ScenarioErrors> {
        self.scenario.validate()?;
        Ok(self.scenario)
    }

    /// Finish without validating — for tests of invalid inputs and for
    /// incremental construction where projects arrive later.
    pub fn build_unchecked(self) -> Scenario {
        self.scenario
    }
}

impl From<Scenario> for ScenarioBuilder {
    /// Continue building from an existing scenario (e.g. a preset).
    fn from(scenario: Scenario) -> Self {
        ScenarioBuilder { scenario }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::{AppClass, SimDuration};

    fn app() -> AppClass {
        AppClass::cpu(0, SimDuration::from_secs(100.0), SimDuration::from_secs(1000.0))
    }

    /// The one place the deprecated chain API is still exercised: it must
    /// keep compiling and agreeing with the builder until it is removed.
    #[test]
    #[allow(deprecated)]
    fn builder_matches_chain_construction() {
        let chained = Scenario::new("s", Hardware::cpu_only(2, 1e9))
            .with_seed(3)
            .with_project(ProjectSpec::new(0, "p", 100.0).with_app(app()));
        let built = ScenarioBuilder::new("s", Hardware::cpu_only(2, 1e9))
            .seed(3)
            .project(ProjectSpec::new(0, "p", 100.0).with_app(app()))
            .build()
            .unwrap();
        assert_eq!(built.name, chained.name);
        assert_eq!(built.seed, chained.seed);
        assert_eq!(built.projects.len(), chained.projects.len());
        assert_eq!(built.projects[0].id, chained.projects[0].id);
    }

    #[test]
    fn build_validates() {
        let err = ScenarioBuilder::new("empty", Hardware::cpu_only(1, 1e9)).build();
        assert_eq!(err.unwrap_err().0, vec![bce_types::ModelError::Empty("projects")]);
        let ok = ScenarioBuilder::new("empty", Hardware::cpu_only(1, 1e9)).build_unchecked();
        assert!(ok.projects.is_empty());
    }

    #[test]
    fn bulk_setters_accumulate() {
        let s = ScenarioBuilder::new("multi", Hardware::cpu_only(4, 1e9))
            .projects(vec![
                ProjectSpec::new(0, "a", 50.0).with_app(app()),
                ProjectSpec::new(1, "b", 50.0).with_app(app()),
            ])
            .build()
            .unwrap();
        assert_eq!(s.projects.len(), 2);
    }

    #[test]
    fn from_scenario_continues_building() {
        let preset = ScenarioBuilder::new("preset", Hardware::cpu_only(1, 1e9))
            .project(ProjectSpec::new(0, "p", 100.0).with_app(app()))
            .build_unchecked();
        let tweaked = ScenarioBuilder::from(preset).seed(99).build().unwrap();
        assert_eq!(tweaked.seed, 99);
        assert_eq!(tweaked.name, "preset");
    }
}

//! BCE — the BOINC client emulator (§4.3).
//!
//! Takes a [`Scenario`] plus policy flags, emulates the client over a
//! period of simulated time, and reports the figures of merit, a
//! per-instance usage timeline and a message log of scheduling decisions.
//!
//! Structure: a discrete-event loop with piecewise-constant allocation.
//! Between events the running set is fixed, so task progress and metrics
//! accrue in closed form. Events: periodic scheduling points, availability
//! transitions, predicted task/transfer completions (generation-stamped so
//! stale predictions are ignored), and fetch-retry wakeups.

use crate::checkpoint::{CheckpointError, CheckpointState};
use crate::metrics::{FaultMetrics, FiguresOfMerit, MetricsAccum, PerfStats, ProjectReport};
use crate::observe::RunObserver;
use crate::scenario::Scenario;
use bce_avail::{AvailSource, Governor, HostRunState, OnOffProcess};
use bce_client::{Client, ClientConfig, ClientProject, ClientScratch, FetchPolicy, JobSchedPolicy};
use bce_faults::{CrashProcess, FaultConfig, RpcFaultInjector, TransferFaultModel};
use bce_obs::{
    MetricsSnapshot, ProfileReport, Profiler, SpanId, TraceBuffer, TraceRecord, TraceSink,
};
use bce_server::{ProjectServer, RpcOutcome, SchedulerRequest, ServerConfig, TypeRequest};
use bce_sim::{EventQueue, Level, LogEntry, MsgLog, Occupancy, Rng, Timeline};
use bce_types::{Hardware, InstanceId, JobId, ProcType, ProjectId, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Emulator tuning knobs (separate from the client's policy config).
#[derive(Debug, Clone)]
pub struct EmulatorConfig {
    /// Emulated period (default 10 days, as in §5).
    pub duration: SimDuration,
    /// Upper bound between scheduling decisions; events also trigger them.
    pub sched_period: SimDuration,
    /// Monotony averaging window.
    pub monotony_window: SimDuration,
    /// Record the per-instance timeline? (costs memory on long runs)
    pub record_timeline: bool,
    /// Message-log verbosity.
    pub log_level: Level,
    /// Message-log capacity (0 disables logging entirely).
    pub log_capacity: usize,
    pub server: ServerConfig,
    /// Upper bound on scheduler RPCs issued per decision point.
    pub max_rpcs_per_point: usize,
    /// Deterministic fault injection; [`FaultConfig::OFF`] (the default)
    /// leaves the emulation bit-identical to one without fault plumbing.
    pub faults: FaultConfig,
    /// Typed-trace buffer capacity (0 = tracing off, the default; the
    /// no-op sink is provably allocation-free). Tracing is observation
    /// only: enabling it never changes a result bit.
    pub trace_capacity: usize,
    /// Record wall-clock/sim-time profiling spans for this run. Off by
    /// default; span timings are reported out-of-band
    /// ([`EmulationResult::profile`]) and never fingerprinted.
    pub profile: bool,
    /// Crash-safety for executor-driven runs: write a periodic
    /// [`crate::CheckpointState`] per run and auto-resume from it (see
    /// [`crate::CheckpointPolicy`]). `None` (the default) runs straight
    /// through. Honored by the `bce-controller` executor, not by a bare
    /// [`Emulator::run`]; checkpointing never changes a result bit.
    pub checkpoint: Option<crate::CheckpointPolicy>,
    /// Availability-flap coalescing window: when an availability event
    /// fires, any further on/off transitions within this window are
    /// absorbed into it and the run state is evaluated once, after all of
    /// them. Collapses the reschedule storms a flapping host would
    /// otherwise cause. Zero disables coalescing (every transition gets
    /// its own event, as the seed emulator behaved). The window must stay
    /// well below any policy-visible timescale (scheduling period,
    /// work-buffer preferences); the 0.25 s default is ~240x below the
    /// 60 s scheduling period.
    pub avail_coalesce_window: SimDuration,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        EmulatorConfig {
            duration: SimDuration::from_days(10.0),
            sched_period: SimDuration::from_secs(60.0),
            monotony_window: SimDuration::from_hours(1.0),
            record_timeline: false,
            log_level: Level::Info,
            log_capacity: 0,
            server: ServerConfig::default(),
            max_rpcs_per_point: 4,
            faults: FaultConfig::OFF,
            trace_capacity: 0,
            profile: false,
            checkpoint: None,
            avail_coalesce_window: SimDuration::from_secs(0.25),
        }
    }
}

/// Events driving the loop. `pub(crate)` so the checkpoint codec can
/// serialize the pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// Periodic scheduling point.
    SchedPoint,
    /// Predicted client event (task or transfer completion); stale when
    /// its generation is outdated.
    Client { generation: u64 },
    /// Availability signal may change here.
    AvailChange,
    /// A project backoff/delay expires; work fetch may unblock.
    FetchRetry { generation: u64 },
    /// Injected host crash (only scheduled when a crash process is
    /// configured).
    Crash,
}

/// The complete result of one emulation run.
#[derive(Debug, Clone)]
pub struct EmulationResult {
    pub scenario_name: String,
    pub merit: FiguresOfMerit,
    pub projects: Vec<ProjectReport>,
    pub jobs_completed: u64,
    pub jobs_missed_deadline: u64,
    pub jobs_unfinished: u64,
    pub available_fraction: f64,
    pub total_flops_used: f64,
    pub duration: SimDuration,
    /// Robustness figures of merit (all zero when faults are off).
    pub faults: FaultMetrics,
    /// Emulator runtime counters (event throughput, RR-sim cache hits).
    pub perf: PerfStats,
    pub timeline: Option<Timeline>,
    pub log: MsgLog,
    /// The run's instruments frozen into the unified `scope.name` schema
    /// (counters, merit/fault gauges, perf counters). Derived from the
    /// same state as the fields above, so it is deliberately *not*
    /// fingerprinted.
    pub metrics: MetricsSnapshot,
    /// Typed decision trace (empty unless `trace_capacity > 0`). Excluded
    /// from [`EmulationResult::bit_fingerprint`] by design: enabling
    /// tracing must leave the fingerprint unchanged.
    pub trace: TraceBuffer,
    /// Profiling spans (present iff `EmulatorConfig::profile`). Contains
    /// wall-clock time and is never part of any determinism contract.
    pub profile: Option<ProfileReport>,
}

impl EmulationResult {
    /// A deterministic FNV-1a digest over every reproducible field of the
    /// result — figures of merit, per-project reports, job counts, fault
    /// and perf counters, the timeline segments and the message log — with
    /// floats hashed by their exact bit patterns. Two runs are
    /// bit-identical iff their fingerprints match; the determinism matrix
    /// and the fresh-vs-reused arena tests compare these.
    pub fn bit_fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.str(&self.scenario_name);
        for x in [
            self.merit.idle_fraction,
            self.merit.wasted_fraction,
            self.merit.share_violation,
            self.merit.monotony,
            self.merit.rpcs_per_job,
            self.available_fraction,
            self.total_flops_used,
            self.duration.secs(),
        ] {
            h.f64(x);
        }
        for p in &self.projects {
            h.u64(p.id.0 as u64);
            h.str(&p.name);
            h.f64(p.share_frac);
            h.f64(p.used_frac);
            h.f64(p.flops_used);
            h.u64(p.jobs_completed);
            h.u64(p.jobs_missed_deadline);
            h.u64(p.rpcs);
        }
        for x in [self.jobs_completed, self.jobs_missed_deadline, self.jobs_unfinished] {
            h.u64(x);
        }
        h.u64(self.faults.transient_rpc_failures);
        h.u64(self.faults.transfer_failures);
        h.u64(self.faults.crashes);
        h.u64(self.faults.jobs_errored);
        h.f64(self.faults.fault_wasted_fraction);
        h.f64(self.faults.mean_recovery_secs);
        h.u64(self.faults.recoveries);
        h.u64(self.perf.events_processed);
        h.u64(self.perf.peak_jobs as u64);
        h.u64(self.perf.rr_queries);
        h.u64(self.perf.rr_runs);
        h.u64(self.perf.rr_frozen);
        h.u64(self.perf.flaps_coalesced);
        h.u64(self.perf.avail_resched_skipped);
        if let Some(tl) = &self.timeline {
            for track in tl.tracks() {
                h.u64(track.instance.proc_type.index() as u64);
                h.u64(track.instance.index as u64);
                for seg in track.segments() {
                    h.f64(seg.start.secs());
                    h.f64(seg.end.secs());
                    match seg.occ {
                        Occupancy::Idle => h.u64(1),
                        Occupancy::Unavailable => h.u64(2),
                        Occupancy::Busy { project, job } => {
                            h.u64(3);
                            h.u64(project.0 as u64);
                            h.u64(job.0);
                        }
                    }
                }
            }
        }
        for e in self.log.entries() {
            h.f64(e.time.secs());
            h.str(e.component.name());
            h.str(&e.message);
        }
        h.u64(self.log.dropped());
        h.finish()
    }
}

/// Minimal FNV-1a accumulator for [`EmulationResult::bit_fingerprint`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.byte(b);
        }
    }
    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Tracks one crash until every task it rolled back regains its pre-crash
/// progress (or leaves the queue): the span is the crash's recovery time.
struct RecoveryTracker {
    start: SimTime,
    /// `(job, pre-crash progress in execution seconds)`.
    targets: Vec<(JobId, f64)>,
}

/// The emulator.
///
/// ```
/// use bce_client::{ClientConfig, FetchPolicy, JobSchedPolicy};
/// use bce_core::{Emulator, EmulatorConfig, ScenarioBuilder};
/// use bce_types::{AppClass, Hardware, ProjectSpec, SimDuration};
///
/// let scenario = ScenarioBuilder::new("doc", Hardware::cpu_only(2, 1e9))
///     .seed(1)
///     .project(ProjectSpec::new(0, "alpha", 100.0).with_app(
///         AppClass::cpu(0, SimDuration::from_secs(600.0), SimDuration::from_hours(6.0)),
///     ))
///     .build()
///     .unwrap();
/// let cfg = EmulatorConfig { duration: SimDuration::from_hours(4.0), ..Default::default() };
/// let result = Emulator::new(scenario, ClientConfig::default(), cfg).run();
/// assert!(result.jobs_completed > 0);
/// assert!(result.merit.idle_fraction < 0.1);
/// ```
pub struct Emulator {
    scenario: Arc<Scenario>,
    client_cfg: ClientConfig,
    cfg: Arc<EmulatorConfig>,
}

/// Reusable per-worker emulator state: the event queue, the client's
/// internal buffers (task queue, RR-simulation scratch, accounting
/// sample), the per-project metrics buffer and the message-log entry
/// buffer. One arena per worker thread amortises per-run allocations over
/// a whole population study; [`Emulator::run_in`] clears everything before
/// use, so results are bit-identical to a fresh [`Emulator::run`].
pub struct EmulatorArena {
    queue: EventQueue<Event>,
    client: Option<ClientScratch>,
    per_project: Vec<(ProjectId, f64)>,
    log_entries: Vec<LogEntry>,
    trace_records: Vec<TraceRecord>,
}

impl EmulatorArena {
    /// Initial event-queue capacity; steady-state runs rarely hold more
    /// than a handful of pending events, but the first run should not
    /// regrow from zero.
    const EVENT_CAPACITY: usize = 64;

    pub fn new() -> Self {
        EmulatorArena {
            queue: EventQueue::with_capacity(Self::EVENT_CAPACITY),
            client: None,
            per_project: Vec::new(),
            log_entries: Vec::new(),
            trace_records: Vec::new(),
        }
    }

    /// Reclaim the buffers of a consumed result (the message log's entry
    /// buffer and the trace buffer's record vector). Serial drivers that
    /// enable logging or tracing can hand each result back after reading
    /// it so even those allocations are reused across runs.
    pub fn reclaim(&mut self, result: EmulationResult) {
        let mut entries = result.log.into_entries();
        if entries.capacity() > self.log_entries.capacity() {
            entries.clear();
            self.log_entries = entries;
        }
        let mut records = result.trace.into_records();
        if records.capacity() > self.trace_records.capacity() {
            records.clear();
            self.trace_records = records;
        }
    }
}

impl Default for EmulatorArena {
    fn default() -> Self {
        Self::new()
    }
}

impl Emulator {
    pub fn new(
        scenario: impl Into<Arc<Scenario>>,
        client_cfg: ClientConfig,
        cfg: impl Into<Arc<EmulatorConfig>>,
    ) -> Self {
        Emulator { scenario: scenario.into(), client_cfg, cfg: cfg.into() }
    }

    /// Convenience: emulate `scenario` under (`sched`, `fetch`) with
    /// defaults otherwise.
    pub fn run_policies(
        scenario: Scenario,
        sched: JobSchedPolicy,
        fetch: FetchPolicy,
    ) -> EmulationResult {
        let client_cfg =
            ClientConfig { sched_policy: sched, fetch_policy: fetch, ..Default::default() };
        Emulator::new(scenario, client_cfg, EmulatorConfig::default()).run()
    }

    /// Run the emulation with freshly allocated working state.
    pub fn run(&self) -> EmulationResult {
        self.run_in(&mut EmulatorArena::new())
    }

    /// Run the emulation inside a reusable [`EmulatorArena`]. The arena's
    /// buffers are cleared before use, so the result is bit-identical to
    /// [`Emulator::run`]; population-scale drivers keep one arena per
    /// worker so the event queue, RR scratch, task buffers and log buffer
    /// are allocated once per worker rather than once per run.
    pub fn run_in(&self, arena: &mut EmulatorArena) -> EmulationResult {
        let mut st = self.start_in(arena);
        while st.step(self) {}
        st.finalize(self, arena)
    }

    /// Construct the live [`RunState`] of a fresh run: every component is
    /// built on its own named RNG stream in a fixed order (checkpoint
    /// restore replays exactly this path before overwriting mutable
    /// state), the event queue is seeded, and the reusable buffers are
    /// taken out of the arena ([`RunState::finalize`] hands them back).
    fn start_in(&self, arena: &mut EmulatorArena) -> RunState {
        let mut queue = std::mem::replace(&mut arena.queue, EventQueue::with_capacity(0));
        let client_scratch = arena.client.take();
        let mut per_project = std::mem::take(&mut arena.per_project);
        let log_entries = std::mem::take(&mut arena.log_entries);
        let trace_records = std::mem::take(&mut arena.trace_records);
        let scenario = &*self.scenario;
        debug_assert!(scenario.validate().is_ok(), "invalid scenario: {:?}", scenario.validate());
        let hw = scenario.hardware.clone();
        let end = SimTime::ZERO + self.cfg.duration;

        // --- Component construction, each with its own RNG stream. ---
        let mut avail_rng = Rng::stream(scenario.seed, "avail");
        let mut governor = scenario.avail.instantiate(&mut avail_rng);
        if let Some(trace) = &scenario.host_trace {
            governor = governor.with_host_trace(trace.clone());
        }
        let on_frac = governor.expected_on_fraction(&scenario.prefs).max(1e-3);

        let mut servers: Vec<ProjectServer> = scenario
            .projects
            .iter()
            .map(|p| {
                let mut rng = Rng::stream(scenario.seed, &format!("server-{}", p.id));
                ProjectServer::new(p.clone(), self.cfg.server, &mut rng)
            })
            .collect();

        let client_projects: Vec<ClientProject> = scenario
            .projects
            .iter()
            .map(|p| {
                let types: Vec<ProcType> = p.proc_types().collect();
                Client::project(p.id.0, p.name.clone(), p.resource_share, &types)
            })
            .collect();
        let mut client_cfg = self.client_cfg;
        client_cfg.network = scenario.network;
        let mut client = Client::with_scratch(
            hw.clone(),
            scenario.prefs.clone(),
            client_projects,
            client_cfg,
            client_scratch.unwrap_or_default(),
        );

        // Fault processes, each on its own RNG stream. None is created (or
        // drawn from) when its rate is zero, preserving the zero-fault
        // identity: with `FaultConfig::OFF` this whole block is inert.
        let faults = &self.cfg.faults;
        let project_ids: Vec<ProjectId> = scenario.projects.iter().map(|p| p.id).collect();
        let rpc_faults: Option<RpcFaultInjector> = (faults.rpc_fail_prob > 0.0)
            .then(|| RpcFaultInjector::new(scenario.seed, faults.rpc_fail_prob, &project_ids));
        if faults.transfer_fail_prob > 0.0 {
            client.set_transfer_faults(TransferFaultModel::new(
                scenario.seed,
                faults.transfer_fail_prob,
                faults.transfer_retry,
            ));
        }
        client.set_rpc_retry_policy(faults.rpc_retry);
        let mut crash_proc: Option<CrashProcess> =
            faults.crash_mtbf.map(|mtbf| CrashProcess::new(scenario.seed, mtbf));
        let recoveries: Vec<RecoveryTracker> = Vec::new();

        // Restore imported in-flight jobs (state-file replay, §4.3).
        for ij in &scenario.initial_queue {
            let server = servers
                .iter_mut()
                .find(|s| s.id() == ij.project)
                .expect("validated initial-queue project");
            let received = SimTime::ZERO - ij.received_ago;
            if let Some(spec) = server.make_initial_job(ij.app, received) {
                client.add_initial_task(spec, ij.progress);
            }
        }

        let shares: Vec<(ProjectId, f64)> =
            scenario.projects.iter().map(|p| (p.id, p.resource_share)).collect();
        let metrics = MetricsAccum::new(
            hw.total_peak_flops(),
            scenario.projects.len(),
            SimTime::ZERO,
            self.cfg.monotony_window,
        );
        let log = if self.cfg.log_capacity > 0 {
            MsgLog::with_buffer(self.cfg.log_level, self.cfg.log_capacity, log_entries)
        } else {
            MsgLog::disabled()
        };
        let trace = if self.cfg.trace_capacity > 0 {
            TraceSink::Buffer(TraceBuffer::with_buffer(self.cfg.trace_capacity, trace_records))
        } else {
            TraceSink::Noop
        };
        let obs = RunObserver::new(log, trace);
        let mut prof = if self.cfg.profile { Profiler::enabled() } else { Profiler::disabled() };
        let sp_advance = prof.span("emu.client_advance");
        let sp_resched = prof.span("emu.reschedule");
        let sp_rpc = prof.span("emu.rpc_loop");
        let sp_unavail = prof.span("sim.unavailable");
        let run_start = self.cfg.profile.then(Instant::now);

        // Timeline instance bookkeeping.
        let instances: Vec<InstanceId> = ProcType::ALL
            .iter()
            .flat_map(|&t| {
                (0..hw.ninstances(t)).map(move |i| InstanceId { proc_type: t, index: i })
            })
            .collect();
        let timeline = self.cfg.record_timeline.then(|| Timeline::new(instances.iter().copied()));
        // job -> assigned instances (for the timeline only).
        let assignment: BTreeMap<JobId, Vec<InstanceId>> = BTreeMap::new();

        // --- Event loop (queue recycled from the arena, emptied with its
        // tie-break sequence restarted so reuse is bit-identical). ---
        queue.reset();
        queue.push(SimTime::ZERO, Event::SchedPoint);
        queue.push(governor.next_change_after(SimTime::ZERO, &scenario.prefs), Event::AvailChange);
        if let Some(cp) = &mut crash_proc {
            let first = cp.next_after(SimTime::ZERO);
            if first < end {
                queue.push(first, Event::Crash);
            }
        }
        governor.advance(SimTime::ZERO);
        let run_state = governor.run_state(SimTime::ZERO, &scenario.prefs);
        let peak_jobs = client.tasks().len();
        per_project.clear();

        RunState {
            hw,
            end,
            on_frac,
            shares,
            instances,
            governor,
            servers,
            client,
            rpc_faults,
            crash_proc,
            recoveries,
            metrics,
            obs,
            prof,
            sp_advance,
            sp_resched,
            sp_rpc,
            sp_unavail,
            run_start,
            timeline,
            assignment,
            queue,
            per_project,
            generation: 0,
            now: SimTime::ZERO,
            run_state,
            events_processed: 0,
            peak_jobs,
            flaps_coalesced: 0,
            avail_resched_skipped: 0,
            done: false,
        }
    }

    /// Rebuild a [`RunState`] from a checkpoint: run the normal
    /// construction path (which draws every RNG stream and fork in the
    /// same order as the original run), then overwrite each component's
    /// mutable state — RNG positions, queues, tasks, debts, counters —
    /// from the capture. Fails when the checkpoint was taken from a
    /// different scenario or under an incompatible configuration.
    fn restore_in(
        &self,
        ckpt: &CheckpointState,
        arena: &mut EmulatorArena,
    ) -> Result<RunState, CheckpointError> {
        let scenario = &*self.scenario;
        if ckpt.scenario_name != scenario.name || ckpt.seed != scenario.seed {
            return Err(CheckpointError::ScenarioMismatch {
                expected: format!("{} (seed {})", scenario.name, scenario.seed),
                found: format!("{} (seed {})", ckpt.scenario_name, ckpt.seed),
            });
        }
        if ckpt.duration != self.cfg.duration {
            return Err(CheckpointError::ConfigMismatch("duration".into()));
        }
        let faults = &self.cfg.faults;
        if ckpt.rpc_fault_streams.is_some() != (faults.rpc_fail_prob > 0.0) {
            return Err(CheckpointError::ConfigMismatch("rpc fault injection".into()));
        }
        if ckpt.client.xfer_faults_rng.is_some() != (faults.transfer_fail_prob > 0.0) {
            return Err(CheckpointError::ConfigMismatch("transfer fault injection".into()));
        }
        if ckpt.crash_rng.is_some() != faults.crash_mtbf.is_some() {
            return Err(CheckpointError::ConfigMismatch("crash injection".into()));
        }
        if ckpt.log.is_some() != (self.cfg.log_capacity > 0) {
            return Err(CheckpointError::ConfigMismatch("log capacity".into()));
        }
        if ckpt.timeline.is_some() != self.cfg.record_timeline {
            return Err(CheckpointError::ConfigMismatch("record_timeline".into()));
        }

        let mut st = self.start_in(arena);
        st.queue.restore(&ckpt.queue, ckpt.queue_next_seq);
        {
            let (host, user, net) = st.governor.sources_mut();
            for (src, saved) in
                [(host, &ckpt.avail[0]), (user, &ckpt.avail[1]), (net, &ckpt.avail[2])]
            {
                restore_avail_source(src, saved)?;
            }
        }
        if ckpt.servers.len() != st.servers.len() {
            return Err(CheckpointError::ConfigMismatch("project set".into()));
        }
        for (id, snap) in &ckpt.servers {
            let server = st
                .servers
                .iter_mut()
                .find(|s| s.id() == *id)
                .ok_or_else(|| CheckpointError::ConfigMismatch(format!("project {id}")))?;
            server.restore_snapshot(snap);
        }
        st.client.restore_snapshot(&ckpt.client);
        if let (Some(inj), Some(streams)) = (&mut st.rpc_faults, &ckpt.rpc_fault_streams) {
            inj.restore_streams(streams);
        }
        if let (Some(cp), Some(rng)) = (&mut st.crash_proc, &ckpt.crash_rng) {
            cp.restore_rng(rng.clone());
        }
        st.recoveries = ckpt
            .recoveries
            .iter()
            .map(|(start, targets)| RecoveryTracker { start: *start, targets: targets.clone() })
            .collect();
        st.metrics.restore_snapshot(&ckpt.metrics);
        if let Some((entries, dropped)) = &ckpt.log {
            st.obs.log.restore_history(entries.iter().cloned(), *dropped);
        }
        if let (Some(tl), Some(tracks)) = (&mut st.timeline, &ckpt.timeline) {
            for (inst, segs) in tracks {
                let track = tl
                    .track_mut(*inst)
                    .ok_or_else(|| CheckpointError::ConfigMismatch(format!("instance {inst}")))?;
                track.restore_segments(segs.iter().copied());
            }
        }
        st.assignment = ckpt.assignment.iter().cloned().collect();
        st.generation = ckpt.generation;
        st.now = ckpt.now;
        st.run_state = ckpt.run_state;
        st.events_processed = ckpt.events_processed;
        st.peak_jobs = ckpt.peak_jobs as usize;
        st.flaps_coalesced = ckpt.flaps_coalesced;
        st.avail_resched_skipped = ckpt.avail_resched_skipped;
        st.done = ckpt.finished;
        Ok(st)
    }

    /// Run until the first event boundary at or after `at` and capture a
    /// checkpoint there (fresh working state). If the run finishes before
    /// `at`, the capture is of the completed run and resuming it just
    /// finalizes.
    pub fn checkpoint_at(&self, at: SimTime) -> CheckpointState {
        self.checkpoint_at_in(at, &mut EmulatorArena::new())
    }

    /// [`Emulator::checkpoint_at`] inside a reusable [`EmulatorArena`].
    pub fn checkpoint_at_in(&self, at: SimTime, arena: &mut EmulatorArena) -> CheckpointState {
        let mut st = self.start_in(arena);
        while st.now < at && st.step(self) {}
        let ckpt = st.capture(self);
        // Finish the run only to hand the working buffers back to the
        // arena; the result itself is discarded.
        let _ = st.finalize(self, arena);
        ckpt
    }

    /// Resume a checkpointed run to completion (fresh working state). The
    /// result is bit-identical to the uninterrupted run: restoring
    /// rebuilds every component through the original construction path
    /// and overwrites all mutable state, RNG stream positions included.
    pub fn resume(&self, ckpt: &CheckpointState) -> Result<EmulationResult, CheckpointError> {
        self.resume_in(ckpt, &mut EmulatorArena::new())
    }

    /// [`Emulator::resume`] inside a reusable [`EmulatorArena`].
    pub fn resume_in(
        &self,
        ckpt: &CheckpointState,
        arena: &mut EmulatorArena,
    ) -> Result<EmulationResult, CheckpointError> {
        let mut st = self.restore_in(ckpt, arena)?;
        while st.step(self) {}
        Ok(st.finalize(self, arena))
    }

    /// Run to completion, handing `sink` a checkpoint at the first event
    /// boundary at or after each multiple of `every` (the crash-safe
    /// executor writes these to disk so a killed process can resume).
    pub fn run_with_checkpoints_in(
        &self,
        arena: &mut EmulatorArena,
        every: SimDuration,
        mut sink: impl FnMut(&CheckpointState),
    ) -> EmulationResult {
        let mut st = self.start_in(arena);
        let mut next = SimTime::ZERO + every;
        loop {
            if st.now >= next {
                sink(&st.capture(self));
                while st.now >= next {
                    next += every;
                }
            }
            if !st.step(self) {
                break;
            }
        }
        st.finalize(self, arena)
    }
}

/// The live state of one emulation run between event-loop iterations:
/// every component, RNG stream, buffer and counter the loop mutates.
/// [`Emulator::start_in`] builds one, [`RunState::step`] executes one
/// queue pop (one full loop iteration), [`RunState::finalize`] produces
/// the result and returns the reusable buffers to the arena. A checkpoint
/// is a [`RunState::capture`] between two `step` calls.
struct RunState {
    // Constants resolved at construction; not checkpointed — they are
    // re-derived from the scenario and config on restore.
    hw: Hardware,
    end: SimTime,
    on_frac: f64,
    shares: Vec<(ProjectId, f64)>,
    instances: Vec<InstanceId>,
    // Live components.
    governor: Governor,
    servers: Vec<ProjectServer>,
    client: Client,
    rpc_faults: Option<RpcFaultInjector>,
    crash_proc: Option<CrashProcess>,
    recoveries: Vec<RecoveryTracker>,
    metrics: MetricsAccum,
    obs: RunObserver,
    prof: Profiler,
    sp_advance: SpanId,
    sp_resched: SpanId,
    sp_rpc: SpanId,
    sp_unavail: SpanId,
    run_start: Option<Instant>,
    timeline: Option<Timeline>,
    assignment: BTreeMap<JobId, Vec<InstanceId>>,
    queue: EventQueue<Event>,
    per_project: Vec<(ProjectId, f64)>,
    // Loop scalars.
    generation: u64,
    now: SimTime,
    run_state: HostRunState,
    events_processed: u64,
    peak_jobs: usize,
    /// Availability transitions absorbed into an earlier event by the
    /// coalescing window ([`EmulatorConfig::avail_coalesce_window`]).
    flaps_coalesced: u64,
    /// Availability events whose net run-state delta was zero, so the
    /// reschedule/fetch pass was skipped entirely.
    avail_resched_skipped: u64,
    /// Set once `step` has returned `false`: the run reached its horizon
    /// (or drained its queue) and must not be stepped further. Carried
    /// through checkpoints so resuming a completed capture only
    /// finalizes.
    done: bool,
}

impl RunState {
    /// Execute one event-loop iteration (one queue pop). Returns `false`
    /// when the run is over — queue drained or the horizon reached — and
    /// must not be called again after that.
    fn step(&mut self, emu: &Emulator) -> bool {
        if self.done {
            return false;
        }
        let scenario = &*emu.scenario;
        let cfg = &*emu.cfg;
        let RunState {
            hw,
            end,
            on_frac,
            instances,
            governor,
            servers,
            client,
            rpc_faults,
            crash_proc,
            recoveries,
            metrics,
            obs,
            prof,
            sp_advance,
            sp_resched,
            sp_rpc,
            sp_unavail,
            timeline,
            assignment,
            queue,
            per_project,
            generation,
            now,
            run_state,
            events_processed,
            peak_jobs,
            flaps_coalesced,
            avail_resched_skipped,
            done,
            ..
        } = self;
        let end = *end;
        let on_frac = *on_frac;
        let (sp_advance, sp_resched, sp_rpc, sp_unavail) =
            (*sp_advance, *sp_resched, *sp_rpc, *sp_unavail);

        let Some((t_ev, event)) = queue.pop() else {
            *done = true;
            return false;
        };
        *events_processed += 1;
        let t = t_ev.min(end);
        // 1. Account the elapsed interval under the constant allocation.
        if t > *now {
            client.flops_in_use_by_project_into(per_project);
            metrics.advance(*now, t, per_project, run_state.can_compute);
            if !run_state.can_compute {
                prof.record_sim(sp_unavail, (t - *now).secs());
            }
            if let Some(tl) = timeline {
                record_timeline(tl, client, assignment, *now, t, *run_state, instances);
            }
        }
        let events = prof.time(sp_advance, || client.advance(t, *run_state));
        *now = t;
        let now = t;

        // 2. Report uploaded jobs to their servers and retire them.
        // Whether a result counts is the *server's* verdict: under the
        // default strict deadline check this equals the client-side
        // deadline test; grace/none policies are more forgiving.
        for id in &events.uploaded {
            let (project, flops_spent) = {
                let task = client.task(*id).expect("uploaded task exists");
                (task.spec.project, task.spec.duration.secs() * task.spec.usage.peak_flops_on(&*hw))
            };
            let met = match servers.iter_mut().find(|s| s.id() == project) {
                Some(server) => {
                    server.check_deadlines(now);
                    server.report_completed(now, *id)
                }
                None => false,
            };
            metrics.record_job_done(*id, met, if met { 0.0 } else { flops_spent });
            if let Some(task) = client.retire(*id) {
                if task.rollback_waste > 0.0 {
                    metrics.record_rollback_waste(
                        task.rollback_waste * task.spec.usage.peak_flops_on(&*hw),
                    );
                }
                obs.job_finished(now, *id, project, met);
            }
            assignment.remove(id);
        }

        // Fault bookkeeping: failed transfer attempts, jobs that
        // exhausted their retry budget, and crash-recovery progress.
        for &(job, upload) in &events.failed_transfers {
            metrics.record_transfer_failure();
            obs.transfer_failed(now, job, upload);
        }
        for id in &events.errored {
            let (project, flops_spent) = {
                let task = client.task(*id).expect("errored task exists");
                (task.spec.project, task.progress() * task.spec.usage.peak_flops_on(&*hw))
            };
            if let Some(server) = servers.iter_mut().find(|s| s.id() == project) {
                server.report_errored(*id);
            }
            metrics.record_job_errored(flops_spent);
            obs.job_errored(now, *id, project);
            client.retire(*id);
            assignment.remove(id);
        }
        if !recoveries.is_empty() {
            recoveries.retain_mut(|r| {
                r.targets.retain(|&(id, target)| match client.task(id) {
                    // Still recovering only while the task is live,
                    // healthy, and below its pre-crash progress.
                    Some(t) => !t.is_errored() && t.progress() + 1e-9 < target,
                    None => false,
                });
                if r.targets.is_empty() {
                    let secs = (now - r.start).secs();
                    metrics.record_recovery(secs);
                    obs.recovered(now, secs);
                    false
                } else {
                    true
                }
            });
        }

        if now >= end {
            *done = true;
            return false;
        }

        // 3. Interpret the event.
        let mut need_sched = !events.computed.is_empty() || !events.ready.is_empty();
        match event {
            Event::SchedPoint => {
                need_sched = true;
                queue.push(now + cfg.sched_period, Event::SchedPoint);
            }
            Event::Client { generation: g } => {
                if g == *generation {
                    need_sched = true;
                }
            }
            Event::AvailChange => {
                governor.advance(now);
                // Flap coalescing: absorb every further transition inside
                // the window into this event and evaluate the run state
                // once, after all of them. A host that flaps on/off n
                // times within the window costs one state evaluation
                // instead of n reschedule passes; a flap with zero net
                // delta then falls through to the skip branch below. The
                // cursor (not `now`) must drive the scan: recorded traces
                // and preference-window boundaries are pure functions of
                // the query time that `advance` does not consume, so
                // re-querying from a fixed `now` would never terminate.
                // With nothing to coalesce the cursor stays at `now` and
                // this arm is bit-identical to the uncoalesced path.
                let horizon = now + cfg.avail_coalesce_window;
                let mut cursor = now;
                loop {
                    let t_next = governor.next_change_after(cursor, &scenario.prefs);
                    if !(t_next.is_finite() && t_next <= horizon && t_next < end) {
                        break;
                    }
                    governor.advance(t_next);
                    cursor = t_next;
                    *flaps_coalesced += 1;
                }
                let new_state = governor.run_state(cursor, &scenario.prefs);
                if new_state != *run_state {
                    obs.avail_changed(
                        now,
                        new_state.can_compute,
                        new_state.can_gpu,
                        new_state.net_up,
                    );
                    *run_state = new_state;
                    need_sched = true;
                } else {
                    *avail_resched_skipped += 1;
                }
                // Requeue from the cursor, not `now`: transitions the scan
                // absorbed are already reflected in the state above, and
                // re-firing on them would undo the coalescing for pure
                // trace sources.
                let next = governor.next_change_after(cursor, &scenario.prefs);
                if next.is_finite() && next < end {
                    queue.push(next, Event::AvailChange);
                }
            }
            Event::FetchRetry { generation: g } => {
                if g == *generation {
                    need_sched = true;
                }
            }
            Event::Crash => {
                let outcome = client.crash(now);
                let lost_flops: f64 =
                    outcome.lost.iter().map(|&(id, secs)| secs * client.peak_flops_of(id)).sum();
                metrics.record_crash(lost_flops);
                obs.crashed(
                    now,
                    outcome.lost.len(),
                    outcome.lost.iter().map(|&(_, s)| s).sum::<f64>(),
                    outcome.restarted_transfers,
                );
                if !outcome.lost.is_empty() {
                    // Recovery target: the progress each task had at
                    // the instant of the crash (post-rollback progress
                    // plus what the crash destroyed).
                    let targets = outcome
                        .lost
                        .iter()
                        .map(|&(id, lost)| {
                            let p = client.task(id).map(|t| t.progress()).unwrap_or(0.0);
                            (id, p + lost)
                        })
                        .collect();
                    recoveries.push(RecoveryTracker { start: now, targets });
                }
                need_sched = true;
                if let Some(cp) = crash_proc {
                    let next = cp.next_after(now);
                    if next < end {
                        queue.push(next, Event::Crash);
                    }
                }
            }
        }

        if !need_sched {
            return true;
        }
        *generation += 1;

        // 4. Reschedule and run the fetch loop. The first fetch
        //    decision reuses the snapshot the reschedule was based on
        //    (as the pre-cache code did); later iterations refresh it,
        //    which re-runs the simulation only after an RPC actually
        //    changed the queue.
        let resched = prof.time(sp_resched, || client.reschedule(now, *run_state, on_frac));
        obs.scheduled(now, &resched);
        let mut fetched_any = false;
        let mut first_rpc = true;
        prof.time(sp_rpc, || {
            for _ in 0..cfg.max_rpcs_per_point {
                if !first_rpc {
                    client.rr_refresh(now, *run_state, on_frac);
                }
                first_rpc = false;
                let Some(decision) = client.fetch_decision(now, *run_state, client.rr_snapshot())
                else {
                    // Trace-only forensics: the queue wanted work (some
                    // type shows a shortfall) but no project was
                    // eligible. A disabled sink skips even the check.
                    if obs.tracing() && run_state.net_up {
                        let rr = client.rr_snapshot();
                        let wants = ProcType::ALL.iter().any(|&pt| rr.shortfall[pt] > 1.0);
                        if wants {
                            if let Some((p, until)) = client.next_fetch_unblock_detail(now) {
                                obs.fetch_deferred(now, p, until);
                            }
                        }
                    }
                    break;
                };
                let project = decision.project;
                let mut request = SchedulerRequest::default();
                for pt in ProcType::ALL {
                    request.per_type[pt] = TypeRequest {
                        secs: decision.request.secs[pt],
                        instances: decision.request.instances[pt],
                    };
                }
                let server = servers
                    .iter_mut()
                    .find(|s| s.id() == project)
                    .expect("fetch decision for unknown project");
                server.check_deadlines(now);
                metrics.record_rpc();
                // Transient-fault injection: a lost request never reaches
                // the server (its state is untouched). With no injector
                // this is exactly the seed path.
                let lost_in_transit = rpc_faults.as_mut().is_some_and(|inj| inj.rpc_fails(project));
                let outcome = if lost_in_transit {
                    RpcOutcome::TransientFailure
                } else {
                    server.handle_rpc(now, &request)
                };
                match outcome {
                    RpcOutcome::Reply(reply) => {
                        obs.rpc_reply(
                            now,
                            project,
                            request.per_type[ProcType::Cpu].secs,
                            request.per_type[ProcType::NvidiaGpu].secs
                                + request.per_type[ProcType::AtiGpu].secs,
                            reply.jobs.len(),
                        );
                        let got_jobs = !reply.jobs.is_empty();
                        client.record_reply(now, project, reply.jobs, reply.delay);
                        fetched_any |= got_jobs;
                    }
                    RpcOutcome::Down => {
                        obs.rpc_down(now, project);
                        client.record_rpc_failure(now, project);
                    }
                    RpcOutcome::TransientFailure => {
                        obs.rpc_lost(now, project);
                        let jitter_u = rpc_faults.as_mut().map_or(0.0, |inj| inj.jitter_u(project));
                        client.record_transient_rpc_failure(now, project, jitter_u);
                        metrics.record_transient_rpc_failure();
                    }
                }
            }
        });
        if fetched_any {
            let r2 = prof.time(sp_resched, || client.reschedule(now, *run_state, on_frac));
            obs.scheduled(now, &r2);
        }
        *peak_jobs = (*peak_jobs).max(client.tasks().len());

        // 5. Refresh the timeline instance assignment (only kept up to
        //    date when a timeline is actually recorded) and schedule
        //    the next predicted client event.
        if timeline.is_some() {
            update_assignment(assignment, client, instances);
        }
        if let Some(t_next) = client.next_event_after(now) {
            // Enforce a minimum event granularity: predicted completion
            // times can round to `now` itself in f64 (a sub-picosecond
            // transfer residue at t ~ 10^4 s), which would stall the
            // clock with same-instant events. One millisecond is far
            // below anything the policies can observe.
            let t_next = t_next.max(now + SimDuration::from_secs(1e-3));
            if t_next <= end {
                queue.push(t_next, Event::Client { generation: *generation });
            }
        }
        if let Some(t_unblock) = client.next_fetch_unblock(now) {
            if t_unblock <= end {
                queue.push(t_unblock, Event::FetchRetry { generation: *generation });
            }
        }
        true
    }

    /// Produce the result and hand the reusable buffers (client scratch,
    /// event queue, per-project scratch) back to the arena.
    fn finalize(mut self, emu: &Emulator, arena: &mut EmulatorArena) -> EmulationResult {
        let scenario = &*emu.scenario;
        let merit = self.metrics.finalize(&self.shares);
        let total_used = self.metrics.total_flops_used();
        let projects: Vec<ProjectReport> = scenario
            .projects
            .iter()
            .map(|p| {
                let server = self.servers.iter().find(|s| s.id() == p.id).expect("server");
                let share_sum: f64 = scenario.projects.iter().map(|q| q.resource_share).sum();
                let flops_used = self.metrics.flops_used_by(p.id);
                ProjectReport {
                    id: p.id,
                    name: p.name.clone(),
                    share_frac: if share_sum > 0.0 { p.resource_share / share_sum } else { 0.0 },
                    used_frac: if total_used > 0.0 { flops_used / total_used } else { 0.0 },
                    flops_used,
                    jobs_completed: server.stats().reported_in_time + server.stats().reported_late,
                    jobs_missed_deadline: server.stats().reported_late,
                    rpcs: server.stats().rpcs + server.stats().failed_rpcs,
                }
            })
            .collect();

        let rr = self.client.rr_stats();
        let perf = PerfStats {
            events_processed: self.events_processed,
            peak_jobs: self.peak_jobs,
            rr_queries: rr.queries,
            rr_runs: rr.runs,
            rr_frozen: rr.frozen,
            flaps_coalesced: self.flaps_coalesced,
            avail_resched_skipped: self.avail_resched_skipped,
        };
        let jobs_unfinished =
            self.client.tasks().iter().filter(|t| !t.is_complete()).count() as u64;
        // Hand the working buffers back to the arena for the next run.
        arena.client = Some(self.client.into_scratch());
        arena.queue = self.queue;
        arena.per_project = self.per_project;
        let fault_metrics = self.metrics.fault_metrics();
        let metrics_snapshot = self.metrics.export_snapshot(&merit, &fault_metrics, &perf);
        if let Some(start) = self.run_start {
            let sp_total = self.prof.span("emu.total");
            self.prof.add_wall_nanos(sp_total, start.elapsed().as_nanos());
        }
        let (log, trace) = self.obs.finish();

        EmulationResult {
            scenario_name: scenario.name.clone(),
            merit,
            projects,
            jobs_completed: self.metrics.jobs_completed(),
            jobs_missed_deadline: self.metrics.jobs_missed(),
            jobs_unfinished,
            available_fraction: self.metrics.available_fraction(),
            total_flops_used: total_used,
            duration: emu.cfg.duration,
            faults: fault_metrics,
            perf,
            timeline: self.timeline,
            log,
            metrics: metrics_snapshot,
            trace,
            profile: emu.cfg.profile.then(|| self.prof.report()),
        }
    }

    /// Capture the complete deterministic state of the run at the current
    /// event boundary. Wall-clock instruments (profiler, trace buffer)
    /// are excluded: they are not part of the determinism contract.
    fn capture(&self, emu: &Emulator) -> CheckpointState {
        let scenario = &*emu.scenario;
        let (host, user, net) = self.governor.sources();
        let (queue, queue_next_seq) = self.queue.snapshot();
        CheckpointState {
            scenario_name: scenario.name.clone(),
            seed: scenario.seed,
            duration: emu.cfg.duration,
            now: self.now,
            generation: self.generation,
            events_processed: self.events_processed,
            peak_jobs: self.peak_jobs as u64,
            flaps_coalesced: self.flaps_coalesced,
            avail_resched_skipped: self.avail_resched_skipped,
            finished: self.done,
            run_state: self.run_state,
            queue,
            queue_next_seq,
            avail: [avail_source_state(host), avail_source_state(user), avail_source_state(net)],
            servers: self.servers.iter().map(|s| (s.id(), s.snapshot())).collect(),
            client: self.client.snapshot(),
            rpc_fault_streams: self.rpc_faults.as_ref().map(|inj| inj.streams().to_vec()),
            crash_rng: self.crash_proc.as_ref().map(|cp| cp.rng().clone()),
            recoveries: self.recoveries.iter().map(|r| (r.start, r.targets.clone())).collect(),
            metrics: self.metrics.snapshot(),
            log: (emu.cfg.log_capacity > 0)
                .then(|| (self.obs.log.entries().to_vec(), self.obs.log.dropped())),
            timeline: self.timeline.as_ref().map(|tl| {
                tl.tracks().iter().map(|tr| (tr.instance, tr.segments().to_vec())).collect()
            }),
            assignment: self.assignment.iter().map(|(j, v)| (*j, v.clone())).collect(),
        }
    }
}

fn avail_source_state(src: &AvailSource) -> Option<(Rng, bool, SimTime)> {
    match src {
        AvailSource::Process(p) => Some(p.snapshot()),
        AvailSource::Trace(_) => None,
    }
}

fn restore_avail_source(
    src: &mut AvailSource,
    saved: &Option<(Rng, bool, SimTime)>,
) -> Result<(), CheckpointError> {
    match (src, saved) {
        (AvailSource::Process(p), Some((rng, state, next))) => {
            *p = OnOffProcess::from_parts(*p.spec(), rng.clone(), *state, *next);
            Ok(())
        }
        (AvailSource::Trace(_), None) => Ok(()),
        _ => Err(CheckpointError::ConfigMismatch("availability source kind".into())),
    }
}

/// Greedy stable instance assignment for the timeline: running jobs keep
/// their instances; new jobs take free ones.
fn update_assignment(
    assignment: &mut BTreeMap<JobId, Vec<InstanceId>>,
    client: &Client,
    instances: &[InstanceId],
) {
    let running: Vec<&bce_client::Task> =
        client.tasks().iter().filter(|t| t.is_running()).collect();
    // Drop assignments of no-longer-running jobs.
    let running_ids: std::collections::BTreeSet<JobId> =
        running.iter().map(|t| t.spec.id).collect();
    assignment.retain(|id, _| running_ids.contains(id));
    let mut taken: std::collections::BTreeSet<InstanceId> =
        assignment.values().flatten().copied().collect();
    for task in running {
        if assignment.contains_key(&task.spec.id) {
            continue;
        }
        let mut want: Vec<(ProcType, u32)> = Vec::new();
        match task.spec.usage.coproc {
            Some((t, n)) => want.push((t, (n.ceil() as u32).max(1))),
            None => want.push((ProcType::Cpu, (task.spec.usage.avg_cpus.round() as u32).max(1))),
        }
        let mut assigned = Vec::new();
        for (t, n) in want {
            let mut taken_count = 0;
            for inst in instances.iter().filter(|i| i.proc_type == t) {
                if taken_count >= n {
                    break;
                }
                if !taken.contains(inst) {
                    taken.insert(*inst);
                    assigned.push(*inst);
                    taken_count += 1;
                }
            }
        }
        assignment.insert(task.spec.id, assigned);
    }
}

/// Record one interval into the timeline.
fn record_timeline(
    timeline: &mut Timeline,
    client: &Client,
    assignment: &BTreeMap<JobId, Vec<InstanceId>>,
    from: SimTime,
    to: SimTime,
    run_state: HostRunState,
    instances: &[InstanceId],
) {
    let mut busy: BTreeMap<InstanceId, (ProjectId, JobId)> = BTreeMap::new();
    for task in client.tasks().iter().filter(|t| t.is_running()) {
        if let Some(assigned) = assignment.get(&task.spec.id) {
            for inst in assigned {
                busy.insert(*inst, (task.spec.project, task.spec.id));
            }
        }
    }
    for inst in instances {
        let occ = match busy.get(inst) {
            Some(&(project, job)) => Occupancy::Busy { project, job },
            None => {
                let allowed =
                    if inst.proc_type.is_gpu() { run_state.can_gpu } else { run_state.can_compute };
                if allowed {
                    Occupancy::Idle
                } else {
                    Occupancy::Unavailable
                }
            }
        };
        if let Some(track) = timeline.track_mut(*inst) {
            track.record(from, to, occ);
        }
    }
}

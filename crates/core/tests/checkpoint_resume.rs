//! Checkpoint/restore differential tests: capturing a run mid-flight and
//! resuming it — in-process or through the serialized XML document, even
//! across a simulated process restart — must produce a result whose
//! [`EmulationResult::bit_fingerprint`] equals the uninterrupted run's.
//! This is the determinism contract the crash-safe executor builds on.

use bce_avail::{AvailSpec, OnOffSpec};
use bce_client::ClientConfig;
use bce_core::{
    CheckpointError, CheckpointState, EmulationResult, Emulator, EmulatorArena, EmulatorConfig,
    FaultConfig, Scenario, ScenarioBuilder,
};
use bce_sim::Level;
use bce_types::{AppClass, Hardware, ProcType, ProjectSpec, SimDuration, SimTime};
use proptest::prelude::*;

fn cpu_scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new(format!("ckpt-cpu-{seed}"), Hardware::cpu_only(2, 1.5e9))
        .seed(seed)
        .avail(AvailSpec {
            host: OnOffSpec::duty_cycle(0.8, SimDuration::from_hours(3.0)),
            user_active: OnOffSpec::duty_cycle(0.3, SimDuration::from_hours(5.0)),
            network: OnOffSpec::duty_cycle(0.9, SimDuration::from_hours(7.0)),
        })
        .project(ProjectSpec::new(0, "alpha", 100.0).with_app(AppClass::cpu(
            0,
            SimDuration::from_secs(900.0),
            SimDuration::from_hours(6.0),
        )))
        .project(ProjectSpec::new(1, "beta", 300.0).with_app(AppClass::cpu(
            1,
            SimDuration::from_secs(1400.0),
            SimDuration::from_hours(12.0),
        )))
        .build_unchecked()
}

fn gpu_scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new(
        format!("ckpt-gpu-{seed}"),
        Hardware::cpu_only(4, 2e9).with_group(ProcType::NvidiaGpu, 1, 1e10),
    )
    .seed(seed)
    .project(
        ProjectSpec::new(0, "mixed", 100.0)
            .with_app(AppClass::gpu(
                0,
                ProcType::NvidiaGpu,
                SimDuration::from_secs(700.0),
                SimDuration::from_hours(8.0),
            ))
            .with_app(AppClass::cpu(
                1,
                SimDuration::from_secs(2000.0),
                SimDuration::from_hours(8.0),
            )),
    )
    .build_unchecked()
}

fn bare_cfg() -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_hours(18.0), ..Default::default() }
}

/// Every optional subsystem on: faults (RPC + transfer + crashes),
/// message log, timeline, typed trace. Restore must reproduce all of it.
fn observed_cfg() -> EmulatorConfig {
    let mut faults = FaultConfig::with_failure_rate(0.1);
    faults.crash_mtbf = Some(SimDuration::from_hours(9.0));
    EmulatorConfig {
        duration: SimDuration::from_hours(18.0),
        log_capacity: 50_000,
        log_level: Level::Debug,
        record_timeline: true,
        trace_capacity: 50_000,
        faults,
        ..Default::default()
    }
}

fn assert_same(resumed: &EmulationResult, straight: &EmulationResult, what: &str) {
    assert_eq!(
        resumed.bit_fingerprint(),
        straight.bit_fingerprint(),
        "{what}: resumed run diverged from the uninterrupted run"
    );
}

#[test]
fn resume_is_bit_identical_across_configs_and_instants() {
    let client = ClientConfig::default();
    let cases: Vec<(Scenario, EmulatorConfig)> = vec![
        (cpu_scenario(11), bare_cfg()),
        (cpu_scenario(11), observed_cfg()),
        (gpu_scenario(7), bare_cfg()),
        (gpu_scenario(7), observed_cfg()),
    ];
    for (scenario, cfg) in cases {
        let emu = Emulator::new(scenario.clone(), client, cfg);
        let straight = emu.run();
        for hours in [0.0, 0.5, 4.0, 11.3, 17.9, 30.0] {
            let at = SimTime::from_secs(hours * 3600.0);
            let ckpt = emu.checkpoint_at(at);
            let resumed = emu.resume(&ckpt).expect("restore own checkpoint");
            assert_same(&resumed, &straight, &format!("{} at {hours}h", scenario.name));
        }
    }
}

#[test]
fn serialized_checkpoint_resumes_bit_identically() {
    // Round-trip through the XML document — the same path a process
    // restart takes — and through an actual file written atomically.
    let client = ClientConfig::default();
    for (scenario, cfg) in [(cpu_scenario(3), observed_cfg()), (gpu_scenario(4), bare_cfg())] {
        let emu = Emulator::new(scenario.clone(), client, cfg);
        let straight = emu.run();
        let ckpt = emu.checkpoint_at(SimTime::from_secs(6.5 * 3600.0));

        let doc = ckpt.to_xml_string();
        let parsed = CheckpointState::from_xml_str(&doc).expect("parse own serialization");
        let resumed = emu.resume(&parsed).expect("resume parsed checkpoint");
        assert_same(&resumed, &straight, &format!("{} via XML", scenario.name));
        // The format itself is stable: re-serializing the parsed state
        // reproduces the document byte-for-byte.
        assert_eq!(parsed.to_xml_string(), doc, "serialization is not canonical");

        let path = std::env::temp_dir().join(format!("bce-test-{}.ckpt", scenario.name));
        ckpt.write_atomic(&path).expect("atomic write");
        let read = CheckpointState::read_from(&path).expect("read checkpoint file");
        let _ = std::fs::remove_file(&path);
        let resumed = emu.resume(&read).expect("resume file checkpoint");
        assert_same(&resumed, &straight, &format!("{} via file", scenario.name));
    }
}

#[test]
fn periodic_checkpoint_sink_observes_and_preserves_the_run() {
    let client = ClientConfig::default();
    let emu = Emulator::new(cpu_scenario(21), client, observed_cfg());
    let straight = emu.run();
    let mut ckpts: Vec<CheckpointState> = Vec::new();
    let result =
        emu.run_with_checkpoints_in(&mut EmulatorArena::new(), SimDuration::from_hours(4.0), |c| {
            ckpts.push(c.clone());
        });
    assert_same(&result, &straight, "run_with_checkpoints result");
    assert!(
        ckpts.len() >= 3,
        "expected a checkpoint roughly every 4h of an 18h run, got {}",
        ckpts.len()
    );
    let mut last = SimTime::ZERO;
    for (i, ckpt) in ckpts.iter().enumerate() {
        assert!(ckpt.now() >= last, "checkpoint times must be monotone");
        last = ckpt.now();
        let resumed = emu.resume(ckpt).expect("resume periodic checkpoint");
        assert_same(&resumed, &straight, &format!("periodic checkpoint {i}"));
    }
}

#[test]
fn checkpoint_reuses_arena_without_contamination() {
    // checkpoint_at_in / resume_in through one shared arena must match
    // the fresh-state paths exactly, and leave the arena reusable.
    let client = ClientConfig::default();
    let mut arena = EmulatorArena::new();
    for seed in [1u64, 2, 3] {
        let emu = Emulator::new(cpu_scenario(seed), client, observed_cfg());
        let straight = emu.run();
        let ckpt = emu.checkpoint_at_in(SimTime::from_secs(9.0 * 3600.0), &mut arena);
        let resumed = emu.resume_in(&ckpt, &mut arena).expect("resume in arena");
        assert_same(&resumed, &straight, &format!("arena path seed {seed}"));
    }
}

/// Checkpoints taken *inside* a frozen-progress window — progress-class
/// dirt accumulated, the retained RR snapshot still being served — must
/// resume bit-identically: the dirty tracker, frozen window and retained
/// snapshot all survive the XML round trip, so the resumed run serves the
/// same frozen hits the uninterrupted run did. A dense instant sweep
/// guarantees some checkpoints land mid-window; the test asserts it
/// actually witnessed at least one.
#[test]
fn resume_mid_dirty_window_is_bit_identical() {
    let client = ClientConfig::default();
    let emu = Emulator::new(cpu_scenario(17), client, bare_cfg());
    let straight = emu.run();
    let mut saw_mid_dirty = 0u32;
    // Every ~13 min across the first 6 hours: jobs run 900–1400 s, so
    // many instants fall between a task start and its completion, where
    // progress dirt is pending and the frozen window is open.
    for minutes in (0..360).step_by(13) {
        let at = SimTime::from_secs(minutes as f64 * 60.0);
        let ckpt = emu.checkpoint_at(at);
        if ckpt.rr_dirt_class() == bce_client::DirtClass::Progress
            && ckpt.rr_frozen_until() > ckpt.now()
        {
            saw_mid_dirty += 1;
        }
        let doc = ckpt.to_xml_string();
        let parsed = CheckpointState::from_xml_str(&doc).expect("parse mid-dirty checkpoint");
        let resumed = emu.resume(&parsed).expect("resume mid-dirty checkpoint");
        assert_same(&resumed, &straight, &format!("mid-dirty resume at {minutes}min"));
    }
    assert!(
        saw_mid_dirty >= 3,
        "sweep never landed inside a dirty frozen window ({saw_mid_dirty}); \
         the test is not exercising the mid-dirty path"
    );
}

#[test]
fn mismatched_scenario_or_config_is_rejected() {
    let client = ClientConfig::default();
    let emu = Emulator::new(cpu_scenario(5), client, bare_cfg());
    let ckpt = emu.checkpoint_at(SimTime::from_secs(3600.0));

    let other = Emulator::new(cpu_scenario(6), client, bare_cfg());
    assert!(matches!(other.resume(&ckpt), Err(CheckpointError::ScenarioMismatch { .. })));

    let longer = EmulatorConfig { duration: SimDuration::from_hours(30.0), ..Default::default() };
    let other = Emulator::new(cpu_scenario(5), client, longer);
    assert!(matches!(other.resume(&ckpt), Err(CheckpointError::ConfigMismatch(_))));

    let faulty = EmulatorConfig {
        duration: SimDuration::from_hours(18.0),
        faults: FaultConfig::with_failure_rate(0.1),
        ..Default::default()
    };
    let other = Emulator::new(cpu_scenario(5), client, faulty);
    assert!(matches!(other.resume(&ckpt), Err(CheckpointError::ConfigMismatch(_))));
}

#[test]
fn corrupt_checkpoint_documents_error_and_never_panic() {
    let emu = Emulator::new(cpu_scenario(9), ClientConfig::default(), observed_cfg());
    let doc = emu.checkpoint_at(SimTime::from_secs(5.0 * 3600.0)).to_xml_string();

    // Every strict prefix (truncation at any byte on a char boundary)
    // must return Err — the envelope or a required field is incomplete.
    let solid = doc.trim_end();
    for cut in (0..solid.len()).step_by(97).chain([solid.len() - 1]) {
        if !doc.is_char_boundary(cut) {
            continue;
        }
        assert!(
            CheckpointState::from_xml_str(&doc[..cut]).is_err(),
            "truncation at byte {cut} parsed successfully"
        );
    }
    // Whole-document mutations: wrong root, bad version, mangled numbers.
    assert!(CheckpointState::from_xml_str("").is_err());
    assert!(CheckpointState::from_xml_str("<client_state version=\"1\"/>").is_err());
    assert!(doc.contains("version=\"2\""), "format version changed; update this test");
    assert!(
        CheckpointState::from_xml_str(&doc.replacen("version=\"2\"", "version=\"99\"", 1)).is_err()
    );
    // v1 documents predate the RR dirty-tracking state and must be
    // rejected rather than resumed with silently-reset cache state.
    assert!(
        CheckpointState::from_xml_str(&doc.replacen("version=\"2\"", "version=\"1\"", 1)).is_err()
    );
    let mangled = doc.replacen("seed=\"9\"", "seed=\"nine\"", 1);
    assert!(CheckpointState::from_xml_str(&mangled).is_err());
    let mangled = doc.replacen("<queue", "<kueue", 1);
    assert!(CheckpointState::from_xml_str(&mangled).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// For random scenario shapes and a random checkpoint instant, the
    /// full pipeline — checkpoint → serialize → parse → restore → run to
    /// completion — is bit-identical to the uninterrupted run, with
    /// faults and observation both on and off.
    #[test]
    fn random_checkpoint_roundtrips_bit_identically(
        seed in 0u64..1000,
        ncpus in 1u32..4,
        share in 1.0f64..900.0,
        job_secs in 500.0f64..4000.0,
        at_frac in 0.0f64..1.1,
        observed in any::<bool>(),
    ) {
        let scenario = ScenarioBuilder::new(
            format!("ckpt-prop-{seed}"),
            Hardware::cpu_only(ncpus, 1.5e9),
        )
        .seed(seed)
        .avail(AvailSpec {
            host: OnOffSpec::duty_cycle(0.75, SimDuration::from_hours(2.0)),
            user_active: OnOffSpec::AlwaysOff,
            network: OnOffSpec::AlwaysOn,
        })
        .project(ProjectSpec::new(0, "alpha", 100.0).with_app(AppClass::cpu(
            0,
            SimDuration::from_secs(job_secs),
            SimDuration::from_hours(6.0),
        )))
        .project(ProjectSpec::new(1, "beta", share).with_app(AppClass::cpu(
            1,
            SimDuration::from_secs(1100.0),
            SimDuration::from_hours(10.0),
        )))
        .build_unchecked();
        let cfg = if observed {
            EmulatorConfig { duration: SimDuration::from_hours(12.0), ..observed_cfg() }
        } else {
            EmulatorConfig { duration: SimDuration::from_hours(12.0), ..Default::default() }
        };
        let emu = Emulator::new(scenario, ClientConfig::default(), cfg);
        let straight = emu.run();
        let at = SimTime::from_secs(at_frac * 12.0 * 3600.0);
        let ckpt = emu.checkpoint_at(at);
        let doc = ckpt.to_xml_string();
        let parsed = CheckpointState::from_xml_str(&doc).expect("parse");
        let resumed = emu.resume(&parsed).expect("resume");
        prop_assert_eq!(resumed.bit_fingerprint(), straight.bit_fingerprint());
    }
}

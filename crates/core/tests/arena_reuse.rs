//! Arena-reuse differential tests: running an emulation through a
//! recycled [`EmulatorArena`] must be bit-identical to running it through
//! a fresh one, whatever ran through the arena before. This is the
//! correctness contract that lets the population executor keep one arena
//! per worker across an unbounded stream of runs.

use bce_client::{ClientConfig, FetchPolicy, JobSchedPolicy};
use bce_core::{
    EmulationResult, Emulator, EmulatorArena, EmulatorConfig, FaultConfig, Scenario,
    ScenarioBuilder,
};
use bce_sim::Level;
use bce_types::{AppClass, Hardware, Preferences, ProcType, ProjectSpec, SimDuration};

fn cpu_scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new(format!("arena-cpu-{seed}"), Hardware::cpu_only(2, 1.5e9))
        .seed(seed)
        .project(ProjectSpec::new(0, "alpha", 100.0).with_app(AppClass::cpu(
            0,
            SimDuration::from_secs(900.0),
            SimDuration::from_hours(6.0),
        )))
        .project(ProjectSpec::new(1, "beta", 300.0).with_app(AppClass::cpu(
            1,
            SimDuration::from_secs(1400.0),
            SimDuration::from_hours(12.0),
        )))
        .build_unchecked()
}

fn gpu_scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new(
        format!("arena-gpu-{seed}"),
        Hardware::cpu_only(4, 2e9).with_group(ProcType::NvidiaGpu, 1, 1e10),
    )
    .seed(seed)
    .prefs(Preferences { max_ncpus_frac: 0.75, ..Default::default() })
    .project(
        ProjectSpec::new(0, "mixed", 100.0)
            .with_app(AppClass::gpu(
                0,
                ProcType::NvidiaGpu,
                SimDuration::from_secs(700.0),
                SimDuration::from_hours(8.0),
            ))
            .with_app(AppClass::cpu(
                1,
                SimDuration::from_secs(2000.0),
                SimDuration::from_hours(8.0),
            )),
    )
    .build_unchecked()
}

fn observed_cfg() -> EmulatorConfig {
    // Everything on: message log, timeline, faults — the arena must
    // recycle cleanly even with every optional subsystem active.
    let mut faults = FaultConfig::with_failure_rate(0.1);
    faults.crash_mtbf = Some(SimDuration::from_hours(9.0));
    EmulatorConfig {
        duration: SimDuration::from_hours(18.0),
        log_capacity: 50_000,
        log_level: Level::Debug,
        record_timeline: true,
        faults,
        ..Default::default()
    }
}

fn bare_cfg() -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_hours(18.0), ..Default::default() }
}

fn fresh(scenario: Scenario, client: ClientConfig, cfg: EmulatorConfig) -> EmulationResult {
    Emulator::new(scenario, client, cfg).run()
}

#[test]
fn reused_arena_is_bit_identical_to_fresh() {
    let client = ClientConfig::default();
    let mut arena = EmulatorArena::new();
    // Same emulation three times through the same arena: every pass must
    // match a fresh-arena run exactly.
    let baseline = fresh(cpu_scenario(11), client, bare_cfg());
    for pass in 0..3 {
        let r = Emulator::new(cpu_scenario(11), client, bare_cfg()).run_in(&mut arena);
        assert_eq!(
            r.bit_fingerprint(),
            baseline.bit_fingerprint(),
            "pass {pass} through reused arena diverged"
        );
    }
}

#[test]
fn dirty_arena_does_not_leak_into_next_run() {
    // Run a sequence of *different* scenarios (different hardware, GPU
    // apps, preferences, policies) through one arena; each result must be
    // identical to a fresh-arena run of the same spec. This catches any
    // state the arena fails to clear: queue entries, task buffers, RR
    // scratch, per-project accumulators, log entries.
    let specs: Vec<(Scenario, ClientConfig)> = vec![
        (cpu_scenario(1), ClientConfig::default()),
        (
            gpu_scenario(2),
            ClientConfig { sched_policy: JobSchedPolicy::LOCAL, ..Default::default() },
        ),
        (cpu_scenario(3), ClientConfig { fetch_policy: FetchPolicy::Orig, ..Default::default() }),
        (gpu_scenario(4), ClientConfig { sched_policy: JobSchedPolicy::WRR, ..Default::default() }),
        (cpu_scenario(1), ClientConfig::default()), // repeat of the first
    ];
    let mut arena = EmulatorArena::new();
    for (i, (scenario, client)) in specs.iter().enumerate() {
        let reused = Emulator::new(scenario.clone(), *client, bare_cfg()).run_in(&mut arena);
        let baseline = fresh(scenario.clone(), *client, bare_cfg());
        assert_eq!(
            reused.bit_fingerprint(),
            baseline.bit_fingerprint(),
            "spec {i} ({}) diverged after arena was dirtied",
            scenario.name
        );
    }
}

#[test]
fn arena_reuse_with_log_timeline_and_faults() {
    // The observability + fault paths allocate the most per run (log
    // entries, timeline segments, fault RNG streams); they too must be
    // bit-stable under reuse, including the rendered log text.
    let client = ClientConfig::default();
    let mut arena = EmulatorArena::new();
    for scenario_seed in [5u64, 6, 7] {
        let reused =
            Emulator::new(cpu_scenario(scenario_seed), client, observed_cfg()).run_in(&mut arena);
        let baseline = fresh(cpu_scenario(scenario_seed), client, observed_cfg());
        assert_eq!(reused.bit_fingerprint(), baseline.bit_fingerprint());
        assert_eq!(reused.log.render(), baseline.log.render());
        // Hand the log buffer back so the next pass actually recycles it.
        arena.reclaim(reused);
    }
}

#[test]
fn run_is_run_in_with_a_throwaway_arena() {
    let r1 = Emulator::new(gpu_scenario(9), ClientConfig::default(), observed_cfg()).run();
    let r2 = Emulator::new(gpu_scenario(9), ClientConfig::default(), observed_cfg())
        .run_in(&mut EmulatorArena::new());
    assert_eq!(r1.bit_fingerprint(), r2.bit_fingerprint());
}

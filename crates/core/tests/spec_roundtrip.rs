//! Property test for the JSON scenario format: any scenario the builder
//! can produce must survive `Scenario -> ScenarioSpec -> canonical JSON ->
//! ScenarioSpec -> Scenario` unchanged — the canonical text is a fixed
//! point, and the reloaded scenario drives the emulator to a bit-identical
//! [`bce_core::EmulationResult::bit_fingerprint`]. This is the determinism
//! contract that lets `scenarios/*.json` golden files stand in for the
//! builtin constructors.

use bce_avail::{AvailSpec, AvailTrace, OnOffSpec};
use bce_client::{ClientConfig, NetworkModel};
use bce_core::spec::ScenarioSpec;
use bce_core::{Emulator, EmulatorConfig, Scenario, ScenarioBuilder};
use bce_types::{
    AppClass, DailyWindow, Hardware, Preferences, ProjectSpec, SimDuration, SimTime, WorkSupply,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SpecParams {
    seed: u64,
    ncpus: u32,
    flops: f64,
    nprojects: usize,
    shares: Vec<f64>,
    runtimes: Vec<f64>,
    slack: f64,
    batch_supply: bool,
    window: Option<(u32, u32)>,
    host: u8,
    user_active: u8,
    traced: bool,
    networked: bool,
}

fn onoff(code: u8) -> OnOffSpec {
    match code % 3 {
        0 => OnOffSpec::AlwaysOn,
        1 => OnOffSpec::AlwaysOff,
        _ => OnOffSpec::Exponential {
            up_mean: SimDuration::from_hours(3.0),
            down_mean: SimDuration::from_hours(1.0),
            start_on: code.is_multiple_of(2),
        },
    }
}

fn params() -> impl Strategy<Value = SpecParams> {
    (
        (
            any::<u64>(),
            1u32..4,
            5e8f64..4e9,
            1usize..4,
            proptest::collection::vec(10.0f64..500.0, 3),
            proptest::collection::vec(300.0f64..3000.0, 3),
            2.0f64..24.0,
        ),
        (
            any::<bool>(),
            proptest::option::of((0u32..43200, 43200u32..86400)),
            0u8..6,
            0u8..6,
            any::<bool>(),
            any::<bool>(),
        ),
    )
        .prop_map(
            |(
                (seed, ncpus, flops, nprojects, shares, runtimes, slack),
                (batch_supply, window, host, user_active, traced, networked),
            )| SpecParams {
                seed,
                ncpus,
                flops,
                nprojects,
                shares,
                runtimes,
                slack,
                batch_supply,
                window,
                host,
                user_active,
                traced,
                networked,
            },
        )
}

fn build(p: &SpecParams) -> Scenario {
    let mut prefs = Preferences::default();
    if let Some((start, end)) = p.window {
        prefs.compute_window = Some(DailyWindow { start_sec: start as f64, end_sec: end as f64 });
    }
    let mut b = ScenarioBuilder::new("spec-prop", Hardware::cpu_only(p.ncpus, p.flops))
        .seed(p.seed)
        .prefs(prefs)
        .avail(AvailSpec {
            host: onoff(p.host),
            user_active: onoff(p.user_active),
            network: OnOffSpec::AlwaysOn,
        });
    for i in 0..p.nprojects {
        let runtime = p.runtimes[i % p.runtimes.len()];
        let mut spec = ProjectSpec::new(i as u32, format!("p{i}"), p.shares[i % p.shares.len()])
            .with_app(
                AppClass::cpu(
                    i as u32,
                    SimDuration::from_secs(runtime),
                    SimDuration::from_secs(runtime * p.slack),
                )
                .with_cv(0.1),
            );
        if p.batch_supply && i == 0 {
            spec = spec.with_supply(WorkSupply::Batch { njobs: 50 });
        }
        b = b.project(spec);
    }
    if p.traced {
        b = b.host_trace(AvailTrace::new(
            true,
            vec![(SimTime::from_secs(3600.0), false), (SimTime::from_secs(7200.0), true)],
        ));
    }
    if p.networked {
        b = b.network(NetworkModel::symmetric(1e6));
    }
    b.build().expect("generated scenario is valid")
}

fn fingerprint(s: Scenario) -> u64 {
    let cfg = EmulatorConfig { duration: SimDuration::from_hours(3.0), ..Default::default() };
    Emulator::new(s, ClientConfig::default(), cfg).run().bit_fingerprint()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    #[test]
    fn scenario_spec_roundtrip_is_bit_identical(p in params()) {
        let original = build(&p);
        let spec = ScenarioSpec::from_scenario(&original);
        let json = spec.to_canonical_json();

        // Canonical text is a fixed point of parse -> print.
        let reparsed = ScenarioSpec::parse(&json).expect("canonical output reparses");
        prop_assert_eq!(reparsed.to_canonical_json(), json);

        // The reloaded scenario is value-identical where it matters: it
        // must drive the emulator to the same bit fingerprint.
        let (reloaded, faults) = reparsed.build().expect("reloaded spec validates");
        prop_assert!(faults.is_none());
        prop_assert_eq!(fingerprint(original), fingerprint(reloaded));
    }
}

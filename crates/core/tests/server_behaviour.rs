//! End-to-end behaviour of the server-side models: downtime, sporadic
//! work supply, finite batches, and the client's RPC backoff.

use bce_client::ClientConfig;
use bce_core::{Emulator, EmulatorConfig, Scenario, ScenarioBuilder};
use bce_types::{AppClass, Hardware, ProjectSpec, ServerUptime, SimDuration, WorkSupply};

fn project(id: u32, name: &str) -> ProjectSpec {
    ProjectSpec::new(id, name, 100.0).with_app(
        AppClass::cpu(0, SimDuration::from_secs(1000.0), SimDuration::from_hours(8.0)).with_cv(0.0),
    )
}

fn scenario(projects: Vec<ProjectSpec>) -> Scenario {
    let mut b = ScenarioBuilder::new("server-behaviour", Hardware::cpu_only(1, 1e9)).seed(23);
    for p in projects {
        b = b.project(p);
    }
    b.build_unchecked()
}

fn cfg(days: f64) -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_days(days), ..Default::default() }
}

#[test]
fn batch_project_runs_dry_and_other_takes_over() {
    let batch = project(0, "batch").with_supply(WorkSupply::Batch { njobs: 10 });
    let steady = project(1, "steady");
    let r = Emulator::new(scenario(vec![batch, steady]), ClientConfig::default(), cfg(2.0)).run();
    let batch_report = &r.projects[0];
    let steady_report = &r.projects[1];
    assert_eq!(batch_report.jobs_completed, 10, "batch must fully drain");
    // The steady project absorbs the freed capacity: ~160 more jobs.
    assert!(steady_report.jobs_completed > 120, "steady got {}", steady_report.jobs_completed);
    // CPU never idles for long.
    assert!(r.merit.idle_fraction < 0.05, "idle {:.3}", r.merit.idle_fraction);
}

#[test]
fn fully_down_server_yields_nothing_but_client_survives() {
    let down = project(0, "down").with_uptime(ServerUptime::Sporadic {
        up_mean: SimDuration::from_secs(1.0),
        down_mean: SimDuration::from_secs(1e12),
    });
    let steady = project(1, "steady");
    let r = Emulator::new(scenario(vec![down, steady]), ClientConfig::default(), cfg(1.0)).run();
    // The down project provides at most the first RPC's batch (the server
    // starts up and dies ~1 s in).
    assert!(r.projects[0].jobs_completed <= 6, "{}", r.projects[0].jobs_completed);
    assert!(r.projects[1].jobs_completed > 70);
    // Backoff keeps the client from hammering the dead server: the failed
    // RPC count stays far below one per scheduling period (1440/day).
    assert!(
        r.projects[0].rpcs < 100,
        "backoff should bound RPCs to a dead server, got {}",
        r.projects[0].rpcs
    );
}

#[test]
fn sporadic_supply_reduces_but_does_not_kill_throughput() {
    let sporadic = project(0, "sporadic").with_supply(WorkSupply::Sporadic {
        work_mean: SimDuration::from_hours(2.0),
        dry_mean: SimDuration::from_hours(2.0),
    });
    let r_sporadic =
        Emulator::new(scenario(vec![sporadic]), ClientConfig::default(), cfg(2.0)).run();
    let r_steady =
        Emulator::new(scenario(vec![project(0, "steady")]), ClientConfig::default(), cfg(2.0))
            .run();
    assert!(r_sporadic.jobs_completed > 0);
    assert!(
        r_sporadic.jobs_completed < r_steady.jobs_completed,
        "sporadic {} vs steady {}",
        r_sporadic.jobs_completed,
        r_steady.jobs_completed
    );
    // The queue bridges some dry periods: throughput stays above the
    // naive 50% duty cycle.
    assert!(
        r_sporadic.jobs_completed as f64 > 0.5 * r_steady.jobs_completed as f64,
        "queue should bridge dry spells: {} vs {}",
        r_sporadic.jobs_completed,
        r_steady.jobs_completed
    );
}

#[test]
fn flaky_server_recovers_between_outages() {
    let flaky = project(0, "flaky").with_uptime(ServerUptime::Sporadic {
        up_mean: SimDuration::from_hours(4.0),
        down_mean: SimDuration::from_hours(1.0),
    });
    let r = Emulator::new(scenario(vec![flaky]), ClientConfig::default(), cfg(2.0)).run();
    // Still does most of the steady-state work (queue + backoff recovery).
    assert!(r.jobs_completed > 100, "{}", r.jobs_completed);
}

#[test]
fn sporadic_gpu_job_supply_falls_back_to_cpu() {
    // §6.2: "the sporadic availability of particular types of jobs (for
    // example, GPU jobs)". One project supplies CPU jobs always and GPU
    // jobs only half the time; the GPU idles during dry spells but the
    // CPU stays busy.
    use bce_types::ProcType;
    let hw = Hardware::cpu_only(1, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10);
    let mk = |sporadic: bool| {
        let mut gpu_app = AppClass::gpu(
            1,
            ProcType::NvidiaGpu,
            SimDuration::from_secs(500.0),
            SimDuration::from_hours(8.0),
        );
        if sporadic {
            gpu_app =
                gpu_app.with_supply(SimDuration::from_hours(1.0), SimDuration::from_hours(1.0));
        }
        ScenarioBuilder::new("gpu-supply", hw.clone())
            .seed(31)
            .project(
                ProjectSpec::new(0, "p", 100.0)
                    .with_app(
                        AppClass::cpu(
                            0,
                            SimDuration::from_secs(1000.0),
                            SimDuration::from_hours(8.0),
                        )
                        .with_cv(0.0),
                    )
                    .with_app(gpu_app),
            )
            .build_unchecked()
    };
    let steady = Emulator::new(mk(false), ClientConfig::default(), cfg(2.0)).run();
    let sporadic = Emulator::new(mk(true), ClientConfig::default(), cfg(2.0)).run();
    // GPU dry spells cost jobs overall...
    assert!(
        sporadic.jobs_completed < steady.jobs_completed,
        "sporadic {} vs steady {}",
        sporadic.jobs_completed,
        steady.jobs_completed
    );
    // ...but far more than the CPU-only floor: the GPU still works during
    // supply periods (2 days x ~50% duty on a 10 GF GPU).
    assert!(
        sporadic.total_flops_used > 0.4 * steady.total_flops_used,
        "sporadic {:.2e} vs steady {:.2e}",
        sporadic.total_flops_used,
        steady.total_flops_used
    );
}

#[test]
fn deadline_check_grace_forgives_late_results() {
    // The third policy axis (§4.3): with tight deadlines many jobs finish
    // late. Under DC-STRICT they are wasted; a grace period recovers
    // them; DC-NONE recovers all.
    use bce_server::DeadlineCheckPolicy;
    let tight_scenario = || {
        scenario(vec![
            ProjectSpec::new(0, "tight", 100.0).with_app(
                AppClass::cpu(0, SimDuration::from_secs(1000.0), SimDuration::from_secs(1500.0))
                    .with_cv(0.0),
            ),
            project(1, "loose"),
        ])
    };
    let run = |policy: DeadlineCheckPolicy| {
        let mut emu = cfg(2.0);
        emu.server.deadline_check = policy;
        Emulator::new(tight_scenario(), ClientConfig::default(), emu).run()
    };
    let strict = run(DeadlineCheckPolicy::Strict);
    let grace = run(DeadlineCheckPolicy::Grace(SimDuration::from_secs(2000.0)));
    let none = run(DeadlineCheckPolicy::None);
    assert!(strict.jobs_missed_deadline > 0, "strict must see misses");
    assert!(
        grace.jobs_missed_deadline < strict.jobs_missed_deadline,
        "grace {} vs strict {}",
        grace.jobs_missed_deadline,
        strict.jobs_missed_deadline
    );
    assert_eq!(none.jobs_missed_deadline, 0, "DC-NONE grants all credit");
    // Residual waste under DC-NONE is checkpoint-rollback only (small).
    assert!(none.merit.wasted_fraction < 0.02, "{}", none.merit.wasted_fraction);
    assert!(grace.merit.wasted_fraction < strict.merit.wasted_fraction);
}

//! Imported in-flight jobs (`<result>` elements in a state file) must be
//! restored at emulation start with their receipt times and progress — the
//! core of the paper's anomaly-replay workflow.

use bce_client::ClientConfig;
use bce_core::{Emulator, EmulatorConfig, Scenario, ScenarioBuilder};
use bce_types::{AppClass, AppId, Hardware, InitialJob, ProjectId, ProjectSpec, SimDuration};

fn scenario_with_queue() -> Scenario {
    ScenarioBuilder::new("restore", Hardware::cpu_only(1, 1e9))
        .seed(5)
        .project(
            ProjectSpec::new(0, "p", 100.0).with_app(
                AppClass::cpu(0, SimDuration::from_secs(5000.0), SimDuration::from_hours(4.0))
                    .with_cv(0.0),
            ),
        )
        .build_unchecked()
}

fn plus_job(job: InitialJob) -> Scenario {
    let mut s = scenario_with_queue();
    s.initial_queue.push(job);
    s
}

fn short() -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_hours(2.0), ..Default::default() }
}

#[test]
fn restored_progress_shortens_completion() {
    // A job 80% done at start completes after ~1000 s instead of 5000 s.
    let with_progress = plus_job(InitialJob {
        project: ProjectId(0),
        app: AppId(0),
        received_ago: SimDuration::from_secs(4000.0),
        progress: SimDuration::from_secs(4000.0),
    });
    let fresh = scenario_with_queue();
    let a = Emulator::new(with_progress, ClientConfig::default(), short()).run();
    let b = Emulator::new(fresh, ClientConfig::default(), short()).run();
    // 2 h window, 5000 s jobs: the restored run finishes its first job
    // ~4000 s earlier, fitting one extra completion.
    assert!(
        a.jobs_completed > b.jobs_completed,
        "restored {} vs fresh {}",
        a.jobs_completed,
        b.jobs_completed
    );
}

#[test]
fn overdue_initial_job_misses_deadline() {
    // Received 5 h ago with a 4 h bound: the deadline is already past.
    let s = plus_job(InitialJob {
        project: ProjectId(0),
        app: AppId(0),
        received_ago: SimDuration::from_hours(5.0),
        progress: SimDuration::from_secs(0.0),
    });
    let r = Emulator::new(s, ClientConfig::default(), short()).run();
    assert!(r.jobs_missed_deadline >= 1, "overdue job must be counted missed");
    assert!(r.merit.wasted_fraction > 0.0);
}

#[test]
fn initial_queue_validation() {
    let bad_project = plus_job(InitialJob {
        project: ProjectId(9),
        app: AppId(0),
        received_ago: SimDuration::ZERO,
        progress: SimDuration::ZERO,
    });
    assert!(bad_project.validate().is_err());
    let bad_app = plus_job(InitialJob {
        project: ProjectId(0),
        app: AppId(9),
        received_ago: SimDuration::ZERO,
        progress: SimDuration::ZERO,
    });
    assert!(bad_app.validate().is_err());
}

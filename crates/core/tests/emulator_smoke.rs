//! End-to-end smoke tests of the emulator loop: jobs must be fetched,
//! executed, completed and reported; metrics must be sane; runs must be
//! deterministic.

use bce_client::{ClientConfig, FetchPolicy, JobSchedPolicy, NetworkModel};
use bce_core::{Emulator, EmulatorConfig, Scenario, ScenarioBuilder};
use bce_types::{AppClass, Hardware, Preferences, ProjectSpec, SimDuration};

fn one_project_scenario() -> Scenario {
    ScenarioBuilder::new("smoke-1p", Hardware::cpu_only(1, 1e9))
        .seed(7)
        .project(
            ProjectSpec::new(0, "alpha", 100.0).with_app(
                AppClass::cpu(0, SimDuration::from_secs(1000.0), SimDuration::from_hours(6.0))
                    .with_cv(0.0),
            ),
        )
        .build_unchecked()
}

fn two_project_scenario() -> Scenario {
    let mut s = one_project_scenario();
    s.projects.push(ProjectSpec::new(1, "beta", 100.0).with_app(
        AppClass::cpu(0, SimDuration::from_secs(1000.0), SimDuration::from_hours(6.0)).with_cv(0.0),
    ));
    s
}

fn short_cfg(days: f64) -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_days(days), ..Default::default() }
}

#[test]
fn single_project_saturates_cpu() {
    let em = Emulator::new(one_project_scenario(), ClientConfig::default(), short_cfg(1.0));
    let r = em.run();
    // 1 CPU fully available; 1000 s jobs: ~86 jobs/day.
    assert!(r.jobs_completed >= 80, "expected ~86 jobs, got {} (report:\n{r})", r.jobs_completed);
    assert!(r.merit.idle_fraction < 0.05, "idle {:.3}", r.merit.idle_fraction);
    assert_eq!(r.jobs_missed_deadline, 0);
    assert!(r.merit.wasted_fraction < 1e-9);
    assert!(r.merit.rpcs_per_job < 2.0, "rpcs/job {}", r.merit.rpcs_per_job);
}

#[test]
fn two_projects_share_evenly() {
    let em = Emulator::new(two_project_scenario(), ClientConfig::default(), short_cfg(2.0));
    let r = em.run();
    assert!(r.jobs_completed >= 150, "got {}", r.jobs_completed);
    assert!(
        r.merit.share_violation < 0.1,
        "equal shares should balance, violation {:.3}\n{r}",
        r.merit.share_violation
    );
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let em = Emulator::new(two_project_scenario(), ClientConfig::default(), short_cfg(1.0));
        let r = em.run();
        (
            r.jobs_completed,
            r.total_flops_used.to_bits(),
            r.merit.share_violation.to_bits(),
            r.merit.idle_fraction.to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let run = |seed: u64| {
        let mut s = two_project_scenario();
        s.seed = seed;
        // Give runtimes some variance so the seed matters.
        for p in &mut s.projects {
            for a in &mut p.apps {
                a.runtime_cv = 0.2;
            }
        }
        let r = Emulator::new(s, ClientConfig::default(), short_cfg(1.0)).run();
        // The full-result fingerprint, not `total_flops_used`: a saturated
        // CPU does the same total work under any seed, but the job
        // boundaries and completion counts it hashes still differ.
        r.bit_fingerprint()
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn wrr_vs_edf_on_tight_deadlines() {
    // Scenario-1-like shape: project 0 has tight deadlines.
    let mk = || {
        ScenarioBuilder::new("tight", Hardware::cpu_only(1, 1e9))
            .seed(3)
            .prefs(Preferences {
                // A buffer deep enough to hold jobs from both projects at
                // once: under WRR the tight job then waits behind the
                // loose one and misses; EDF promotes it.
                work_buf_min: SimDuration::from_secs(2000.0),
                work_buf_extra: SimDuration::from_secs(2000.0),
                ..Default::default()
            })
            .project(
                ProjectSpec::new(0, "tight", 100.0).with_app(
                    AppClass::cpu(
                        0,
                        SimDuration::from_secs(1000.0),
                        SimDuration::from_secs(1500.0),
                    )
                    .with_cv(0.0),
                ),
            )
            .project(
                ProjectSpec::new(1, "loose", 100.0).with_app(
                    AppClass::cpu(1, SimDuration::from_secs(1000.0), SimDuration::from_hours(24.0))
                        .with_cv(0.0),
                ),
            )
            .build_unchecked()
    };
    let edf = Emulator::run_policies(mk(), JobSchedPolicy::LOCAL, FetchPolicy::Hysteresis);
    let wrr = Emulator::run_policies(mk(), JobSchedPolicy::WRR, FetchPolicy::Hysteresis);
    assert!(
        edf.merit.wasted_fraction < wrr.merit.wasted_fraction,
        "EDF {:.4} should waste less than WRR {:.4}",
        edf.merit.wasted_fraction,
        wrr.merit.wasted_fraction
    );
}

#[test]
fn unavailable_host_does_nothing() {
    let mut s = one_project_scenario();
    s.avail.host = bce_avail::OnOffSpec::AlwaysOff;
    let r = Emulator::new(s, ClientConfig::default(), short_cfg(1.0)).run();
    assert_eq!(r.jobs_completed, 0);
    assert_eq!(r.available_fraction, 0.0);
}

#[test]
fn flapping_host_trace_is_coalesced() {
    // A recorded trace that flaps off/on in 50 ms bursts every 10 minutes.
    // Each burst has zero net delta, so under the default 250 ms window the
    // emulator must absorb the whole burst into one availability event and
    // skip the reschedule; with the window disabled every transition fires
    // its own event. (This also regression-tests loop termination: trace
    // sources are pure functions of time that `advance` does not consume,
    // so a cursor-less coalescing scan would spin forever right here.)
    let mk = |window_secs: f64| {
        let mut transitions = Vec::new();
        let mut t = 600.0;
        while t < 86_000.0 {
            transitions.push((bce_types::SimTime::from_secs(t), false));
            transitions.push((bce_types::SimTime::from_secs(t + 0.05), true));
            transitions.push((bce_types::SimTime::from_secs(t + 0.10), false));
            transitions.push((bce_types::SimTime::from_secs(t + 0.15), true));
            t += 600.0;
        }
        let nbursts = transitions.len() / 4;
        let mut s = one_project_scenario();
        s.host_trace = Some(bce_avail::AvailTrace::new(true, transitions));
        let cfg = EmulatorConfig {
            duration: SimDuration::from_days(1.0),
            avail_coalesce_window: SimDuration::from_secs(window_secs),
            ..Default::default()
        };
        (Emulator::new(s, ClientConfig::default(), cfg).run(), nbursts)
    };

    let (coalesced, nbursts) = mk(0.25);
    assert_eq!(
        coalesced.perf.flaps_coalesced as usize,
        3 * nbursts,
        "each 4-transition burst should leave 1 event + 3 absorbed flaps"
    );
    assert_eq!(
        coalesced.perf.avail_resched_skipped as usize, nbursts,
        "net-zero bursts must not trigger a reschedule"
    );
    assert!(coalesced.jobs_completed > 0);

    let (uncoalesced, _) = mk(0.0);
    assert_eq!(uncoalesced.perf.flaps_coalesced, 0, "window 0 disables coalescing");
    // Taking every burst transition literally preempts the running task
    // four times per burst and rolls progress back to its last checkpoint;
    // absorbing the burst keeps that work. Coalescing must never do worse.
    assert!(
        coalesced.jobs_completed >= uncoalesced.jobs_completed,
        "coalesced {} < uncoalesced {}",
        coalesced.jobs_completed,
        uncoalesced.jobs_completed
    );
    assert!(uncoalesced.jobs_completed > 0);

    // Coalescing is deterministic: same scenario, same fingerprint.
    assert_eq!(mk(0.25).0.bit_fingerprint(), coalesced.bit_fingerprint());
}

#[test]
fn network_model_slows_throughput() {
    let mk = |net: Option<NetworkModel>| {
        let mut s = one_project_scenario();
        // 100 MB input per 1000 s job.
        for p in &mut s.projects {
            for a in &mut p.apps {
                a.input_bytes = 1e8;
            }
        }
        s.network = net;
        Emulator::new(s, ClientConfig::default(), short_cfg(1.0)).run()
    };
    let fast = mk(None);
    // 1 MB/s: 100 s download per 1000 s job, queue hides most of it but
    // throughput cannot exceed the no-network case.
    let slow = mk(Some(NetworkModel::symmetric(1e6)));
    assert!(slow.jobs_completed <= fast.jobs_completed);
    assert!(slow.jobs_completed > 0, "transfers must still progress");
}

#[test]
fn timeline_recorded_when_enabled() {
    let cfg = EmulatorConfig {
        duration: SimDuration::from_hours(6.0),
        record_timeline: true,
        ..Default::default()
    };
    let r = Emulator::new(one_project_scenario(), ClientConfig::default(), cfg).run();
    let tl = r.timeline.expect("timeline enabled");
    assert_eq!(tl.tracks().len(), 1);
    assert!(tl.tracks()[0].busy_secs() > 0.0);
    let rendered = bce_core::render_timeline(&tl, 60);
    assert!(rendered.contains('A'), "{rendered}");
}

#[test]
fn log_records_decisions() {
    let cfg = EmulatorConfig {
        duration: SimDuration::from_hours(2.0),
        log_capacity: 10_000,
        ..Default::default()
    };
    let r = Emulator::new(one_project_scenario(), ClientConfig::default(), cfg).run();
    let text = r.log.render();
    assert!(text.contains("RPC to P0"), "log:\n{text}");
    assert!(text.contains("schedule: start"), "log:\n{text}");
    assert!(text.contains("finished"), "log:\n{text}");
}

#[test]
fn report_renders() {
    let r = Emulator::new(two_project_scenario(), ClientConfig::default(), short_cfg(0.5)).run();
    let report = format!("{r}");
    assert!(report.contains("figures of merit"));
    assert!(report.contains("alpha"));
    assert!(report.contains("beta"));
}

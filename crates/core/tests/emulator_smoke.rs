//! End-to-end smoke tests of the emulator loop: jobs must be fetched,
//! executed, completed and reported; metrics must be sane; runs must be
//! deterministic.

use bce_client::{ClientConfig, FetchPolicy, JobSchedPolicy, NetworkModel};
use bce_core::{Emulator, EmulatorConfig, Scenario};
use bce_types::{AppClass, Hardware, Preferences, ProjectSpec, SimDuration};

fn one_project_scenario() -> Scenario {
    Scenario::new("smoke-1p", Hardware::cpu_only(1, 1e9)).with_seed(7).with_project(
        ProjectSpec::new(0, "alpha", 100.0).with_app(
            AppClass::cpu(0, SimDuration::from_secs(1000.0), SimDuration::from_hours(6.0))
                .with_cv(0.0),
        ),
    )
}

fn two_project_scenario() -> Scenario {
    one_project_scenario().with_project(ProjectSpec::new(1, "beta", 100.0).with_app(
        AppClass::cpu(0, SimDuration::from_secs(1000.0), SimDuration::from_hours(6.0)).with_cv(0.0),
    ))
}

fn short_cfg(days: f64) -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_days(days), ..Default::default() }
}

#[test]
fn single_project_saturates_cpu() {
    let em = Emulator::new(one_project_scenario(), ClientConfig::default(), short_cfg(1.0));
    let r = em.run();
    // 1 CPU fully available; 1000 s jobs: ~86 jobs/day.
    assert!(r.jobs_completed >= 80, "expected ~86 jobs, got {} (report:\n{r})", r.jobs_completed);
    assert!(r.merit.idle_fraction < 0.05, "idle {:.3}", r.merit.idle_fraction);
    assert_eq!(r.jobs_missed_deadline, 0);
    assert!(r.merit.wasted_fraction < 1e-9);
    assert!(r.merit.rpcs_per_job < 2.0, "rpcs/job {}", r.merit.rpcs_per_job);
}

#[test]
fn two_projects_share_evenly() {
    let em = Emulator::new(two_project_scenario(), ClientConfig::default(), short_cfg(2.0));
    let r = em.run();
    assert!(r.jobs_completed >= 150, "got {}", r.jobs_completed);
    assert!(
        r.merit.share_violation < 0.1,
        "equal shares should balance, violation {:.3}\n{r}",
        r.merit.share_violation
    );
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let em = Emulator::new(two_project_scenario(), ClientConfig::default(), short_cfg(1.0));
        let r = em.run();
        (
            r.jobs_completed,
            r.total_flops_used.to_bits(),
            r.merit.share_violation.to_bits(),
            r.merit.idle_fraction.to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let run = |seed: u64| {
        let mut s = two_project_scenario();
        s.seed = seed;
        // Give runtimes some variance so the seed matters.
        for p in &mut s.projects {
            for a in &mut p.apps {
                a.runtime_cv = 0.2;
            }
        }
        let r = Emulator::new(s, ClientConfig::default(), short_cfg(1.0)).run();
        r.total_flops_used.to_bits()
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn wrr_vs_edf_on_tight_deadlines() {
    // Scenario-1-like shape: project 0 has tight deadlines.
    let mk = || {
        Scenario::new("tight", Hardware::cpu_only(1, 1e9))
            .with_seed(3)
            .with_prefs(Preferences {
                // A buffer deep enough to hold jobs from both projects at
                // once: under WRR the tight job then waits behind the
                // loose one and misses; EDF promotes it.
                work_buf_min: SimDuration::from_secs(2000.0),
                work_buf_extra: SimDuration::from_secs(2000.0),
                ..Default::default()
            })
            .with_project(
                ProjectSpec::new(0, "tight", 100.0).with_app(
                    AppClass::cpu(
                        0,
                        SimDuration::from_secs(1000.0),
                        SimDuration::from_secs(1500.0),
                    )
                    .with_cv(0.0),
                ),
            )
            .with_project(
                ProjectSpec::new(1, "loose", 100.0).with_app(
                    AppClass::cpu(1, SimDuration::from_secs(1000.0), SimDuration::from_hours(24.0))
                        .with_cv(0.0),
                ),
            )
    };
    let edf = Emulator::run_policies(mk(), JobSchedPolicy::LOCAL, FetchPolicy::Hysteresis);
    let wrr = Emulator::run_policies(mk(), JobSchedPolicy::WRR, FetchPolicy::Hysteresis);
    assert!(
        edf.merit.wasted_fraction < wrr.merit.wasted_fraction,
        "EDF {:.4} should waste less than WRR {:.4}",
        edf.merit.wasted_fraction,
        wrr.merit.wasted_fraction
    );
}

#[test]
fn unavailable_host_does_nothing() {
    let mut s = one_project_scenario();
    s.avail.host = bce_avail::OnOffSpec::AlwaysOff;
    let r = Emulator::new(s, ClientConfig::default(), short_cfg(1.0)).run();
    assert_eq!(r.jobs_completed, 0);
    assert_eq!(r.available_fraction, 0.0);
}

#[test]
fn network_model_slows_throughput() {
    let mk = |net: Option<NetworkModel>| {
        let mut s = one_project_scenario();
        // 100 MB input per 1000 s job.
        for p in &mut s.projects {
            for a in &mut p.apps {
                a.input_bytes = 1e8;
            }
        }
        s.network = net;
        Emulator::new(s, ClientConfig::default(), short_cfg(1.0)).run()
    };
    let fast = mk(None);
    // 1 MB/s: 100 s download per 1000 s job, queue hides most of it but
    // throughput cannot exceed the no-network case.
    let slow = mk(Some(NetworkModel::symmetric(1e6)));
    assert!(slow.jobs_completed <= fast.jobs_completed);
    assert!(slow.jobs_completed > 0, "transfers must still progress");
}

#[test]
fn timeline_recorded_when_enabled() {
    let cfg = EmulatorConfig {
        duration: SimDuration::from_hours(6.0),
        record_timeline: true,
        ..Default::default()
    };
    let r = Emulator::new(one_project_scenario(), ClientConfig::default(), cfg).run();
    let tl = r.timeline.expect("timeline enabled");
    assert_eq!(tl.tracks().len(), 1);
    assert!(tl.tracks()[0].busy_secs() > 0.0);
    let rendered = bce_core::render_timeline(&tl, 60);
    assert!(rendered.contains('A'), "{rendered}");
}

#[test]
fn log_records_decisions() {
    let cfg = EmulatorConfig {
        duration: SimDuration::from_hours(2.0),
        log_capacity: 10_000,
        ..Default::default()
    };
    let r = Emulator::new(one_project_scenario(), ClientConfig::default(), cfg).run();
    let text = r.log.render();
    assert!(text.contains("RPC to P0"), "log:\n{text}");
    assert!(text.contains("schedule: start"), "log:\n{text}");
    assert!(text.contains("finished"), "log:\n{text}");
}

#[test]
fn report_renders() {
    let r = Emulator::new(two_project_scenario(), ClientConfig::default(), short_cfg(0.5)).run();
    let report = format!("{r}");
    assert!(report.contains("figures of merit"));
    assert!(report.contains("alpha"));
    assert!(report.contains("beta"));
}

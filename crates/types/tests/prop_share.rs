//! Property tests for the ideal share allocator (Figure 1 math): whatever
//! the hardware and demand structure, conservation and fairness invariants
//! must hold.

use bce_types::{ideal_allocation, Hardware, ProcType, ProjectId, ShareDemand, UsableTypes};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct AllocCase {
    cpu: (u32, f64),
    nvidia: (u32, f64),
    ati: (u32, f64),
    demands: Vec<(f64, [bool; 3])>,
}

fn case() -> impl Strategy<Value = AllocCase> {
    (
        (1u32..=8, 5e8f64..5e9),
        (0u32..=2, 5e9f64..5e10),
        (0u32..=2, 5e9f64..5e10),
        proptest::collection::vec(
            (0.0f64..500.0, [any::<bool>(), any::<bool>(), any::<bool>()]),
            1..6,
        ),
    )
        .prop_map(|(cpu, nvidia, ati, demands)| AllocCase { cpu, nvidia, ati, demands })
}

fn build(case: &AllocCase) -> (Hardware, Vec<ShareDemand>) {
    let hw = Hardware::cpu_only(case.cpu.0, case.cpu.1)
        .with_group(ProcType::NvidiaGpu, case.nvidia.0, case.nvidia.1)
        .with_group(ProcType::AtiGpu, case.ati.0, case.ati.1);
    let demands = case
        .demands
        .iter()
        .enumerate()
        .map(|(i, (share, usable))| {
            let mut u = UsableTypes::none();
            // Only mark types the host actually has.
            if usable[0] {
                u.0[ProcType::Cpu] = true;
            }
            if usable[1] && case.nvidia.0 > 0 {
                u.0[ProcType::NvidiaGpu] = true;
            }
            if usable[2] && case.ati.0 > 0 {
                u.0[ProcType::AtiGpu] = true;
            }
            ShareDemand { id: ProjectId(i as u32), share: *share, usable: u }
        })
        .collect();
    (hw, demands)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    #[test]
    fn conservation_and_feasibility(case in case()) {
        let (hw, demands) = build(&case);
        let alloc = ideal_allocation(&hw, &demands);
        let scale = hw.total_peak_flops().max(1.0);

        // 1. No device overcommitted.
        for t in ProcType::ALL {
            let used: f64 = alloc.per_project.iter().map(|(_, m)| m[t]).sum();
            prop_assert!(used <= hw.peak_flops(t) + 1e-6 * scale,
                "{t:?}: used {used} > cap {}", hw.peak_flops(t));
        }

        // 2. Total allocated + unusable = total capacity.
        let total: f64 = alloc.per_project.iter().map(|(_, m)| m.total()).sum();
        prop_assert!((total + alloc.unusable_flops - hw.total_peak_flops()).abs() < 1e-6 * scale);

        // 3. Nothing allocated on a type a project can't use, and no
        //    negative allocations. (Zero-share / nothing-usable demands
        //    are filtered from the result entirely.)
        for d in &demands {
            let entry = alloc.per_project.iter().find(|(pid, _)| *pid == d.id);
            let Some((pid, m)) = entry else {
                prop_assert!(d.share == 0.0 || d.usable.is_empty(),
                    "{} missing from allocation", d.id);
                continue;
            };
            for t in ProcType::ALL {
                prop_assert!(m[t] >= -1e-9 * scale);
                if !d.usable.contains(t) {
                    prop_assert!(m[t].abs() < 1e-9 * scale,
                        "{pid} allocated {t:?} it cannot use");
                }
            }
            // 4. A positive-share project with a usable present device
            //    must receive something.
            let host_has_usable = ProcType::ALL
                .iter()
                .any(|&t| d.usable.contains(t) && hw.ninstances(t) > 0);
            if d.share > 0.0 && host_has_usable {
                prop_assert!(m.total() > 0.0, "{} starved despite positive share", d.id);
            }
        }
    }

    #[test]
    fn share_monotonicity(share_a in 1.0f64..100.0, share_b in 1.0f64..100.0) {
        // Two CPU-only projects: totals must order like their shares.
        let hw = Hardware::cpu_only(4, 1e9);
        let demands = [
            ShareDemand { id: ProjectId(0), share: share_a, usable: UsableTypes::only(ProcType::Cpu) },
            ShareDemand { id: ProjectId(1), share: share_b, usable: UsableTypes::only(ProcType::Cpu) },
        ];
        let alloc = ideal_allocation(&hw, &demands);
        let (a, b) = (alloc.total_for(ProjectId(0)), alloc.total_for(ProjectId(1)));
        if share_a > share_b {
            prop_assert!(a >= b - 1e-3);
        } else {
            prop_assert!(b >= a - 1e-3);
        }
        // Exact proportionality on a single device type.
        prop_assert!((a / (a + b) - share_a / (share_a + share_b)).abs() < 1e-9);
    }
}

//! # bce-types — domain model for the BOINC scheduling-policy emulator
//!
//! The shared vocabulary of the workspace: simulated time, processor types
//! and host hardware (§2.2 of the paper), jobs and their resource usage
//! (§2.3), projects, application classes and resource shares (§2.1), user
//! preferences, and the ideal cross-device share allocation of Figure 1.
//!
//! This crate is dependency-free and purely data + math; all behaviour
//! (event loops, policies, servers) lives in the crates that build on it.

pub mod error;
pub mod ids;
pub mod job;
pub mod prefs;
pub mod proc;
pub mod project;
pub mod share;
pub mod time;

pub use error::{ModelError, ScenarioErrors};
pub use ids::{AppId, InstanceId, JobId, ProjectId};
pub use job::{EstErrorModel, InitialJob, JobOutcome, JobSpec, ResourceUsage};
pub use prefs::{DailyWindow, Preferences};
pub use proc::{Hardware, ProcGroup, ProcMap, ProcType};
pub use project::{
    share_fraction, AppClass, ProjectSpec, ServerUptime, SporadicSupply, WorkSupply,
};
pub use share::{ideal_allocation, IdealAllocation, ShareDemand, UsableTypes};
pub use time::{SimDuration, SimTime, DAY, HOUR, MINUTE, SECOND};

//! User preferences governing when and how much the client may compute
//! (§2.2) and the work-queue sizing knobs of the job-fetch policies (§3.4).

use crate::time::{SimDuration, DAY};

/// A daily allow-window: computing permitted between `start` and `end`
/// seconds-of-day. If `start > end` the window wraps midnight
/// (e.g. 22:00–06:00).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DailyWindow {
    pub start_sec: f64,
    pub end_sec: f64,
}

impl DailyWindow {
    pub fn new(start_hour: f64, end_hour: f64) -> Self {
        DailyWindow { start_sec: start_hour * 3600.0, end_sec: end_hour * 3600.0 }
    }

    /// Is second-of-day `s` inside the window?
    pub fn contains(&self, s: f64) -> bool {
        let s = s.rem_euclid(DAY);
        if self.start_sec <= self.end_sec {
            s >= self.start_sec && s < self.end_sec
        } else {
            s >= self.start_sec || s < self.end_sec
        }
    }

    /// Seconds-of-day of the next boundary (open↔closed transition) at or
    /// after second-of-day `s`, as an absolute offset from `s` in
    /// `(0, DAY]`.
    pub fn next_boundary_after(&self, s: f64) -> f64 {
        let s = s.rem_euclid(DAY);
        let mut best = f64::INFINITY;
        for b in [self.start_sec, self.end_sec] {
            let mut d = b - s;
            if d <= 0.0 {
                d += DAY;
            }
            best = best.min(d);
        }
        best
    }

    /// Fraction of the day the window is open.
    pub fn duty_cycle(&self) -> f64 {
        if self.start_sec <= self.end_sec {
            (self.end_sec - self.start_sec) / DAY
        } else {
            (DAY - self.start_sec + self.end_sec) / DAY
        }
    }
}

/// The preference set the emulator honours. Mirrors the BOINC client's
/// global preferences, restricted to the scheduling-relevant subset the
/// paper lists (§2.2) plus the queue-size parameters of §3.4.
#[derive(Debug, Clone, PartialEq)]
pub struct Preferences {
    /// `min_queue`: keep enough work to cover this long (also called the
    /// min work buffer). The client fetches when it holds less.
    pub work_buf_min: SimDuration,
    /// Additional buffer above `min_queue`; `max_queue = work_buf_min +
    /// work_buf_extra`.
    pub work_buf_extra: SimDuration,
    /// Compute (on CPUs) while the user is active?
    pub run_if_user_active: bool,
    /// Use GPUs while the user is active? (GPUs often lag the desktop, so
    /// the default is off.)
    pub gpu_if_user_active: bool,
    /// Limit on simultaneously used CPUs, as a fraction of all CPUs (1.0 =
    /// use all).
    pub max_ncpus_frac: f64,
    /// Fraction of RAM usable while the user is active / idle.
    pub ram_max_frac_busy: f64,
    pub ram_max_frac_idle: f64,
    /// Optional time-of-day window during which computing is allowed.
    pub compute_window: Option<DailyWindow>,
    /// Optional separate window for GPU computing.
    pub gpu_window: Option<DailyWindow>,
    /// Keep preempted applications in memory (so they resume from the
    /// exact preemption point rather than the last checkpoint)?
    pub leave_apps_in_memory: bool,
}

impl Preferences {
    /// `max_queue` of §3.4.
    pub fn work_buf_max(&self) -> SimDuration {
        self.work_buf_min + self.work_buf_extra
    }

    /// Usable CPU count under the `max_ncpus_frac` preference.
    pub fn usable_cpus(&self, ncpus: u32) -> u32 {
        ((ncpus as f64 * self.max_ncpus_frac).floor() as u32).clamp(1, ncpus.max(1))
    }
}

impl Default for Preferences {
    fn default() -> Self {
        Preferences {
            work_buf_min: SimDuration::from_secs(1800.0),
            work_buf_extra: SimDuration::from_secs(1800.0),
            run_if_user_active: true,
            gpu_if_user_active: false,
            max_ncpus_frac: 1.0,
            ram_max_frac_busy: 0.5,
            ram_max_frac_idle: 0.9,
            compute_window: None,
            gpu_window: None,
            leave_apps_in_memory: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_plain() {
        let w = DailyWindow::new(9.0, 17.0);
        assert!(w.contains(10.0 * 3600.0));
        assert!(!w.contains(8.0 * 3600.0));
        assert!(!w.contains(17.0 * 3600.0)); // half-open
        assert!((w.duty_cycle() - 8.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn window_contains_wrapping() {
        let w = DailyWindow::new(22.0, 6.0);
        assert!(w.contains(23.0 * 3600.0));
        assert!(w.contains(1.0 * 3600.0));
        assert!(!w.contains(12.0 * 3600.0));
        assert!((w.duty_cycle() - 8.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn window_next_boundary() {
        let w = DailyWindow::new(9.0, 17.0);
        // At 08:00, the next boundary is 09:00, one hour away.
        assert!((w.next_boundary_after(8.0 * 3600.0) - 3600.0).abs() < 1e-9);
        // At 17:00 exactly, the next boundary is 09:00 tomorrow.
        let d = w.next_boundary_after(17.0 * 3600.0);
        assert!((d - 16.0 * 3600.0).abs() < 1e-9);
    }

    #[test]
    fn boundary_is_strictly_positive() {
        let w = DailyWindow::new(9.0, 17.0);
        let d = w.next_boundary_after(9.0 * 3600.0);
        assert!(d > 0.0 && d <= DAY);
    }

    #[test]
    fn queue_bounds() {
        let p = Preferences {
            work_buf_min: SimDuration::from_secs(100.0),
            work_buf_extra: SimDuration::from_secs(50.0),
            ..Default::default()
        };
        assert_eq!(p.work_buf_max(), SimDuration::from_secs(150.0));
    }

    #[test]
    fn usable_cpus_clamps() {
        let mut p = Preferences { max_ncpus_frac: 0.5, ..Default::default() };
        assert_eq!(p.usable_cpus(4), 2);
        p.max_ncpus_frac = 0.1;
        assert_eq!(p.usable_cpus(4), 1); // at least one CPU
        p.max_ncpus_frac = 1.0;
        assert_eq!(p.usable_cpus(4), 4);
    }
}

//! Simulation time.
//!
//! The emulator measures time in seconds of simulated wall-clock time,
//! starting from an arbitrary epoch `SimTime::ZERO` at the beginning of the
//! emulation. Times and durations are newtypes over `f64` so that the two
//! cannot be confused and so that unit helpers (`days`, `hours`, …) read
//! naturally at call sites.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An instant in simulated time, in seconds since the emulation epoch.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. May be negative in intermediate
/// arithmetic (e.g. deadline margins) but most APIs expect non-negative spans.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimDuration(f64);

pub const SECOND: f64 = 1.0;
pub const MINUTE: f64 = 60.0;
pub const HOUR: f64 = 3_600.0;
pub const DAY: f64 = 86_400.0;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);
    /// A time later than any reachable simulation time; used as a sentinel
    /// for "no next event".
    pub const FAR_FUTURE: SimTime = SimTime(f64::INFINITY);

    #[inline]
    pub const fn from_secs(s: f64) -> Self {
        SimTime(s)
    }
    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
    #[inline]
    pub fn min(self, other: Self) -> Self {
        SimTime(self.0.min(other.0))
    }
    #[inline]
    pub fn max(self, other: Self) -> Self {
        SimTime(self.0.max(other.0))
    }
    /// Span from `earlier` to `self`; negative if `self` precedes it.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0.0);
    pub const INFINITE: SimDuration = SimDuration(f64::INFINITY);

    #[inline]
    pub const fn from_secs(s: f64) -> Self {
        SimDuration(s)
    }
    #[inline]
    pub fn from_mins(m: f64) -> Self {
        SimDuration(m * MINUTE)
    }
    #[inline]
    pub fn from_hours(h: f64) -> Self {
        SimDuration(h * HOUR)
    }
    #[inline]
    pub fn from_days(d: f64) -> Self {
        SimDuration(d * DAY)
    }
    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }
    #[inline]
    pub fn hours(self) -> f64 {
        self.0 / HOUR
    }
    #[inline]
    pub fn days(self) -> f64 {
        self.0 / DAY
    }
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
    #[inline]
    pub fn min(self, other: Self) -> Self {
        SimDuration(self.0.min(other.0))
    }
    #[inline]
    pub fn max(self, other: Self) -> Self {
        SimDuration(self.0.max(other.0))
    }
    #[inline]
    pub fn clamp_non_negative(self) -> Self {
        SimDuration(self.0.max(0.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}
impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}
impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}
impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}
impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}
impl Div<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}
impl Div for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}
impl Neg for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn neg(self) -> SimDuration {
        SimDuration(-self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.0.is_finite() {
            return write!(f, "t=∞");
        }
        let total = self.0;
        let days = (total / DAY).floor();
        let rem = total - days * DAY;
        let h = (rem / HOUR).floor();
        let rem = rem - h * HOUR;
        let m = (rem / MINUTE).floor();
        let s = rem - m * MINUTE;
        write!(f, "{days:.0}d {h:02.0}:{m:02.0}:{s:04.1}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if !s.is_finite() {
            write!(f, "∞")
        } else if s.abs() >= DAY {
            write!(f, "{:.2}d", s / DAY)
        } else if s.abs() >= HOUR {
            write!(f, "{:.2}h", s / HOUR)
        } else if s.abs() >= MINUTE {
            write!(f, "{:.1}m", s / MINUTE)
        } else {
            write!(f, "{s:.1}s")
        }
    }
}

/// Total ordering for `SimTime` treating NaN as an error. Simulation code
/// never produces NaN times; this lets event queues order keys strictly.
impl Eq for SimTime {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("NaN SimTime in ordering context")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(100.0);
        let d = SimDuration::from_secs(50.0);
        assert_eq!((t + d).secs(), 150.0);
        assert_eq!((t + d) - t, d);
        assert_eq!((t - d).secs(), 50.0);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(SimDuration::from_days(2.0).secs(), 2.0 * DAY);
        assert_eq!(SimDuration::from_hours(3.0).secs(), 3.0 * HOUR);
        assert_eq!(SimDuration::from_mins(4.0).secs(), 240.0);
        assert!((SimDuration::from_days(1.0).hours() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_secs(DAY + HOUR + MINUTE + 1.5);
        assert_eq!(format!("{t}"), "1d 01:01:01.5");
        assert_eq!(format!("{}", SimDuration::from_secs(30.0)), "30.0s");
        assert_eq!(format!("{}", SimDuration::from_days(1.5)), "1.50d");
    }

    #[test]
    fn far_future_is_greater() {
        assert!(SimTime::FAR_FUTURE > SimTime::from_secs(1e30));
        assert!(!SimTime::FAR_FUTURE.is_finite());
    }

    #[test]
    fn min_max_and_clamp() {
        let a = SimDuration::from_secs(-5.0);
        assert_eq!(a.clamp_non_negative(), SimDuration::ZERO);
        assert_eq!(SimTime::from_secs(3.0).min(SimTime::from_secs(2.0)), SimTime::from_secs(2.0));
        assert_eq!(
            SimDuration::from_secs(3.0).max(SimDuration::from_secs(9.0)),
            SimDuration::from_secs(9.0)
        );
    }

    #[test]
    fn duration_ratio() {
        assert_eq!(SimDuration::from_hours(2.0) / SimDuration::from_hours(1.0), 2.0);
    }
}

//! Processor types and host hardware.
//!
//! BOINC distinguishes *processor types* — CPU, NVIDIA GPU, ATI GPU — and a
//! host owns zero or more *instances* of each type (§2.1 of the paper). Jobs
//! may use several CPUs, a fractional GPU, or combinations.

use std::fmt;
use std::ops::{Index, IndexMut};

/// One of BOINC's processor types. The set is closed (as of the paper:
/// CPU, NVIDIA, ATI), which lets us key per-type state with a fixed-size
/// array ([`ProcMap`]) instead of hash maps on hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProcType {
    Cpu,
    NvidiaGpu,
    AtiGpu,
}

impl ProcType {
    pub const COUNT: usize = 3;
    pub const ALL: [ProcType; 3] = [ProcType::Cpu, ProcType::NvidiaGpu, ProcType::AtiGpu];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            ProcType::Cpu => 0,
            ProcType::NvidiaGpu => 1,
            ProcType::AtiGpu => 2,
        }
    }

    pub fn from_index(i: usize) -> Option<ProcType> {
        Self::ALL.get(i).copied()
    }

    #[inline]
    pub fn is_gpu(self) -> bool {
        !matches!(self, ProcType::Cpu)
    }

    pub fn short_name(self) -> &'static str {
        match self {
            ProcType::Cpu => "CPU",
            ProcType::NvidiaGpu => "NV",
            ProcType::AtiGpu => "ATI",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ProcType::Cpu => "CPU",
            ProcType::NvidiaGpu => "NVIDIA GPU",
            ProcType::AtiGpu => "ATI GPU",
        }
    }
}

impl fmt::Display for ProcType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fixed-size map keyed by [`ProcType`]. Dense, copyable when `T: Copy`,
/// and free of hashing — per-type bookkeeping appears in every inner loop of
/// the round-robin simulator and the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProcMap<T>(pub [T; ProcType::COUNT]);

impl<T> ProcMap<T> {
    pub fn from_fn(mut f: impl FnMut(ProcType) -> T) -> Self {
        ProcMap([f(ProcType::Cpu), f(ProcType::NvidiaGpu), f(ProcType::AtiGpu)])
    }

    pub fn iter(&self) -> impl Iterator<Item = (ProcType, &T)> {
        ProcType::ALL.iter().map(move |&t| (t, &self.0[t.index()]))
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ProcType, &mut T)> {
        ProcType::ALL.iter().copied().zip(self.0.iter_mut())
    }

    pub fn map<U>(&self, mut f: impl FnMut(ProcType, &T) -> U) -> ProcMap<U> {
        ProcMap::from_fn(|t| f(t, &self.0[t.index()]))
    }
}

impl ProcMap<f64> {
    pub fn zero() -> Self {
        ProcMap([0.0; ProcType::COUNT])
    }
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }
}

impl<T> Index<ProcType> for ProcMap<T> {
    type Output = T;
    #[inline]
    fn index(&self, t: ProcType) -> &T {
        &self.0[t.index()]
    }
}

impl<T> IndexMut<ProcType> for ProcMap<T> {
    #[inline]
    fn index_mut(&mut self, t: ProcType) -> &mut T {
        &mut self.0[t.index()]
    }
}

/// The instances of a single processor type on a host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcGroup {
    /// Number of instances (CPU cores or GPU boards).
    pub count: u32,
    /// Peak FLOPS of one instance.
    pub flops_per_inst: f64,
}

impl ProcGroup {
    pub fn peak_flops(&self) -> f64 {
        self.count as f64 * self.flops_per_inst
    }
}

/// The host's measured hardware characteristics (§2.2): processing
/// resources plus memory sizes. FLOPS figures are *peak* speeds, the unit
/// the paper's figures of merit are expressed in.
#[derive(Debug, Clone, PartialEq)]
pub struct Hardware {
    groups: ProcMap<Option<ProcGroup>>,
    /// Main memory, bytes.
    pub mem_bytes: f64,
    /// Video memory, bytes (shared across GPU types for simplicity).
    pub vram_bytes: f64,
}

impl Hardware {
    /// A host with only CPUs.
    pub fn cpu_only(ncpus: u32, flops_per_cpu: f64) -> Self {
        let mut groups = ProcMap::from_fn(|_| None);
        groups[ProcType::Cpu] = Some(ProcGroup { count: ncpus, flops_per_inst: flops_per_cpu });
        Hardware { groups, mem_bytes: 8e9, vram_bytes: 0.0 }
    }

    /// Add (or replace) a processor group.
    pub fn with_group(mut self, t: ProcType, count: u32, flops_per_inst: f64) -> Self {
        self.groups[t] = if count == 0 { None } else { Some(ProcGroup { count, flops_per_inst }) };
        self
    }

    pub fn with_mem(mut self, mem_bytes: f64) -> Self {
        self.mem_bytes = mem_bytes;
        self
    }

    pub fn with_vram(mut self, vram_bytes: f64) -> Self {
        self.vram_bytes = vram_bytes;
        self
    }

    pub fn group(&self, t: ProcType) -> Option<&ProcGroup> {
        self.groups[t].as_ref()
    }

    /// Number of instances of `t` (zero if the host lacks that type).
    pub fn ninstances(&self, t: ProcType) -> u32 {
        self.groups[t].map_or(0, |g| g.count)
    }

    /// Peak FLOPS of a single instance of `t` (zero if absent).
    pub fn flops_per_inst(&self, t: ProcType) -> f64 {
        self.groups[t].map_or(0.0, |g| g.flops_per_inst)
    }

    /// Aggregate peak FLOPS of all instances of `t`.
    pub fn peak_flops(&self, t: ProcType) -> f64 {
        self.groups[t].map_or(0.0, |g| g.peak_flops())
    }

    /// Aggregate peak FLOPS of the whole host — the denominator of the
    /// paper's idle/wasted fractions.
    pub fn total_peak_flops(&self) -> f64 {
        ProcType::ALL.iter().map(|&t| self.peak_flops(t)).sum()
    }

    /// Processor types present on this host.
    pub fn present_types(&self) -> impl Iterator<Item = ProcType> + '_ {
        ProcType::ALL.into_iter().filter(|&t| self.ninstances(t) > 0)
    }

    pub fn has_gpu(&self) -> bool {
        self.present_types().any(|t| t.is_gpu())
    }
}

impl Default for Hardware {
    /// A plain modern desktop: 4 CPUs at 3 GFLOPS, 8 GB RAM.
    fn default() -> Self {
        Hardware::cpu_only(4, 3e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_type_round_trip() {
        for t in ProcType::ALL {
            assert_eq!(ProcType::from_index(t.index()), Some(t));
        }
        assert_eq!(ProcType::from_index(3), None);
    }

    #[test]
    fn gpu_classification() {
        assert!(!ProcType::Cpu.is_gpu());
        assert!(ProcType::NvidiaGpu.is_gpu());
        assert!(ProcType::AtiGpu.is_gpu());
    }

    #[test]
    fn procmap_indexing() {
        let mut m = ProcMap::zero();
        m[ProcType::NvidiaGpu] = 2.5;
        assert_eq!(m[ProcType::NvidiaGpu], 2.5);
        assert_eq!(m[ProcType::Cpu], 0.0);
        assert_eq!(m.total(), 2.5);
    }

    #[test]
    fn procmap_from_fn_and_map() {
        let m = ProcMap::from_fn(|t| t.index() as f64);
        assert_eq!(m[ProcType::AtiGpu], 2.0);
        let doubled = m.map(|_, v| v * 2.0);
        assert_eq!(doubled[ProcType::AtiGpu], 4.0);
    }

    #[test]
    fn hardware_scenario2_shape() {
        // Scenario 2 of the paper: 4 CPUs and 1 GPU 10x faster than a CPU.
        let hw = Hardware::cpu_only(4, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10);
        assert_eq!(hw.ninstances(ProcType::Cpu), 4);
        assert_eq!(hw.ninstances(ProcType::NvidiaGpu), 1);
        assert_eq!(hw.total_peak_flops(), 4e9 + 1e10);
        assert!(hw.has_gpu());
        assert_eq!(hw.present_types().count(), 2);
    }

    #[test]
    fn zero_count_group_is_absent() {
        let hw = Hardware::default().with_group(ProcType::AtiGpu, 0, 1e9);
        assert_eq!(hw.ninstances(ProcType::AtiGpu), 0);
        assert!(hw.group(ProcType::AtiGpu).is_none());
    }

    #[test]
    fn fig1_hardware() {
        // Figure 1: 10 GFLOPS CPU and 20 GFLOPS GPU.
        let hw = Hardware::cpu_only(1, 10e9).with_group(ProcType::NvidiaGpu, 1, 20e9);
        assert_eq!(hw.total_peak_flops(), 30e9);
    }
}

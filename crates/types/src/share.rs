//! Ideal resource-share allocation across processor types (Figure 1).
//!
//! §2.1: "Resource share is intended to apply to a host's aggregate
//! processing resources, not to the processor types separately." Given a
//! host and the set of attached projects (with which processor types each
//! can use), this module computes the *ideal* steady-state allocation: each
//! project's FLOPS per device type such that
//!
//! 1. no device is overcommitted and no usable device idles,
//! 2. project totals follow resource shares as closely as feasibility
//!    allows (weighted max-min fairness up to each project's entitlement),
//! 3. leftover capacity beyond entitlements is still handed out
//!    share-proportionally to whoever can use it ("respects resource share
//!    as much as possible while still maximizing throughput", §5.2).
//!
//! The feasibility structure is a polymatroid: for any set of projects `S`,
//! their combined allocation cannot exceed the total capacity of the
//! devices at least one of them can use. With at most three device types
//! there are only 2³ distinct constraints, so exact progressive filling is
//! cheap. A tiny max-flow then produces a concrete per-device split, and
//! the emulator's share-violation metric uses the resulting totals as its
//! reference.

use crate::ids::ProjectId;
use crate::proc::{Hardware, ProcMap, ProcType};

/// Which processor types a project can use (derived from its app classes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsableTypes(pub ProcMap<bool>);

impl UsableTypes {
    pub fn none() -> Self {
        UsableTypes(ProcMap::from_fn(|_| false))
    }
    pub fn only(t: ProcType) -> Self {
        let mut u = Self::none();
        u.0[t] = true;
        u
    }
    pub fn of(types: &[ProcType]) -> Self {
        let mut u = Self::none();
        for &t in types {
            u.0[t] = true;
        }
        u
    }
    pub fn contains(&self, t: ProcType) -> bool {
        self.0[t]
    }
    /// Bitmask over `ProcType::ALL`, used to index device-subset tables.
    fn mask(&self) -> usize {
        ProcType::ALL
            .iter()
            .enumerate()
            .filter(|(_, &t)| self.0[t])
            .fold(0, |m, (i, _)| m | (1 << i))
    }
    pub fn is_empty(&self) -> bool {
        self.mask() == 0
    }
}

/// One project's demand description for the allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShareDemand {
    pub id: ProjectId,
    pub share: f64,
    pub usable: UsableTypes,
}

/// The allocator's result.
#[derive(Debug, Clone, PartialEq)]
pub struct IdealAllocation {
    /// Per project: FLOPS allocated on each device type.
    pub per_project: Vec<(ProjectId, ProcMap<f64>)>,
    /// Capacity that no attached project can use (idles by necessity).
    pub unusable_flops: f64,
}

impl IdealAllocation {
    pub fn total_for(&self, id: ProjectId) -> f64 {
        self.per_project.iter().find(|(p, _)| *p == id).map_or(0.0, |(_, m)| m.total())
    }

    pub fn device_split(&self, id: ProjectId) -> Option<&ProcMap<f64>> {
        self.per_project.iter().find(|(p, _)| *p == id).map(|(_, m)| m)
    }

    /// Each project's fraction of total host peak FLOPS — the reference
    /// vector for the share-violation figure of merit.
    pub fn fractions(&self, total_flops: f64) -> Vec<(ProjectId, f64)> {
        self.per_project
            .iter()
            .map(|(p, m)| (*p, if total_flops > 0.0 { m.total() / total_flops } else { 0.0 }))
            .collect()
    }
}

const EPS: f64 = 1e-9;

/// Compute the ideal allocation. See the module docs for the definition.
///
/// ```
/// use bce_types::{ideal_allocation, Hardware, ProcType, ProjectId, ShareDemand, UsableTypes};
/// // Figure 1 of the paper: 10 GFLOPS CPU + 20 GFLOPS GPU; equal shares;
/// // A has CPU and GPU apps, B only GPU apps.
/// let hw = Hardware::cpu_only(1, 10e9).with_group(ProcType::NvidiaGpu, 1, 20e9);
/// let demands = [
///     ShareDemand { id: ProjectId(0), share: 1.0,
///                   usable: UsableTypes::of(&[ProcType::Cpu, ProcType::NvidiaGpu]) },
///     ShareDemand { id: ProjectId(1), share: 1.0,
///                   usable: UsableTypes::only(ProcType::NvidiaGpu) },
/// ];
/// let alloc = ideal_allocation(&hw, &demands);
/// assert!((alloc.total_for(ProjectId(0)) - 15e9).abs() < 1.0); // 15 GFLOPS each
/// assert!((alloc.total_for(ProjectId(1)) - 15e9).abs() < 1.0);
/// ```
pub fn ideal_allocation(hw: &Hardware, demands: &[ShareDemand]) -> IdealAllocation {
    let caps = ProcMap::from_fn(|t| hw.peak_flops(t));
    let total_cap = caps.total();
    let scale = total_cap.max(1.0);

    // Total capacity of each subset of device types (bitmask-indexed).
    let mut subset_cap = [0.0f64; 8];
    for (mask, slot) in subset_cap.iter_mut().enumerate() {
        for (i, &t) in ProcType::ALL.iter().enumerate() {
            if mask & (1 << i) != 0 {
                *slot += caps[t];
            }
        }
    }

    let share_total: f64 = demands.iter().map(|d| d.share).sum();
    let usable_demands: Vec<&ShareDemand> =
        demands.iter().filter(|d| !d.usable.is_empty() && d.share > 0.0).collect();

    // Phase 1: weighted progressive filling of totals, capped at each
    // project's entitlement (share fraction of total capacity).
    let n = usable_demands.len();
    let mut totals = vec![0.0f64; n];
    let entitlement: Vec<f64> = usable_demands
        .iter()
        .map(|d| if share_total > 0.0 { d.share / share_total * total_cap } else { 0.0 })
        .collect();
    let mut frozen = vec![false; n];
    let mut level = 0.0f64; // common fraction of entitlement reached

    while level < 1.0 && frozen.iter().any(|f| !f) {
        // For every device subset D, the projects confined to D (usable ⊆ D)
        // jointly may not exceed cap(D). Find the level at which the first
        // such constraint binds.
        let mut next_level = 1.0f64;
        let mut binding: Option<usize> = None;
        // `mask` is a device-subset bitmask, not a plain index; iterating
        // `subset_cap` directly would hide that.
        #[allow(clippy::needless_range_loop)]
        for mask in 1..8usize {
            let mut fixed = 0.0;
            let mut growth = 0.0;
            for (i, d) in usable_demands.iter().enumerate() {
                if d.usable.mask() & !mask == 0 {
                    if frozen[i] {
                        fixed += totals[i];
                    } else {
                        growth += entitlement[i];
                    }
                }
            }
            if growth <= EPS * scale {
                continue;
            }
            let lam = (subset_cap[mask] - fixed) / growth;
            // `lam` is the absolute level at which subset `mask` saturates.
            if lam < next_level - 1e-12 {
                next_level = lam;
                binding = Some(mask);
            }
        }
        let new_level = next_level.clamp(level, 1.0);
        for i in 0..n {
            if !frozen[i] {
                totals[i] = new_level * entitlement[i];
            }
        }
        level = new_level;
        match binding {
            Some(mask) if level < 1.0 => {
                for (i, d) in usable_demands.iter().enumerate() {
                    if d.usable.mask() & !mask == 0 {
                        frozen[i] = true;
                    }
                }
            }
            _ => break,
        }
    }

    // Concrete per-device split of the totals via max-flow
    // (projects → devices). Feasible by construction of phase 1.
    let mut alloc: Vec<ProcMap<f64>> = vec![ProcMap::zero(); n];
    let mut dev_used = ProcMap::zero();
    max_flow_split(&usable_demands, &totals, &caps, &mut alloc, &mut dev_used, scale);

    // Phase 2: hand out leftover device capacity share-proportionally to
    // projects that can use it, so no usable device idles. One pass per
    // device suffices because beyond-entitlement allocation is uncapped.
    for t in ProcType::ALL {
        let leftover = caps[t] - dev_used[t];
        if leftover <= EPS * scale {
            continue;
        }
        let users: Vec<usize> = (0..n).filter(|&i| usable_demands[i].usable.contains(t)).collect();
        let wsum: f64 = users.iter().map(|&i| usable_demands[i].share).sum();
        if wsum <= 0.0 {
            continue;
        }
        for &i in &users {
            let give = leftover * usable_demands[i].share / wsum;
            alloc[i][t] += give;
            dev_used[t] += give;
        }
    }

    let unusable: f64 = ProcType::ALL.iter().map(|&t| (caps[t] - dev_used[t]).max(0.0)).sum();

    IdealAllocation {
        per_project: usable_demands.iter().zip(alloc).map(|(d, m)| (d.id, m)).collect(),
        unusable_flops: unusable,
    }
}

/// Ford–Fulkerson on the tiny bipartite graph projects → device types, with
/// supplies `totals` and capacities `caps`. Writes the realized flows into
/// `alloc`/`dev_used`.
fn max_flow_split(
    demands: &[&ShareDemand],
    totals: &[f64],
    caps: &ProcMap<f64>,
    alloc: &mut [ProcMap<f64>],
    dev_used: &mut ProcMap<f64>,
    scale: f64,
) {
    let eps = EPS * scale;
    // Process least-flexible projects first; augment along single edges,
    // then fall back to 3-step augmenting paths (project→dev→project→dev).
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order
        .sort_by_key(|&i| ProcType::ALL.iter().filter(|&&t| demands[i].usable.contains(t)).count());

    for &i in &order {
        let mut need = totals[i];
        // Direct edges.
        for t in ProcType::ALL {
            if need <= eps {
                break;
            }
            if demands[i].usable.contains(t) {
                let room = caps[t] - dev_used[t];
                let f = room.min(need).max(0.0);
                alloc[i][t] += f;
                dev_used[t] += f;
                need -= f;
            }
        }
        // Augmenting paths: move some other project j off device t onto a
        // device u with room, freeing t for i.
        while need > eps {
            let mut augmented = false;
            'outer: for t in ProcType::ALL {
                if !demands[i].usable.contains(t) {
                    continue;
                }
                for (j, dj) in demands.iter().enumerate() {
                    if j == i || alloc[j][t] <= eps {
                        continue;
                    }
                    for u in ProcType::ALL {
                        if u == t || !dj.usable.contains(u) {
                            continue;
                        }
                        let room = caps[u] - dev_used[u];
                        if room <= eps {
                            continue;
                        }
                        let f = need.min(alloc[j][t]).min(room);
                        // shift j from t to u, give t capacity to i
                        alloc[j][t] -= f;
                        alloc[j][u] += f;
                        dev_used[u] += f;
                        alloc[i][t] += f;
                        need -= f;
                        augmented = true;
                        if need <= eps {
                            break 'outer;
                        }
                    }
                }
            }
            if !augmented {
                break; // infeasible remainder (shouldn't happen after phase 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_hardware() -> Hardware {
        Hardware::cpu_only(1, 10e9).with_group(ProcType::NvidiaGpu, 1, 20e9)
    }

    #[test]
    fn figure1_example() {
        // Project A has CPU and GPU apps; project B only GPU apps; equal
        // shares. Paper: A gets 100% of CPU + 25% of GPU, B gets 75% of
        // GPU; 15 GFLOPS each.
        let hw = fig1_hardware();
        let demands = [
            ShareDemand {
                id: ProjectId(0),
                share: 1.0,
                usable: UsableTypes::of(&[ProcType::Cpu, ProcType::NvidiaGpu]),
            },
            ShareDemand {
                id: ProjectId(1),
                share: 1.0,
                usable: UsableTypes::only(ProcType::NvidiaGpu),
            },
        ];
        let a = ideal_allocation(&hw, &demands);
        assert!((a.total_for(ProjectId(0)) - 15e9).abs() < 1e-3);
        assert!((a.total_for(ProjectId(1)) - 15e9).abs() < 1e-3);
        let split_a = a.device_split(ProjectId(0)).unwrap();
        let split_b = a.device_split(ProjectId(1)).unwrap();
        assert!((split_a[ProcType::Cpu] - 10e9).abs() < 1e-3);
        assert!((split_a[ProcType::NvidiaGpu] - 5e9).abs() < 1e-3);
        assert!((split_b[ProcType::NvidiaGpu] - 15e9).abs() < 1e-3);
        assert!(a.unusable_flops < 1e-3);
    }

    #[test]
    fn scenario2_reference() {
        // 4 CPUs (1 GF each) + 1 GPU (10 GF). P1 CPU-only, P2 CPU+GPU,
        // equal shares. Entitlement 7 GF each, but P1 can only reach 4 GF
        // (all CPUs); P2 gets the GPU plus leftover nothing => 10.
        let hw = Hardware::cpu_only(4, 1e9).with_group(ProcType::NvidiaGpu, 1, 10e9);
        let demands = [
            ShareDemand { id: ProjectId(0), share: 1.0, usable: UsableTypes::only(ProcType::Cpu) },
            ShareDemand {
                id: ProjectId(1),
                share: 1.0,
                usable: UsableTypes::of(&[ProcType::Cpu, ProcType::NvidiaGpu]),
            },
        ];
        let a = ideal_allocation(&hw, &demands);
        assert!((a.total_for(ProjectId(0)) - 4e9).abs() < 1e-3);
        assert!((a.total_for(ProjectId(1)) - 10e9).abs() < 1e-3);
        // P1 should own the whole CPU; P2's CPU share should be zero.
        let split2 = a.device_split(ProjectId(1)).unwrap();
        assert!(split2[ProcType::Cpu].abs() < 1e-3);
    }

    #[test]
    fn unequal_shares() {
        let hw = Hardware::cpu_only(2, 5e9);
        let demands = [
            ShareDemand { id: ProjectId(0), share: 3.0, usable: UsableTypes::only(ProcType::Cpu) },
            ShareDemand { id: ProjectId(1), share: 1.0, usable: UsableTypes::only(ProcType::Cpu) },
        ];
        let a = ideal_allocation(&hw, &demands);
        assert!((a.total_for(ProjectId(0)) - 7.5e9).abs() < 1e-3);
        assert!((a.total_for(ProjectId(1)) - 2.5e9).abs() < 1e-3);
    }

    #[test]
    fn no_usable_device_idles_unless_unusable() {
        // GPU present but no project can use it: counted as unusable.
        let hw = Hardware::cpu_only(1, 1e9).with_group(ProcType::AtiGpu, 1, 4e9);
        let demands = [ShareDemand {
            id: ProjectId(0),
            share: 1.0,
            usable: UsableTypes::only(ProcType::Cpu),
        }];
        let a = ideal_allocation(&hw, &demands);
        assert!((a.total_for(ProjectId(0)) - 1e9).abs() < 1e-3);
        assert!((a.unusable_flops - 4e9).abs() < 1e-3);
    }

    #[test]
    fn conservation_and_no_overcommit() {
        let hw = Hardware::cpu_only(4, 2e9).with_group(ProcType::NvidiaGpu, 2, 8e9).with_group(
            ProcType::AtiGpu,
            1,
            6e9,
        );
        let demands = [
            ShareDemand { id: ProjectId(0), share: 5.0, usable: UsableTypes::only(ProcType::Cpu) },
            ShareDemand {
                id: ProjectId(1),
                share: 2.0,
                usable: UsableTypes::of(&[ProcType::Cpu, ProcType::NvidiaGpu]),
            },
            ShareDemand {
                id: ProjectId(2),
                share: 1.0,
                usable: UsableTypes::of(&[ProcType::NvidiaGpu, ProcType::AtiGpu]),
            },
        ];
        let a = ideal_allocation(&hw, &demands);
        // Per-device totals must not exceed capacity; everything usable is
        // allocated.
        for t in ProcType::ALL {
            let used: f64 = a.per_project.iter().map(|(_, m)| m[t]).sum();
            assert!(used <= hw.peak_flops(t) + 1.0);
        }
        let total: f64 = a.per_project.iter().map(|(_, m)| m.total()).sum();
        assert!((total + a.unusable_flops - hw.total_peak_flops()).abs() < 1.0);
    }

    #[test]
    fn zero_share_project_gets_nothing() {
        let hw = Hardware::cpu_only(1, 1e9);
        let demands = [
            ShareDemand { id: ProjectId(0), share: 0.0, usable: UsableTypes::only(ProcType::Cpu) },
            ShareDemand { id: ProjectId(1), share: 1.0, usable: UsableTypes::only(ProcType::Cpu) },
        ];
        let a = ideal_allocation(&hw, &demands);
        assert_eq!(a.total_for(ProjectId(0)), 0.0);
        assert!((a.total_for(ProjectId(1)) - 1e9).abs() < 1e-3);
    }

    #[test]
    fn empty_demands() {
        let hw = Hardware::cpu_only(2, 1e9);
        let a = ideal_allocation(&hw, &[]);
        assert!(a.per_project.is_empty());
        assert!((a.unusable_flops - 2e9).abs() < 1e-3);
    }
}

//! Strongly-typed identifiers for the entities in a scenario.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident($inner:ty), $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies an attached project within a scenario. Project ids are
    /// dense: scenario builders assign `0..n`.
    ProjectId(u32),
    "P"
);
id_type!(
    /// Identifies a job (a BOINC "result") dispatched by a project server.
    /// Unique across all projects within an emulation run.
    JobId(u64),
    "J"
);
id_type!(
    /// Identifies an application class (a job template) within a project.
    AppId(u32),
    "A"
);

/// Identifies one processor instance on the host, e.g. "CPU 2" or
/// "NVIDIA GPU 0".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId {
    pub proc_type: crate::proc::ProcType,
    pub index: u32,
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.proc_type.short_name(), self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::ProcType;

    #[test]
    fn display_forms() {
        assert_eq!(ProjectId(3).to_string(), "P3");
        assert_eq!(JobId(42).to_string(), "J42");
        assert_eq!(AppId(1).to_string(), "A1");
        let inst = InstanceId { proc_type: ProcType::Cpu, index: 2 };
        assert_eq!(inst.to_string(), "CPU[2]");
    }

    #[test]
    fn ordering_and_index() {
        assert!(JobId(1) < JobId(2));
        assert_eq!(ProjectId(7).index(), 7);
        assert_eq!(ProjectId::from(9u32), ProjectId(9));
    }
}

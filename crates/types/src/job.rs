//! Jobs and their resource usage (§2.3 of the paper).

use crate::ids::{AppId, JobId, ProjectId};
use crate::proc::{Hardware, ProcType};
use crate::time::{SimDuration, SimTime};

/// The processing resources a job occupies while running (§2.3):
/// a (possibly fractional) number of CPUs, plus optionally a (possibly
/// fractional) number of instances of one GPU type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUsage {
    /// Number of CPUs used, typically the number of CPU-intensive threads.
    /// May be fractional.
    pub avg_cpus: f64,
    /// GPU usage: `(type, instances)`. Fractional instances mean the job
    /// uses at most that fraction of the GPU's cores and memory.
    pub coproc: Option<(ProcType, f64)>,
}

impl ResourceUsage {
    /// A single-threaded CPU job.
    pub fn one_cpu() -> Self {
        ResourceUsage { avg_cpus: 1.0, coproc: None }
    }

    /// A multi-thread CPU job.
    pub fn cpus(n: f64) -> Self {
        ResourceUsage { avg_cpus: n, coproc: None }
    }

    /// A GPU job: `ninst` instances of `gpu` plus a small CPU fraction for
    /// the feeding thread.
    pub fn gpu(gpu: ProcType, ninst: f64, avg_cpus: f64) -> Self {
        debug_assert!(gpu.is_gpu());
        ResourceUsage { avg_cpus, coproc: Some((gpu, ninst)) }
    }

    /// Is this a GPU job in the paper's sense ("if J uses a GPU, we call it
    /// a GPU job")?
    pub fn is_gpu_job(&self) -> bool {
        self.coproc.is_some()
    }

    /// The type whose instances bound this job's execution: the GPU type
    /// for GPU jobs, CPU otherwise.
    pub fn main_proc_type(&self) -> ProcType {
        match self.coproc {
            Some((t, _)) => t,
            None => ProcType::Cpu,
        }
    }

    /// Instances of `t` occupied while running.
    pub fn instances_of(&self, t: ProcType) -> f64 {
        match t {
            ProcType::Cpu => self.avg_cpus,
            _ => match self.coproc {
                Some((ct, n)) if ct == t => n,
                _ => 0.0,
            },
        }
    }

    /// Peak FLOPS this job engages when running on `hw` — the paper's unit
    /// of resource accounting. GPU jobs count both their GPU share and their
    /// CPU fraction.
    pub fn peak_flops_on(&self, hw: &Hardware) -> f64 {
        let mut f = self.avg_cpus * hw.flops_per_inst(ProcType::Cpu);
        if let Some((t, n)) = self.coproc {
            f += n * hw.flops_per_inst(t);
        }
        f
    }
}

impl Default for ResourceUsage {
    fn default() -> Self {
        ResourceUsage::one_cpu()
    }
}

/// How a-priori runtime estimates relate to actual runtimes
/// (§4.1: "errors (random or systematic) in a priori job runtime
/// estimates"; modelling them is a §6.2 future-work item we implement).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EstErrorModel {
    /// Estimates are exact.
    #[default]
    Exact,
    /// Systematic error: estimate = actual × factor.
    Systematic { factor: f64 },
    /// Random error: estimate = actual × exp(N(0, sigma²)) — log-normal
    /// multiplicative noise.
    LogNormal { sigma: f64 },
}

/// A concrete job instance, as dispatched by a project server to the client.
///
/// Work is measured in *dedicated seconds*: `duration` is the wall time the
/// job needs when it holds its full resource allocation continuously. The
/// emulator converts to FLOPs via [`ResourceUsage::peak_flops_on`] when
/// computing figures of merit.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub id: JobId,
    pub project: ProjectId,
    pub app: AppId,
    pub usage: ResourceUsage,
    /// True runtime at full allocation. Unknown to the client's policies;
    /// they must rely on `duration_est`.
    pub duration: SimDuration,
    /// The server-supplied runtime estimate the client schedules with.
    pub duration_est: SimDuration,
    /// Completion must occur within this span of the dispatch time
    /// (the "latency bound"; local deadline = `received` + bound).
    pub latency_bound: SimDuration,
    /// Checkpoint interval in dedicated-execution seconds; `None` means the
    /// application never checkpoints (preemption loses all progress).
    pub checkpoint_period: Option<SimDuration>,
    /// Working-set size while running, for memory-aware scheduling.
    pub working_set_bytes: f64,
    /// Input / output file sizes, for the file-transfer model.
    pub input_bytes: f64,
    pub output_bytes: f64,
    /// When the client received this job.
    pub received: SimTime,
}

impl JobSpec {
    /// The local deadline (§2.3): dispatch time plus latency bound.
    pub fn deadline(&self) -> SimTime {
        self.received + self.latency_bound
    }

    /// Slack available at dispatch: latency bound minus estimated runtime.
    pub fn slack_est(&self) -> SimDuration {
        self.latency_bound - self.duration_est
    }
}

/// A job already in the client's queue at the start of the emulation —
/// state files carry the volunteer's in-flight results, and replaying a
/// reported anomaly requires restoring them (§4.3). The concrete
/// [`JobSpec`] is drawn from the named app class when the emulation
/// starts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitialJob {
    pub project: ProjectId,
    pub app: AppId,
    /// How long before the emulation start the job was received
    /// (its deadline is `-received_ago + latency_bound`).
    pub received_ago: SimDuration,
    /// Dedicated-execution seconds already completed.
    pub progress: SimDuration,
}

/// Outcome of a job from the client's perspective, used by metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Completed at or before its deadline.
    MetDeadline,
    /// Completed, but after the deadline (the server has re-issued it, so
    /// the processing counts as wasted).
    MissedDeadline,
    /// Aborted before completion (e.g. end of emulation, or abandoned).
    Unfinished,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(usage: ResourceUsage) -> JobSpec {
        JobSpec {
            id: JobId(1),
            project: ProjectId(0),
            app: AppId(0),
            usage,
            duration: SimDuration::from_secs(1000.0),
            duration_est: SimDuration::from_secs(1000.0),
            latency_bound: SimDuration::from_secs(1500.0),
            checkpoint_period: Some(SimDuration::from_secs(60.0)),
            working_set_bytes: 1e8,
            input_bytes: 0.0,
            output_bytes: 0.0,
            received: SimTime::from_secs(500.0),
        }
    }

    #[test]
    fn deadline_is_receipt_plus_latency_bound() {
        let j = job(ResourceUsage::one_cpu());
        assert_eq!(j.deadline(), SimTime::from_secs(2000.0));
        assert_eq!(j.slack_est(), SimDuration::from_secs(500.0));
    }

    #[test]
    fn cpu_job_usage() {
        let u = ResourceUsage::cpus(2.0);
        assert!(!u.is_gpu_job());
        assert_eq!(u.main_proc_type(), ProcType::Cpu);
        assert_eq!(u.instances_of(ProcType::Cpu), 2.0);
        assert_eq!(u.instances_of(ProcType::NvidiaGpu), 0.0);
    }

    #[test]
    fn gpu_job_usage() {
        let u = ResourceUsage::gpu(ProcType::NvidiaGpu, 0.5, 0.2);
        assert!(u.is_gpu_job());
        assert_eq!(u.main_proc_type(), ProcType::NvidiaGpu);
        assert_eq!(u.instances_of(ProcType::NvidiaGpu), 0.5);
        assert_eq!(u.instances_of(ProcType::AtiGpu), 0.0);
        assert_eq!(u.instances_of(ProcType::Cpu), 0.2);
    }

    #[test]
    fn peak_flops_counts_both_resources() {
        let hw = Hardware::cpu_only(4, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10);
        let u = ResourceUsage::gpu(ProcType::NvidiaGpu, 1.0, 0.5);
        assert_eq!(u.peak_flops_on(&hw), 1e10 + 0.5e9);
        let c = ResourceUsage::one_cpu();
        assert_eq!(c.peak_flops_on(&hw), 1e9);
    }
}

//! Validation errors for scenario construction.

use std::fmt;

/// A problem detected while validating a scenario or its components.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A project references a processor type the host does not have.
    MissingProcType { project: String, proc_type: &'static str },
    /// A numeric field is outside its valid range.
    OutOfRange { what: &'static str, value: f64, expected: &'static str },
    /// A required collection is empty.
    Empty(&'static str),
    /// Duplicate identifier.
    DuplicateId(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::MissingProcType { project, proc_type } => {
                write!(f, "project {project} has {proc_type} apps but the host has no {proc_type}")
            }
            ModelError::OutOfRange { what, value, expected } => {
                write!(f, "{what} = {value} out of range (expected {expected})")
            }
            ModelError::Empty(what) => write!(f, "{what} must not be empty"),
            ModelError::DuplicateId(id) => write!(f, "duplicate identifier {id}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Every problem a scenario validation found, not just the first one —
/// so a user fixing a hand-written state file sees the whole list in one
/// round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioErrors(pub Vec<ModelError>);

impl ScenarioErrors {
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, ModelError> {
        self.0.iter()
    }
}

impl fmt::Display for ScenarioErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.as_slice() {
            [] => write!(f, "no errors"),
            [one] => write!(f, "{one}"),
            many => {
                write!(f, "{} problems:", many.len())?;
                for e in many {
                    write!(f, "\n  - {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ScenarioErrors {}

impl From<ModelError> for ScenarioErrors {
    fn from(e: ModelError) -> Self {
        ScenarioErrors(vec![e])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::OutOfRange { what: "resource_share", value: -1.0, expected: ">= 0" };
        assert!(e.to_string().contains("resource_share"));
        let e = ModelError::Empty("projects");
        assert_eq!(e.to_string(), "projects must not be empty");
        let e = ModelError::DuplicateId("P1".into());
        assert!(e.to_string().contains("P1"));
        let e = ModelError::MissingProcType { project: "x".into(), proc_type: "NVIDIA GPU" };
        assert!(e.to_string().contains("NVIDIA GPU"));
    }
}

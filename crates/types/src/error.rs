//! Validation errors for scenario construction.

use std::fmt;

/// A problem detected while validating a scenario or its components.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A project references a processor type the host does not have.
    MissingProcType { project: String, proc_type: &'static str },
    /// A numeric field is outside its valid range.
    OutOfRange { what: &'static str, value: f64, expected: &'static str },
    /// A required collection is empty.
    Empty(&'static str),
    /// Duplicate identifier.
    DuplicateId(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::MissingProcType { project, proc_type } => {
                write!(f, "project {project} has {proc_type} apps but the host has no {proc_type}")
            }
            ModelError::OutOfRange { what, value, expected } => {
                write!(f, "{what} = {value} out of range (expected {expected})")
            }
            ModelError::Empty(what) => write!(f, "{what} must not be empty"),
            ModelError::DuplicateId(id) => write!(f, "duplicate identifier {id}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::OutOfRange { what: "resource_share", value: -1.0, expected: ">= 0" };
        assert!(e.to_string().contains("resource_share"));
        let e = ModelError::Empty("projects");
        assert_eq!(e.to_string(), "projects must not be empty");
        let e = ModelError::DuplicateId("P1".into());
        assert!(e.to_string().contains("P1"));
        let e = ModelError::MissingProcType { project: "x".into(), proc_type: "NVIDIA GPU" };
        assert!(e.to_string().contains("NVIDIA GPU"));
    }
}

//! Projects, application classes, and server-side supply models (§2.1, §2.3).

use crate::ids::{AppId, ProjectId};
use crate::job::{EstErrorModel, ResourceUsage};
use crate::time::SimDuration;

/// A job template: one kind of job a project supplies. Servers draw concrete
/// [`crate::job::JobSpec`]s from these (runtimes are normally distributed,
/// §4.3a).
#[derive(Debug, Clone, PartialEq)]
pub struct AppClass {
    pub id: AppId,
    pub name: String,
    pub usage: ResourceUsage,
    /// Mean actual runtime at full allocation.
    pub runtime_mean: SimDuration,
    /// Coefficient of variation of the (truncated) normal runtime
    /// distribution. Zero makes runtimes deterministic.
    pub runtime_cv: f64,
    /// How the server's runtime estimate deviates from the truth.
    pub est_error: EstErrorModel,
    /// Latency bound assigned to jobs of this class.
    pub latency_bound: SimDuration,
    /// Checkpoint interval; `None` = the application never checkpoints.
    pub checkpoint_period: Option<SimDuration>,
    pub working_set_bytes: f64,
    pub input_bytes: f64,
    pub output_bytes: f64,
    /// Relative weight of this class in the project's job mix.
    pub weight: f64,
    /// Sporadic availability of this particular job type (§6.2: "the
    /// sporadic availability of particular types of jobs (for example,
    /// GPU jobs)"): alternating exponential have-work / dry periods.
    /// `None` = always available while the project has work.
    pub supply: Option<SporadicSupply>,
}

/// Alternating exponential availability of one job class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SporadicSupply {
    pub work_mean: SimDuration,
    pub dry_mean: SimDuration,
}

impl AppClass {
    /// A plain CPU application with sensible defaults, for tests and
    /// builders.
    pub fn cpu(id: u32, runtime: SimDuration, latency_bound: SimDuration) -> Self {
        AppClass {
            id: AppId(id),
            name: format!("app{id}"),
            usage: ResourceUsage::one_cpu(),
            runtime_mean: runtime,
            runtime_cv: 0.05,
            est_error: EstErrorModel::Exact,
            latency_bound,
            checkpoint_period: Some(SimDuration::from_secs(60.0)),
            working_set_bytes: 1e8,
            input_bytes: 0.0,
            output_bytes: 0.0,
            weight: 1.0,
            supply: None,
        }
    }

    /// A GPU application variant of [`AppClass::cpu`].
    pub fn gpu(
        id: u32,
        gpu: crate::proc::ProcType,
        runtime: SimDuration,
        latency_bound: SimDuration,
    ) -> Self {
        let mut a = AppClass::cpu(id, runtime, latency_bound);
        a.name = format!("gpu_app{id}");
        a.usage = ResourceUsage::gpu(gpu, 1.0, 0.05);
        a
    }

    pub fn with_cv(mut self, cv: f64) -> Self {
        self.runtime_cv = cv;
        self
    }

    pub fn with_weight(mut self, w: f64) -> Self {
        self.weight = w;
        self
    }

    pub fn with_checkpoint(mut self, p: Option<SimDuration>) -> Self {
        self.checkpoint_period = p;
        self
    }

    pub fn with_est_error(mut self, e: EstErrorModel) -> Self {
        self.est_error = e;
        self
    }

    pub fn with_files(mut self, input_bytes: f64, output_bytes: f64) -> Self {
        self.input_bytes = input_bytes;
        self.output_bytes = output_bytes;
        self
    }

    pub fn with_working_set(mut self, bytes: f64) -> Self {
        self.working_set_bytes = bytes;
        self
    }

    /// Make this job class sporadically available (§6.2).
    pub fn with_supply(mut self, work_mean: SimDuration, dry_mean: SimDuration) -> Self {
        self.supply = Some(SporadicSupply { work_mean, dry_mean });
        self
    }
}

/// How much work a project's server can hand out (§4.1: "there may be
/// periods when a given project has no jobs available").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WorkSupply {
    /// The server always has jobs of every app class.
    #[default]
    Unlimited,
    /// The server alternates between having work (mean `work_mean`) and
    /// being dry (mean `dry_mean`); both exponential.
    Sporadic { work_mean: SimDuration, dry_mean: SimDuration },
    /// The server has a finite batch of jobs and is dry afterwards.
    Batch { njobs: u64 },
}

/// Server reachability (§6.2: "some projects are sporadically down for
/// maintenance").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ServerUptime {
    #[default]
    AlwaysUp,
    /// Exponential up/down alternation.
    Sporadic { up_mean: SimDuration, down_mean: SimDuration },
}

/// One attached project (§2.1): a resource share plus the kinds of jobs its
/// server supplies.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectSpec {
    pub id: ProjectId,
    pub name: String,
    /// Volunteer-specified share of the host's aggregate processing
    /// resources. Shares are relative weights, not fractions.
    pub resource_share: f64,
    pub apps: Vec<AppClass>,
    pub supply: WorkSupply,
    pub uptime: ServerUptime,
}

impl ProjectSpec {
    pub fn new(id: u32, name: impl Into<String>, resource_share: f64) -> Self {
        ProjectSpec {
            id: ProjectId(id),
            name: name.into(),
            resource_share,
            apps: Vec::new(),
            supply: WorkSupply::Unlimited,
            uptime: ServerUptime::AlwaysUp,
        }
    }

    pub fn with_app(mut self, app: AppClass) -> Self {
        self.apps.push(app);
        self
    }

    pub fn with_supply(mut self, s: WorkSupply) -> Self {
        self.supply = s;
        self
    }

    pub fn with_uptime(mut self, u: ServerUptime) -> Self {
        self.uptime = u;
        self
    }

    /// Processor types this project has applications for.
    pub fn proc_types(&self) -> impl Iterator<Item = crate::proc::ProcType> + '_ {
        crate::proc::ProcType::ALL
            .into_iter()
            .filter(|&t| self.apps.iter().any(|a| a.usage.main_proc_type() == t))
    }

    pub fn has_apps_for(&self, t: crate::proc::ProcType) -> bool {
        self.apps.iter().any(|a| a.usage.main_proc_type() == t)
    }
}

/// Compute each project's share fraction among an arbitrary subset.
/// Returns 0 for an empty/zero-share set rather than dividing by zero.
pub fn share_fraction(projects: &[ProjectSpec], id: ProjectId) -> f64 {
    let total: f64 = projects.iter().map(|p| p.resource_share).sum();
    if total <= 0.0 {
        return 0.0;
    }
    projects.iter().find(|p| p.id == id).map_or(0.0, |p| p.resource_share / total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::ProcType;

    #[test]
    fn proc_types_reflect_apps() {
        let p = ProjectSpec::new(0, "alpha", 100.0)
            .with_app(AppClass::cpu(
                0,
                SimDuration::from_secs(1000.0),
                SimDuration::from_hours(6.0),
            ))
            .with_app(AppClass::gpu(
                1,
                ProcType::NvidiaGpu,
                SimDuration::from_secs(500.0),
                SimDuration::from_hours(6.0),
            ));
        let types: Vec<_> = p.proc_types().collect();
        assert_eq!(types, vec![ProcType::Cpu, ProcType::NvidiaGpu]);
        assert!(p.has_apps_for(ProcType::Cpu));
        assert!(!p.has_apps_for(ProcType::AtiGpu));
    }

    #[test]
    fn share_fraction_normalizes() {
        let ps = vec![ProjectSpec::new(0, "a", 100.0), ProjectSpec::new(1, "b", 300.0)];
        assert_eq!(share_fraction(&ps, ProjectId(0)), 0.25);
        assert_eq!(share_fraction(&ps, ProjectId(1)), 0.75);
        assert_eq!(share_fraction(&ps, ProjectId(9)), 0.0);
    }

    #[test]
    fn share_fraction_empty_is_zero() {
        assert_eq!(share_fraction(&[], ProjectId(0)), 0.0);
        let zero = vec![ProjectSpec::new(0, "z", 0.0)];
        assert_eq!(share_fraction(&zero, ProjectId(0)), 0.0);
    }

    #[test]
    fn builders_chain() {
        let app = AppClass::cpu(0, SimDuration::from_secs(100.0), SimDuration::from_secs(200.0))
            .with_cv(0.0)
            .with_weight(2.0)
            .with_checkpoint(None)
            .with_files(1e6, 2e6)
            .with_working_set(5e8);
        assert_eq!(app.runtime_cv, 0.0);
        assert_eq!(app.weight, 2.0);
        assert_eq!(app.checkpoint_period, None);
        assert_eq!(app.input_bytes, 1e6);
        assert_eq!(app.working_set_bytes, 5e8);
    }
}

//! The `bce` command-line tool. See `bce help`.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match bce_cli::dispatch(raw) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            // Exit-code classes (see CliError): 1 generic, 2 validation,
            // 3 I/O — so CI distinguishes "bad input" from "sick disk"
            // without grepping stderr.
            std::process::exit(e.exit_code);
        }
    }
}

//! The `bce` command-line tool. See `bce help`.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match bce_cli::dispatch(raw) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

//! `bce bench` — the benchmark-trajectory harness.
//!
//! Runs the standard scenario set through the emulator, measuring wall
//! time and the engine's runtime counters (events processed, RR-simulation
//! queries/runs, cache-hit rate, peak queue depth), and renders the result
//! as machine-readable JSON. Successive reports are committed as
//! `BENCH_<pr>.json` at the repo root so the performance trajectory of the
//! codebase stays visible in review (see EXPERIMENTS.md).

use bce_client::{ClientConfig, JobSchedPolicy};
use bce_core::{EmulationResult, Emulator, EmulatorConfig, Scenario};
use bce_scenarios::{scenario1, scenario2, scenario3, scenario4};
use bce_types::SimDuration;

/// One benchmark scenario's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    pub name: String,
    pub days: f64,
    pub wall_ms: f64,
    pub events: u64,
    pub events_per_sec: f64,
    pub rr_queries: u64,
    pub rr_runs: u64,
    pub cache_hit_rate: f64,
    pub peak_jobs: usize,
    pub jobs_completed: u64,
}

/// The standard benchmark set: the four paper scenarios, with scenario 3
/// run over the fig6 60-day horizon (the heaviest workload in the repo).
/// Quick mode shrinks horizons for CI smoke runs.
fn standard_set(quick: bool) -> Vec<(String, Scenario, f64, ClientConfig)> {
    let d = |full: f64, q: f64| if quick { q } else { full };
    vec![
        (
            "scenario1_tight_deadlines".into(),
            scenario1(SimDuration::from_secs(1500.0)),
            d(10.0, 0.5),
            ClientConfig::default(),
        ),
        ("scenario2_cpu_gpu".into(), scenario2(), d(10.0, 0.5), ClientConfig::default()),
        (
            "scenario3_fig6_60d".into(),
            scenario3(),
            d(60.0, 2.0),
            ClientConfig {
                sched_policy: JobSchedPolicy::GLOBAL,
                rec_half_life: SimDuration::from_secs(1e6),
                ..Default::default()
            },
        ),
        ("scenario4_availability".into(), scenario4(), d(10.0, 0.5), ClientConfig::default()),
    ]
}

fn measure(name: &str, scenario: Scenario, days: f64, cfg: ClientConfig) -> BenchRecord {
    let emu = EmulatorConfig { duration: SimDuration::from_days(days), ..Default::default() };
    let start = std::time::Instant::now();
    let r: EmulationResult = Emulator::new(scenario, cfg, emu).run();
    let wall = start.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let events = r.perf.events_processed;
    BenchRecord {
        name: name.to_string(),
        days,
        wall_ms,
        events,
        events_per_sec: if wall_ms > 0.0 { events as f64 / (wall_ms / 1e3) } else { 0.0 },
        rr_queries: r.perf.rr_queries,
        rr_runs: r.perf.rr_runs,
        cache_hit_rate: r.perf.rr_hit_rate(),
        peak_jobs: r.perf.peak_jobs,
        jobs_completed: r.jobs_completed,
    }
}

/// Run the full benchmark suite.
pub fn run_bench(quick: bool) -> Vec<BenchRecord> {
    standard_set(quick).into_iter().map(|(n, s, d, c)| measure(&n, s, d, c)).collect()
}

/// JSON-escape + format helpers (the workspace is dependency-free, so the
/// report is rendered by hand; every value here is a finite number or a
/// controlled ASCII name, which keeps this trivial).
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// Render the benchmark report as JSON.
pub fn to_json(records: &[BenchRecord], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"bce\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"days\": {},\n", jnum(r.days)));
        out.push_str(&format!("      \"wall_ms\": {},\n", jnum(r.wall_ms)));
        out.push_str(&format!("      \"events\": {},\n", r.events));
        out.push_str(&format!("      \"events_per_sec\": {},\n", jnum(r.events_per_sec)));
        out.push_str(&format!("      \"rr_sim_queries\": {},\n", r.rr_queries));
        out.push_str(&format!("      \"rr_sim_runs\": {},\n", r.rr_runs));
        out.push_str(&format!("      \"cache_hit_rate\": {},\n", jnum(r.cache_hit_rate)));
        out.push_str(&format!("      \"peak_jobs\": {},\n", r.peak_jobs));
        out.push_str(&format!("      \"jobs_completed\": {}\n", r.jobs_completed));
        out.push_str(if i + 1 < records.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Human-readable summary table of a benchmark run.
pub fn summary(records: &[BenchRecord]) -> String {
    let mut t = bce_controller::Table::new(&[
        "scenario",
        "days",
        "wall_ms",
        "events",
        "events/s",
        "rr runs",
        "hit rate",
        "peak jobs",
    ]);
    for r in records {
        t.row(&[
            r.name.clone(),
            format!("{:.1}", r.days),
            format!("{:.1}", r.wall_ms),
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
            format!("{}/{}", r.rr_runs, r.rr_queries),
            format!("{:.3}", r.cache_hit_rate),
            r.peak_jobs.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_records() {
        let recs = run_bench(true);
        assert_eq!(recs.len(), 4);
        for r in &recs {
            assert!(r.events > 0, "{}: no events", r.name);
            assert!(r.rr_queries >= r.rr_runs, "{}: runs exceed queries", r.name);
        }
        // Scenario 3's jobs outlast the quick horizon, so completions are
        // only guaranteed suite-wide.
        assert!(recs.iter().map(|r| r.jobs_completed).sum::<u64>() > 0, "no jobs anywhere");
        // The fetch loop re-queries the snapshot at every decision point,
        // so some hits must occur.
        assert!(recs.iter().any(|r| r.cache_hit_rate > 0.0), "no cache hits anywhere");
    }

    #[test]
    fn json_is_well_formed() {
        let recs = vec![BenchRecord {
            name: "x".into(),
            days: 1.0,
            wall_ms: 12.5,
            events: 100,
            events_per_sec: 8000.0,
            rr_queries: 10,
            rr_runs: 4,
            cache_hit_rate: 0.6,
            peak_jobs: 7,
            jobs_completed: 3,
        }];
        let j = to_json(&recs, true);
        assert!(j.contains("\"quick\": true"));
        assert!(j.contains("\"wall_ms\": 12.500"));
        assert!(j.contains("\"cache_hit_rate\": 0.600"));
        // Balanced braces/brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(jnum(f64::NAN), "null");
        assert_eq!(jnum(f64::INFINITY), "null");
        assert_eq!(jnum(2.0), "2.000");
    }
}

//! `bce bench` — the benchmark-trajectory harness.
//!
//! Runs the standard scenario set through the emulator, measuring wall
//! time and the engine's runtime counters (events processed, RR-simulation
//! queries/runs, cache-hit rate, peak queue depth), then exercises the
//! population executor (`run_all` / `run_streaming`) against the
//! pre-executor baseline (`run_all_reference`) and reports population
//! throughput, executor overhead and peak memory. The result is rendered
//! as machine-readable JSON; successive reports are committed as
//! `BENCH_<pr>.json` at the repo root so the performance trajectory of the
//! codebase stays visible in review (see EXPERIMENTS.md).

use bce_client::{ClientConfig, JobSchedPolicy};
use bce_controller::{resolve_threads, run_all, run_all_reference, run_streaming, RunSpec};
use bce_core::{EmulationResult, Emulator, EmulatorConfig, Scenario};
use bce_scenarios::{
    scenario1, scenario2, scenario3, scenario4, PopulationModel, PopulationSampler,
};
use bce_types::SimDuration;
use std::sync::Arc;

/// One benchmark scenario's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    pub name: String,
    pub days: f64,
    pub wall_ms: f64,
    pub events: u64,
    pub events_per_sec: f64,
    pub rr_queries: u64,
    pub rr_runs: u64,
    /// Queries served from the retained snapshot inside the frozen-progress
    /// window (see the dirty-group refresh ladder in `bce-client`).
    pub rr_frozen: u64,
    pub cache_hit_rate: f64,
    /// Availability transitions absorbed into an earlier same-window event.
    pub flaps_coalesced: u64,
    /// Availability events whose net run-state delta was zero, skipping the
    /// reschedule pass entirely.
    pub avail_resched_skipped: u64,
    pub peak_jobs: usize,
    pub jobs_completed: u64,
}

/// Where the benchmark ran: how much parallelism the machine offers and
/// how much the population sections actually used.
#[derive(Debug, Clone, PartialEq)]
pub struct HostInfo {
    pub available_parallelism: usize,
    pub threads_used: usize,
}

/// Population-executor throughput measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationBench {
    /// Runs in the batch (`run_all`) section.
    pub runs: usize,
    pub threads: usize,
    /// Wall time of the new executor over `runs` runs.
    pub wall_ms: f64,
    pub runs_per_sec: f64,
    /// Sum of individual run wall times (serial pass, one arena).
    pub sum_run_wall_ms: f64,
    /// Executor wall minus perfectly-divided serial work: scheduling,
    /// channel and reduction cost that is not emulation.
    pub executor_overhead_ms: f64,
    /// Wall time of the pre-executor baseline (`run_all_reference`:
    /// per-run clones, fresh emulator, mutex funnel) at the same thread
    /// count.
    pub reference_wall_ms: f64,
    pub speedup_vs_reference: f64,
    /// Runs in the streaming (`run_streaming`) sweep section.
    pub streaming_runs: usize,
    pub streaming_wall_ms: f64,
    pub streaming_runs_per_sec: f64,
    /// Jobs completed across the streaming sweep (also keeps the work
    /// observable so nothing is optimized away).
    pub streaming_jobs_completed: u64,
    /// Peak resident set (VmHWM) after the streaming sweep, if the
    /// platform exposes it — a proxy for the O(workers) memory claim.
    pub peak_rss_mb: Option<f64>,
}

/// Cost of the observability layer on the heaviest workload in the repo
/// (scenario 3 over the fig6 horizon). Tracing and profiling are measured
/// in *separate* passes: profiling spans wrap per-event hot code with two
/// clock reads each, so folding them into the traced pass would bury the
/// tracing cost (the number the ≤ 2% target is about) under clock calls.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentationBench {
    pub days: f64,
    /// Wall time with tracing disabled (the production configuration).
    pub untraced_wall_ms: f64,
    /// Wall time with a 2M-event trace buffer (profiler off).
    pub traced_wall_ms: f64,
    /// `traced / untraced - 1`; the enabled-tracing cost. The disabled
    /// cost is held at zero by construction (no-op sink, closure-based
    /// emission) and enforced by the counting-allocator test.
    pub tracing_overhead_frac: f64,
    /// Wall time with profiling spans on (tracing off).
    pub profiled_wall_ms: f64,
    /// `profiled / untraced - 1`; the cost of timing every span.
    pub profiling_overhead_frac: f64,
    /// Events the traced run emitted (recorded + dropped at capacity).
    pub trace_events: u64,
    /// `bit_fingerprint()` of the traced and profiled runs both equal the
    /// untraced run's — observation never changes a result.
    pub fingerprint_match: bool,
    /// Profiling spans of the profiled run: (name, wall_ms, count).
    pub spans: Vec<(String, f64, u64)>,
}

/// Full `bce bench` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub quick: bool,
    pub host: HostInfo,
    pub scenarios: Vec<BenchRecord>,
    pub instrumentation: InstrumentationBench,
    pub population: PopulationBench,
}

/// The standard benchmark set: the four paper scenarios, with scenario 3
/// run over the fig6 60-day horizon (the heaviest workload in the repo).
/// Quick mode shrinks horizons for CI smoke runs.
fn standard_set(quick: bool) -> Vec<(String, Scenario, f64, ClientConfig)> {
    let d = |full: f64, q: f64| if quick { q } else { full };
    vec![
        (
            "scenario1_tight_deadlines".into(),
            scenario1(SimDuration::from_secs(1500.0)),
            d(10.0, 0.5),
            ClientConfig::default(),
        ),
        ("scenario2_cpu_gpu".into(), scenario2(), d(10.0, 0.5), ClientConfig::default()),
        (
            "scenario3_fig6_60d".into(),
            scenario3(),
            d(60.0, 2.0),
            ClientConfig {
                sched_policy: JobSchedPolicy::GLOBAL,
                rec_half_life: SimDuration::from_secs(1e6),
                ..Default::default()
            },
        ),
        ("scenario4_availability".into(), scenario4(), d(10.0, 0.5), ClientConfig::default()),
    ]
}

fn measure(name: &str, scenario: Scenario, days: f64, cfg: ClientConfig) -> BenchRecord {
    let emu = EmulatorConfig { duration: SimDuration::from_days(days), ..Default::default() };
    let start = std::time::Instant::now();
    let r: EmulationResult = Emulator::new(scenario, cfg, emu).run();
    let wall = start.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let events = r.perf.events_processed;
    BenchRecord {
        name: name.to_string(),
        days,
        wall_ms,
        events,
        events_per_sec: if wall_ms > 0.0 { events as f64 / (wall_ms / 1e3) } else { 0.0 },
        rr_queries: r.perf.rr_queries,
        rr_runs: r.perf.rr_runs,
        rr_frozen: r.perf.rr_frozen,
        cache_hit_rate: r.perf.rr_hit_rate(),
        flaps_coalesced: r.perf.flaps_coalesced,
        avail_resched_skipped: r.perf.avail_resched_skipped,
        peak_jobs: r.perf.peak_jobs,
        jobs_completed: r.jobs_completed,
    }
}

/// Measure the observability layer on the fig6 workload: wall time of the
/// untraced baseline vs. a traced pass (buffer only) vs. a profiled pass
/// (spans only), each the fastest of five runs with the first doubling
/// as warm-up, plus event volume and fingerprint identity.
fn run_instrumentation_bench(quick: bool) -> InstrumentationBench {
    let days = if quick { 2.0 } else { 60.0 };
    let cfg = ClientConfig {
        sched_policy: JobSchedPolicy::GLOBAL,
        rec_half_life: SimDuration::from_secs(1e6),
        ..Default::default()
    };
    let duration = SimDuration::from_days(days);
    let timed = |emu: EmulatorConfig| {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..5 {
            let start = std::time::Instant::now();
            let r = Emulator::new(scenario3(), cfg, emu.clone()).run();
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            result = Some(r);
        }
        (best, result.expect("passes ran"))
    };
    let overhead =
        |wall_ms: f64, base_ms: f64| if base_ms > 0.0 { wall_ms / base_ms - 1.0 } else { 0.0 };

    let (untraced_wall_ms, base) = timed(EmulatorConfig { duration, ..Default::default() });
    let (traced_wall_ms, traced) =
        timed(EmulatorConfig { duration, trace_capacity: 2_000_000, ..Default::default() });
    let (profiled_wall_ms, profiled) =
        timed(EmulatorConfig { duration, profile: true, ..Default::default() });

    let spans = profiled
        .profile
        .as_ref()
        .map(|p| p.spans.iter().map(|s| (s.name.clone(), s.wall_ms, s.count)).collect())
        .unwrap_or_default();
    InstrumentationBench {
        days,
        untraced_wall_ms,
        traced_wall_ms,
        tracing_overhead_frac: overhead(traced_wall_ms, untraced_wall_ms),
        profiled_wall_ms,
        profiling_overhead_frac: overhead(profiled_wall_ms, untraced_wall_ms),
        trace_events: traced.trace.emitted(),
        fingerprint_match: base.bit_fingerprint() == traced.bit_fingerprint()
            && base.bit_fingerprint() == profiled.bit_fingerprint(),
        spans,
    }
}

/// Peak resident set size in MB from `/proc/self/status` (VmHWM). Linux
/// only; other platforms report `None`.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn population_specs(
    n_runs: usize,
    distinct_scenarios: usize,
    sim_hours: f64,
    seed: u64,
) -> Vec<RunSpec> {
    let mut sampler = PopulationSampler::new(PopulationModel::default(), seed);
    let scenarios: Vec<Arc<Scenario>> = sampler
        .sample_many(distinct_scenarios.max(1).min(n_runs.max(1)))
        .into_iter()
        .map(Arc::new)
        .collect();
    let emu = Arc::new(EmulatorConfig {
        duration: SimDuration::from_hours(sim_hours),
        ..Default::default()
    });
    (0..n_runs)
        .map(|i| {
            let s = &scenarios[i % scenarios.len()];
            RunSpec::new(format!("pop{i}"), s.clone(), ClientConfig::default())
                .with_emulator(emu.clone())
        })
        .collect()
}

/// Measure the population executor: batch throughput and speedup against
/// the pre-executor baseline, plus a large streaming sweep whose result
/// set is never materialized.
fn run_population_bench(quick: bool, threads: usize, population: Option<usize>) -> PopulationBench {
    let threads_used = resolve_threads(threads);
    let runs = population.unwrap_or(if quick { 64 } else { 1000 });
    let specs = population_specs(runs, 512, if quick { 1.0 } else { 6.0 }, 42);

    // Sum of run wall times: serial passes over one arena with an empty
    // reducer — pure emulation cost, the work the executor has to
    // distribute. The first pass doubles as warm-up (allocator, page
    // cache); taking the faster of two passes damps scheduler noise.
    let sum_run_wall_ms = (0..2)
        .map(|_| {
            let start = std::time::Instant::now();
            run_streaming(&specs, 1, |_, _, _| {});
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min);

    let start = std::time::Instant::now();
    let results = run_all(specs.clone(), threads);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(results.len(), runs);
    drop(results);

    let start = std::time::Instant::now();
    let reference = run_all_reference(&specs, threads);
    let reference_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    drop(reference);

    // Streaming sweep: many more runs than the batch section, aggregated
    // on the fly so memory stays O(workers).
    let streaming_runs = population.map(|p| p * 10).unwrap_or(if quick { 2000 } else { 100_000 });
    let streaming_specs = population_specs(streaming_runs, 512, if quick { 0.5 } else { 1.0 }, 43);
    let mut streaming_jobs_completed = 0u64;
    let start = std::time::Instant::now();
    run_streaming(&streaming_specs, threads, |_, _, r| {
        streaming_jobs_completed += r.jobs_completed;
    });
    let streaming_wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let per_sec = |n: usize, ms: f64| if ms > 0.0 { n as f64 / (ms / 1e3) } else { 0.0 };
    PopulationBench {
        runs,
        threads: threads_used,
        wall_ms,
        runs_per_sec: per_sec(runs, wall_ms),
        sum_run_wall_ms,
        executor_overhead_ms: wall_ms - sum_run_wall_ms / threads_used as f64,
        reference_wall_ms,
        speedup_vs_reference: if wall_ms > 0.0 { reference_wall_ms / wall_ms } else { 0.0 },
        streaming_runs,
        streaming_wall_ms,
        streaming_runs_per_sec: per_sec(streaming_runs, streaming_wall_ms),
        streaming_jobs_completed,
        peak_rss_mb: peak_rss_mb(),
    }
}

/// Run the full benchmark suite: the standard scenarios plus the
/// population-executor section. `threads` 0 means one worker per CPU;
/// `population` overrides the batch run count (streaming uses 10×);
/// `extra` appends one user-referenced scenario to the measured set.
pub fn run_bench(
    quick: bool,
    threads: usize,
    population: Option<usize>,
    extra: Option<(String, Scenario)>,
) -> BenchReport {
    let mut set = standard_set(quick);
    if let Some((name, s)) = extra {
        let days = if quick { 0.5 } else { 10.0 };
        set.push((name, s, days, ClientConfig::default()));
    }
    let scenarios = set.into_iter().map(|(n, s, d, c)| measure(&n, s, d, c)).collect();
    let instrumentation = run_instrumentation_bench(quick);
    let population = run_population_bench(quick, threads, population);
    BenchReport {
        quick,
        host: HostInfo {
            available_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(0),
            threads_used: population.threads,
        },
        scenarios,
        instrumentation,
        population,
    }
}

/// JSON-escape + format helpers (the workspace is dependency-free, so the
/// report is rendered by hand; every value here is a finite number or a
/// controlled ASCII name, which keeps this trivial).
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn jopt(x: Option<f64>) -> String {
    match x {
        Some(v) => jnum(v),
        None => "null".to_string(),
    }
}

/// Render the benchmark report as JSON.
pub fn to_json(report: &BenchReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"bce\",\n");
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str("  \"host\": {\n");
    out.push_str(&format!(
        "    \"available_parallelism\": {},\n",
        report.host.available_parallelism
    ));
    out.push_str(&format!("    \"threads_used\": {}\n", report.host.threads_used));
    out.push_str("  },\n");
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in report.scenarios.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"days\": {},\n", jnum(r.days)));
        out.push_str(&format!("      \"wall_ms\": {},\n", jnum(r.wall_ms)));
        out.push_str(&format!("      \"events\": {},\n", r.events));
        out.push_str(&format!("      \"events_per_sec\": {},\n", jnum(r.events_per_sec)));
        out.push_str(&format!("      \"rr_sim_queries\": {},\n", r.rr_queries));
        out.push_str(&format!("      \"rr_sim_runs\": {},\n", r.rr_runs));
        out.push_str(&format!("      \"rr_sim_frozen\": {},\n", r.rr_frozen));
        out.push_str(&format!("      \"cache_hit_rate\": {},\n", jnum(r.cache_hit_rate)));
        out.push_str(&format!("      \"flaps_coalesced\": {},\n", r.flaps_coalesced));
        out.push_str(&format!("      \"avail_resched_skipped\": {},\n", r.avail_resched_skipped));
        out.push_str(&format!("      \"peak_jobs\": {},\n", r.peak_jobs));
        out.push_str(&format!("      \"jobs_completed\": {}\n", r.jobs_completed));
        out.push_str(if i + 1 < report.scenarios.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");
    let ib = &report.instrumentation;
    out.push_str("  \"instrumentation\": {\n");
    out.push_str(&format!("    \"days\": {},\n", jnum(ib.days)));
    out.push_str(&format!("    \"untraced_wall_ms\": {},\n", jnum(ib.untraced_wall_ms)));
    out.push_str(&format!("    \"traced_wall_ms\": {},\n", jnum(ib.traced_wall_ms)));
    out.push_str(&format!("    \"tracing_overhead_frac\": {},\n", jnum(ib.tracing_overhead_frac)));
    out.push_str(&format!("    \"profiled_wall_ms\": {},\n", jnum(ib.profiled_wall_ms)));
    out.push_str(&format!(
        "    \"profiling_overhead_frac\": {},\n",
        jnum(ib.profiling_overhead_frac)
    ));
    out.push_str(&format!("    \"trace_events\": {},\n", ib.trace_events));
    out.push_str(&format!("    \"fingerprint_match\": {},\n", ib.fingerprint_match));
    out.push_str("    \"spans\": [\n");
    for (i, (name, wall_ms, count)) in ib.spans.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"name\": \"{name}\", \"wall_ms\": {}, \"count\": {count}}}{}\n",
            jnum(*wall_ms),
            if i + 1 < ib.spans.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    let p = &report.population;
    out.push_str("  \"population\": {\n");
    out.push_str(&format!("    \"runs\": {},\n", p.runs));
    out.push_str(&format!("    \"threads\": {},\n", p.threads));
    out.push_str(&format!("    \"wall_ms\": {},\n", jnum(p.wall_ms)));
    out.push_str(&format!("    \"runs_per_sec\": {},\n", jnum(p.runs_per_sec)));
    out.push_str(&format!("    \"sum_run_wall_ms\": {},\n", jnum(p.sum_run_wall_ms)));
    out.push_str(&format!("    \"executor_overhead_ms\": {},\n", jnum(p.executor_overhead_ms)));
    out.push_str(&format!("    \"reference_wall_ms\": {},\n", jnum(p.reference_wall_ms)));
    out.push_str(&format!("    \"speedup_vs_reference\": {},\n", jnum(p.speedup_vs_reference)));
    out.push_str(&format!("    \"streaming_runs\": {},\n", p.streaming_runs));
    out.push_str(&format!("    \"streaming_wall_ms\": {},\n", jnum(p.streaming_wall_ms)));
    out.push_str(&format!("    \"streaming_runs_per_sec\": {},\n", jnum(p.streaming_runs_per_sec)));
    out.push_str(&format!("    \"streaming_jobs_completed\": {},\n", p.streaming_jobs_completed));
    out.push_str(&format!("    \"peak_rss_mb\": {}\n", jopt(p.peak_rss_mb)));
    out.push_str("  }\n}\n");
    out
}

/// Human-readable summary of a benchmark run.
pub fn summary(report: &BenchReport) -> String {
    let mut t = bce_controller::Table::new(&[
        "scenario",
        "days",
        "wall_ms",
        "events",
        "events/s",
        "rr runs",
        "frozen",
        "hit rate",
        "flaps",
        "peak jobs",
    ]);
    for r in &report.scenarios {
        t.row(&[
            r.name.clone(),
            format!("{:.1}", r.days),
            format!("{:.1}", r.wall_ms),
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
            format!("{}/{}", r.rr_runs, r.rr_queries),
            r.rr_frozen.to_string(),
            format!("{:.3}", r.cache_hit_rate),
            format!("{}+{}", r.flaps_coalesced, r.avail_resched_skipped),
            r.peak_jobs.to_string(),
        ]);
    }
    let p = &report.population;
    let mut out = t.render();
    let ib = &report.instrumentation;
    out.push_str(&format!(
        "\ninstrumentation (scenario3, {:.0} days): untraced {:.1} ms, traced {:.1} ms \
         ({:+.1}% overhead, {} events), profiled {:.1} ms ({:+.1}%), fingerprints {}\n",
        ib.days,
        ib.untraced_wall_ms,
        ib.traced_wall_ms,
        ib.tracing_overhead_frac * 100.0,
        ib.trace_events,
        ib.profiled_wall_ms,
        ib.profiling_overhead_frac * 100.0,
        if ib.fingerprint_match { "match" } else { "DIVERGE" },
    ));
    out.push_str(&format!(
        "\npopulation executor ({} threads of {} available):\n",
        p.threads, report.host.available_parallelism
    ));
    out.push_str(&format!(
        "  batch     {} runs in {:.1} ms ({:.0} runs/s), overhead {:.1} ms, \
         {:.2}x vs pre-executor baseline ({:.1} ms)\n",
        p.runs,
        p.wall_ms,
        p.runs_per_sec,
        p.executor_overhead_ms,
        p.speedup_vs_reference,
        p.reference_wall_ms
    ));
    out.push_str(&format!(
        "  streaming {} runs in {:.1} ms ({:.0} runs/s), peak RSS {}\n",
        p.streaming_runs,
        p.streaming_wall_ms,
        p.streaming_runs_per_sec,
        p.peak_rss_mb.map(|m| format!("{m:.0} MB")).unwrap_or_else(|| "n/a".into()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_records() {
        let report = run_bench(true, 2, Some(8), None);
        assert_eq!(report.scenarios.len(), 4);
        for r in &report.scenarios {
            assert!(r.events > 0, "{}: no events", r.name);
            assert!(r.rr_queries >= r.rr_runs, "{}: runs exceed queries", r.name);
            assert!(
                r.rr_frozen <= r.rr_queries - r.rr_runs,
                "{}: frozen hits must be a subset of hits",
                r.name
            );
        }
        // Scenario 3's jobs outlast the quick horizon, so completions are
        // only guaranteed suite-wide.
        assert!(
            report.scenarios.iter().map(|r| r.jobs_completed).sum::<u64>() > 0,
            "no jobs anywhere"
        );
        // The fetch loop re-queries the snapshot at every decision point,
        // so some hits must occur.
        assert!(report.scenarios.iter().any(|r| r.cache_hit_rate > 0.0), "no cache hits anywhere");
        let ib = &report.instrumentation;
        assert!(ib.trace_events > 0, "traced run emitted nothing");
        assert!(ib.fingerprint_match, "tracing changed the result fingerprint");
        assert!(ib.untraced_wall_ms > 0.0 && ib.traced_wall_ms > 0.0);
        assert!(ib.profiled_wall_ms > 0.0);
        assert!(
            ib.spans.iter().any(|(name, _, _)| name == "emu.total"),
            "profile must cover the whole run: {:?}",
            ib.spans
        );
        let p = &report.population;
        assert_eq!(p.runs, 8);
        assert_eq!(p.threads, 2);
        assert_eq!(p.streaming_runs, 80);
        assert!(p.runs_per_sec > 0.0);
        assert!(p.streaming_runs_per_sec > 0.0);
        assert!(p.streaming_jobs_completed > 0);
        assert!(p.reference_wall_ms > 0.0 && p.wall_ms > 0.0);
    }

    fn fake_report() -> BenchReport {
        BenchReport {
            quick: true,
            host: HostInfo { available_parallelism: 8, threads_used: 4 },
            scenarios: vec![BenchRecord {
                name: "x".into(),
                days: 1.0,
                wall_ms: 12.5,
                events: 100,
                events_per_sec: 8000.0,
                rr_queries: 10,
                rr_runs: 4,
                rr_frozen: 3,
                cache_hit_rate: 0.6,
                flaps_coalesced: 5,
                avail_resched_skipped: 2,
                peak_jobs: 7,
                jobs_completed: 3,
            }],
            instrumentation: InstrumentationBench {
                days: 2.0,
                untraced_wall_ms: 100.0,
                traced_wall_ms: 101.0,
                tracing_overhead_frac: 0.01,
                profiled_wall_ms: 103.0,
                profiling_overhead_frac: 0.03,
                trace_events: 500,
                fingerprint_match: true,
                spans: vec![("emu.total".into(), 103.0, 1)],
            },
            population: PopulationBench {
                runs: 100,
                threads: 4,
                wall_ms: 50.0,
                runs_per_sec: 2000.0,
                sum_run_wall_ms: 180.0,
                executor_overhead_ms: 5.0,
                reference_wall_ms: 80.0,
                speedup_vs_reference: 1.6,
                streaming_runs: 1000,
                streaming_wall_ms: 400.0,
                streaming_runs_per_sec: 2500.0,
                streaming_jobs_completed: 1234,
                peak_rss_mb: None,
            },
        }
    }

    #[test]
    fn json_is_well_formed() {
        let j = to_json(&fake_report());
        assert!(j.contains("\"quick\": true"));
        assert!(j.contains("\"wall_ms\": 12.500"));
        assert!(j.contains("\"cache_hit_rate\": 0.600"));
        assert!(j.contains("\"rr_sim_frozen\": 3"));
        assert!(j.contains("\"flaps_coalesced\": 5"));
        assert!(j.contains("\"avail_resched_skipped\": 2"));
        assert!(j.contains("\"available_parallelism\": 8"));
        assert!(j.contains("\"threads_used\": 4"));
        assert!(j.contains("\"runs_per_sec\": 2000.000"));
        assert!(j.contains("\"streaming_runs_per_sec\": 2500.000"));
        assert!(j.contains("\"speedup_vs_reference\": 1.600"));
        assert!(j.contains("\"peak_rss_mb\": null"));
        assert!(j.contains("\"tracing_overhead_frac\": 0.010"));
        assert!(j.contains("\"profiling_overhead_frac\": 0.030"));
        assert!(j.contains("\"fingerprint_match\": true"));
        assert!(j.contains("{\"name\": \"emu.total\", \"wall_ms\": 103.000, \"count\": 1}"));
        // Balanced braces/brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn summary_mentions_population_executor() {
        let s = summary(&fake_report());
        assert!(s.contains("population executor (4 threads of 8 available)"));
        assert!(s.contains("1.60x vs pre-executor baseline"));
        assert!(s.contains("+1.0% overhead"), "{s}");
        assert!(s.contains("profiled 103.0 ms (+3.0%)"), "{s}");
        assert!(s.contains("fingerprints match"), "{s}");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(jnum(f64::NAN), "null");
        assert_eq!(jnum(f64::INFINITY), "null");
        assert_eq!(jnum(2.0), "2.000");
        assert_eq!(jopt(None), "null");
        assert_eq!(jopt(Some(1.0)), "1.000");
    }
}

//! Minimal command-line argument handling for the `bce` tool: positional
//! arguments plus `--flag` and `--key value` options, with typed accessors
//! and unknown-option detection. Hand-rolled to keep the workspace
//! dependency-free.

use std::collections::BTreeMap;

/// Parsed command line.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pub positional: Vec<String>,
    options: BTreeMap<String, Vec<String>>,
    flags: Vec<String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// An argument-level error with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments. `value_opts` lists options that take a value;
    /// everything else starting with `--` is a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        value_opts: &[&str],
    ) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if value_opts.contains(&name) {
                    let v =
                        it.next().ok_or_else(|| ArgError(format!("--{name} requires a value")))?;
                    args.options.entry(name.to_string()).or_default().push(v);
                } else {
                    args.flags.push(name.to_string());
                }
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    pub fn flag(&self, name: &str) -> bool {
        self.consumed.borrow_mut().push(name.to_string());
        self.flags.iter().any(|f| f == name)
    }

    pub fn opt(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(name.to_string());
        self.options.get(name).and_then(|v| v.last()).map(|s| s.as_str())
    }

    pub fn opt_all(&self, name: &str) -> Vec<&str> {
        self.consumed.borrow_mut().push(name.to_string());
        self.options.get(name).map_or_else(Vec::new, |v| v.iter().map(|s| s.as_str()).collect())
    }

    pub fn opt_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.opt(name) {
            None => Ok(None),
            Some(v) => {
                v.parse().map(Some).map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}")))
            }
        }
    }

    pub fn opt_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        Ok(self.opt_parse(name)?.unwrap_or(default))
    }

    /// Error out on options/flags no accessor asked about (catches typos).
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let seen = self.consumed.borrow();
        for f in &self.flags {
            if !seen.contains(f) {
                return Err(ArgError(format!("unknown flag --{f}")));
            }
        }
        for k in self.options.keys() {
            if !seen.contains(k) {
                return Err(ArgError(format!("unknown option --{k}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from), &["days", "sched", "out"]).unwrap()
    }

    #[test]
    fn positional_and_options() {
        let a = parse("run file.xml --days 5 --timeline");
        assert_eq!(a.positional, vec!["run", "file.xml"]);
        assert_eq!(a.opt("days"), Some("5"));
        assert!(a.flag("timeline"));
        assert!(!a.flag("log"));
        assert_eq!(a.opt_or("days", 1.0).unwrap(), 5.0);
    }

    #[test]
    fn missing_value_is_error() {
        let e = Args::parse(["--days".to_string()], &["days"]).unwrap_err();
        assert!(e.to_string().contains("requires a value"));
    }

    #[test]
    fn bad_parse_is_error() {
        let a = parse("--days abc");
        assert!(a.opt_parse::<f64>("days").is_err());
    }

    #[test]
    fn unknown_rejected() {
        let a = parse("run --days 5 --bogus");
        let _ = a.opt("days");
        assert!(a.reject_unknown().is_err());
        let b = parse("run --days 5 --timeline");
        let _ = b.opt("days");
        assert!(b.flag("timeline"));
        assert!(b.reject_unknown().is_ok());
    }

    #[test]
    fn repeated_options_collect() {
        let a =
            Args::parse(["--sched", "a", "--sched", "b"].iter().map(|s| s.to_string()), &["sched"])
                .unwrap();
        assert_eq!(a.opt_all("sched"), vec!["a", "b"]);
        assert_eq!(a.opt("sched"), Some("b")); // last wins for single access
    }
}

//! # bce-cli — the `bce` command-line tool
//!
//! The operational face of the emulator, mirroring the paper's workflows:
//! run a scenario or a pasted `client_state.xml` (the web form, §4.3),
//! compare policies (the controller script), export scenario templates,
//! and run Monte-Carlo population studies.
//!
//! The command implementations live here (library) so they are testable;
//! `src/bin/bce.rs` is a thin wrapper.

pub mod args;
pub mod commands;
pub mod perf_report;

pub use args::{ArgError, Args};
pub use commands::{dispatch, CliError, HELP};
pub use perf_report::{run_bench, BenchRecord};

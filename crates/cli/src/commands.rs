//! `bce` subcommand implementations. Each returns its output as a string
//! so tests can assert on it; the binary prints it.

use crate::args::{ArgError, Args};
use bce_client::{ClientConfig, DeadlineOrder, FetchPolicy, JobSchedPolicy};
use bce_controller::{
    compare_policies, fnv64, population_campaign, population_header, population_study,
    population_table, run_manifest, standard_policies, standard_population, CampaignError,
    CampaignManifest, CampaignOptions, Metric, Table,
};
use bce_core::{render_timeline, CheckpointError, Emulator, EmulatorConfig, FaultConfig, Scenario};
use bce_fleet::{assign_shares, host_scenarios, run_fleet, Fleet, FleetHost, ShareStrategy};
use bce_obs::TraceEvent;
use bce_scenarios::{
    doc_from_scenario, scenario1, scenario2, scenario3, scenario4, LoadedScenario, ScenarioSource,
    ScenarioSpec, BUILTIN_NAMES,
};
use bce_sim::Level;
use bce_types::{AppClass, Hardware, ProcType, ProjectSpec, SimDuration};

pub const HELP: &str = "\
bce — BOINC client emulator (reproduction of Anderson, 'Emulating
Volunteer Computing Scheduling Policies', 2011)

USAGE:
  Every command that emulates takes one scenario reference, positionally
  or as --scenario REF, resolved the same way everywhere: a builtin name
  (scenario1..scenario4, optionally prefixed builtin:), a JSON scenario
  spec (*.json, see docs/SCENARIO_FORMAT.md), or a client_state.xml
  dump. Spec files may carry a fault overlay, which the command applies.

  bce run <scenario-ref> [options]
      --days N        emulated days (default 10)
      --sched P       wrr | local | global | local-llf | global-dd
      --fetch P       orig | hysteresis
      --half-life S   REC half-life in seconds (global accounting)
      --deadline-check P   strict | grace:SECS | none (server-side, §4.3)
      --timeline      print the per-instance usage timeline
      --log           print the scheduling message log
      --seed N        override the scenario seed

  bce compare <scenario-ref> [--days N] [--threads N]
      run every scheduling x fetch policy combination and tabulate

  bce scenario list | validate <ref> | print <ref>
      list        builtin scenarios plus *.json files under scenarios/
      validate    load a scenario ref and report every validation error
      print       emit the canonical JSON spec (usable as a golden file)

  bce campaign <manifest.json> [--threads N] [--out DIR]
      run a declarative campaign manifest (scenario refs x policies x
      seeds) through the resumable campaign runner; --out writes
      summary.json, table.txt and campaign.ckpt into DIR

  bce population [--hosts N] [--days N] [--seed N] [--threads N]
      Monte-Carlo policy study over a sampled host population
      (--threads 0, the default, uses one worker per CPU)
      --scenario REF         study this one scenario instead of the
                             sampled population (conflicts with --hosts)
      --checkpoint FILE      run crash-safe: write a resumable campaign
                             checkpoint (atomically) to FILE
      --checkpoint-every N   also write it every N completed runs
      --resume FILE          resume a killed campaign from FILE
                             (implies --checkpoint FILE)
      --max-runs N           stop after N runs, checkpoint, and exit
                             (budgeted execution; finish with --resume)

  bce export <scenario-ref> [--out FILE]
      write the scenario as a client_state.xml template

  bce validate <scenario-ref>
      load and validate a scenario, reporting precise errors

  bce fleet [--days N] [--threads N] [--scenario REF]
      cross-host share-enforcement study on a demo heterogeneous fleet;
      --scenario replaces the demo projects and seed with the
      referenced scenario's

  bce faults <scenario-ref> [options]
      sweep transient failure rate x {JS, JF} policy and tabulate the
      graceful degradation of the figures of merit
      --days N        emulated days (default 2)
      --rates LIST    comma-separated failure rates (default 0,0.05,0.1,0.2)
      --mtbf S        also inject host crashes with this mean time between
                      failures, in seconds
      --seed N        override the scenario seed

  bce bench [--quick] [--out FILE] [--threads N] [--population N]
      run the standard benchmark scenario set plus a population-executor
      throughput section, and report wall time, event throughput,
      RR-simulation cache statistics, runs/sec, executor overhead and
      tracing overhead as JSON (--out writes the JSON and prints a
      summary table instead; --population overrides the
      population-study run count; --scenario REF benchmarks that
      scenario alongside the standard set)

  bce fig <1-6> [--days N] [--quick] [--json FILE] [--checkpoint-every D]
      regenerate one of the paper's figures (same output as the
      standalone fig1..fig6 binaries); --checkpoint-every D checkpoints
      each run every D simulated days under target/checkpoints and
      resumes automatically after a crash; --scenario REF replaces the
      figure's base scenario (figures 3-6)

  bce serve [options]
      run the hardened emulation daemon (HTTP/1.1 on a bounded worker
      pool; overload is shed with 503 + Retry-After; SIGTERM drains
      gracefully, parking campaigns as resumable checkpoints)
      --addr A:P          listen address (default 127.0.0.1:7070; port 0
                          picks a free port)
      --workers N         worker threads (default 4; 0 = one per CPU)
      --queue-depth N     admission queue capacity (default 64)
      --max-body-kib N    request body cap in KiB (default 1024)
      --deadline-secs N   per-campaign wall budget (default 120)
      --max-days D        emulated-days cap per request (default 60)
      --checkpoint-dir D  campaign checkpoint directory
      --chunk N           runs per campaign chunk (default 8)
      --scenario REF      default scenario for /run requests that give
                          neither ?scenario= nor a body

  bce chaos [options]
      prove checkpoint durability: run the standard population campaign
      under a seeded disk-fault schedule (short writes, EIO, ENOSPC,
      torn renames, power-cut truncation) with deterministic corruption
      of the newest checkpoint generation between segments, then assert
      the recovered final table is bit-identical to a fault-free
      uninterrupted reference run (exit 1 on mismatch, 3 on I/O failure)
      --hosts N           population size (default 6)
      --days N            emulated days (default 1)
      --seed N            population seed (default 1)
      --threads N         worker threads (0 = one per CPU)
      --chaos-seed N      disk-fault schedule seed (default 42)
      --segments N        kill/resume segments (default 4)
      --keep-generations N  checkpoint generations to keep (default 3)
      --torn-rename P     torn-rename probability   (default 0.25)
      --enospc P          ENOSPC probability        (default 0.25)
      --eio P             write-EIO probability     (default 0)
      --power-cut P       power-cut truncation prob (default 0)
      --read-eio P        read-EIO probability      (default 0)
      --corrupt P         per-segment probability of corrupting the
                          newest generation on disk (default 0.5)
      --dir D             scratch directory (default target/chaos)

  bce trace <scenario-ref> [options]
      run with tracing enabled and pretty-print the typed decision log
      --days N        emulated days (default 1)
      --sched P / --fetch P / --half-life S / --seed N   as for `run`
      --kind LIST     only these event kinds (comma-separated)
      --component LIST   only these components (sched,task,fetch,avail,xfer,fault)
      --since S       only events at sim time >= S seconds
      --until S       only events at sim time <= S seconds
      --limit N       print at most the first N matching events
      --capacity N    trace buffer capacity (default 1000000)
      --jsonl FILE    also write the matching events as JSON Lines

  bce help
";

/// A command error carrying the message to print on stderr and the
/// process exit code, so scripts and CI distinguish failure classes
/// without grepping stderr:
///
/// * `1` — generic failure (bad usage, mismatch, assertion failure)
/// * `2` — validation failure (the input is wrong)
/// * `3` — I/O failure (the input may be fine; the filesystem is not)
#[derive(Debug)]
pub struct CliError {
    pub message: String,
    pub exit_code: i32,
}

impl CliError {
    /// Generic failure (exit code 1).
    pub fn msg(message: String) -> Self {
        CliError { message, exit_code: 1 }
    }

    /// Validation failure (exit code 2): the input itself is wrong.
    pub fn validation(message: String) -> Self {
        CliError { message, exit_code: 2 }
    }

    /// I/O failure (exit code 3): the filesystem failed, not the input.
    pub fn io(message: String) -> Self {
        CliError { message, exit_code: 3 }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::msg(e.to_string())
    }
}

const VALUE_OPTS: &[&str] = &[
    "days",
    "sched",
    "fetch",
    "half-life",
    "deadline-check",
    "seed",
    "hosts",
    "out",
    "width",
    "rates",
    "mtbf",
    "threads",
    "population",
    "json",
    "kind",
    "component",
    "since",
    "until",
    "limit",
    "capacity",
    "jsonl",
    "checkpoint",
    "checkpoint-every",
    "resume",
    "max-runs",
    "addr",
    "workers",
    "queue-depth",
    "max-body-kib",
    "deadline-secs",
    "max-days",
    "checkpoint-dir",
    "chunk",
    "scenario",
    "chaos-seed",
    "segments",
    "keep-generations",
    "torn-rename",
    "enospc",
    "eio",
    "power-cut",
    "read-eio",
    "corrupt",
    "dir",
];

/// Parse and run a full command line (without the program name). Returns
/// the text to print.
pub fn dispatch<I: IntoIterator<Item = String>>(raw: I) -> Result<String, CliError> {
    let args = Args::parse(raw, VALUE_OPTS)?;
    let cmd = args.positional.first().map(String::as_str).unwrap_or("help");
    let out = match cmd {
        "run" => cmd_run(&args)?,
        "compare" => cmd_compare(&args)?,
        "scenario" => cmd_scenario(&args)?,
        "campaign" => cmd_campaign(&args)?,
        "population" => cmd_population(&args)?,
        "export" => cmd_export(&args)?,
        "validate" => cmd_validate(&args)?,
        "fleet" => cmd_fleet(&args)?,
        "faults" => cmd_faults(&args)?,
        "bench" => cmd_bench(&args)?,
        "fig" => cmd_fig(&args)?,
        "trace" => cmd_trace(&args)?,
        "serve" => cmd_serve(&args)?,
        "chaos" => cmd_chaos(&args)?,
        "help" | "--help" => {
            return Ok(HELP.to_string());
        }
        other => return Err(CliError::msg(format!("unknown command {other:?}\n\n{HELP}"))),
    };
    args.reject_unknown()?;
    Ok(out)
}

/// The one scenario-reference grammar shared by every command: a builtin
/// name (`scenario1..scenario4`, optionally `builtin:`-prefixed), a JSON
/// scenario-spec path, or a `client_state.xml` path. `raw` resolves
/// through [`ScenarioSource`], so every command shares one error path.
fn load_source(raw: &str) -> Result<LoadedScenario, CliError> {
    ScenarioSource::parse(raw).load().map_err(|e| match e {
        // Classify for the exit code: a filesystem failure is not the
        // scenario's fault (exit 3); everything else is the input being
        // wrong (exit 2).
        bce_scenarios::SourceError::Io { .. } => CliError::io(e.to_string()),
        _ => CliError::validation(e.to_string()),
    })
}

/// Resolve a command's scenario from `--scenario REF` or the positional
/// reference (exactly one of the two), then apply `--seed`.
fn resolve_scenario(args: &Args) -> Result<LoadedScenario, CliError> {
    let raw = match (args.positional.get(1).map(String::as_str), args.opt("scenario")) {
        (Some(p), Some(f)) => {
            return Err(CliError::msg(format!(
                "scenario given twice: positional {p:?} and --scenario {f:?}"
            )));
        }
        (Some(p), None) => p,
        (None, Some(f)) => f,
        (None, None) => {
            return Err(CliError::msg(
                "expected a scenario reference: a builtin name (scenario1..scenario4), \
                 a JSON scenario spec, or a client_state.xml path"
                    .into(),
            ));
        }
    };
    let mut loaded = load_source(raw)?;
    if let Some(seed) = args.opt_parse::<u64>("seed")? {
        loaded.scenario.seed = seed;
    }
    Ok(loaded)
}

/// Like [`resolve_scenario`], but for commands whose positionals mean
/// something else (`fig <n>`): only `--scenario REF` is consulted.
fn resolve_scenario_flag_only(args: &Args) -> Result<LoadedScenario, CliError> {
    let raw =
        args.opt("scenario").ok_or_else(|| CliError::msg("expected --scenario REF".into()))?;
    let mut loaded = load_source(raw)?;
    if let Some(seed) = args.opt_parse::<u64>("seed")? {
        loaded.scenario.seed = seed;
    }
    Ok(loaded)
}

/// For commands that run their own fault schedule (or none at all): a
/// spec-carried fault overlay would be silently ignored, so refuse it.
fn reject_fault_overlay(loaded: &LoadedScenario, why: &str) -> Result<(), CliError> {
    if loaded.faults.is_some() {
        return Err(CliError::msg(format!(
            "{} carries a fault overlay, but {why}; drop the \"faults\" section",
            loaded.origin
        )));
    }
    Ok(())
}

/// Gate a batch of scenarios on the typed validator before any emulation
/// starts: the full `ScenarioErrors` list (every problem at once, not
/// just the first) comes back as the command error.
fn validate_all<'a>(scenarios: impl IntoIterator<Item = &'a Scenario>) -> Result<(), CliError> {
    for s in scenarios {
        s.validate().map_err(|e| CliError::msg(format!("invalid scenario {:?}: {e}", s.name)))?;
    }
    Ok(())
}

fn parse_sched(name: &str) -> Result<JobSchedPolicy, CliError> {
    Ok(match name {
        "wrr" => JobSchedPolicy::WRR,
        "local" => JobSchedPolicy::LOCAL,
        "global" => JobSchedPolicy::GLOBAL,
        "local-llf" => {
            JobSchedPolicy { deadline_order: DeadlineOrder::Llf, ..JobSchedPolicy::LOCAL }
        }
        "global-dd" => {
            JobSchedPolicy { deadline_order: DeadlineOrder::Density, ..JobSchedPolicy::GLOBAL }
        }
        other => return Err(CliError::msg(format!("unknown scheduling policy {other:?}"))),
    })
}

fn parse_fetch(name: &str) -> Result<FetchPolicy, CliError> {
    Ok(match name {
        "orig" => FetchPolicy::Orig,
        "hysteresis" | "hyst" => FetchPolicy::Hysteresis,
        other => return Err(CliError::msg(format!("unknown fetch policy {other:?}"))),
    })
}

fn client_config(args: &Args) -> Result<ClientConfig, CliError> {
    let mut cfg = ClientConfig::default();
    if let Some(s) = args.opt("sched") {
        cfg.sched_policy = parse_sched(s)?;
    }
    if let Some(f) = args.opt("fetch") {
        cfg.fetch_policy = parse_fetch(f)?;
    }
    if let Some(hl) = args.opt_parse::<f64>("half-life")? {
        if hl <= 0.0 {
            return Err(CliError::msg("--half-life must be positive".into()));
        }
        cfg.rec_half_life = SimDuration::from_secs(hl);
    }
    Ok(cfg)
}

fn parse_deadline_check(v: &str) -> Result<bce_server::DeadlineCheckPolicy, CliError> {
    use bce_server::DeadlineCheckPolicy as DC;
    if v == "strict" {
        return Ok(DC::Strict);
    }
    if v == "none" {
        return Ok(DC::None);
    }
    if let Some(secs) = v.strip_prefix("grace:") {
        let g: f64 = secs
            .parse()
            .map_err(|_| CliError::msg(format!("--deadline-check grace:SECS, got {v:?}")))?;
        if g < 0.0 {
            return Err(CliError::msg("--deadline-check grace must be non-negative".into()));
        }
        return Ok(DC::Grace(SimDuration::from_secs(g)));
    }
    Err(CliError::msg(format!("unknown deadline-check policy {v:?}")))
}

fn cmd_run(args: &Args) -> Result<String, CliError> {
    let LoadedScenario { scenario, faults, .. } = resolve_scenario(args)?;
    let client = client_config(args)?;
    let days: f64 = args.opt_or("days", 10.0)?;
    let want_timeline = args.flag("timeline");
    let want_log = args.flag("log");
    let mut emu = EmulatorConfig {
        duration: SimDuration::from_days(days),
        record_timeline: want_timeline,
        log_capacity: if want_log { 200_000 } else { 0 },
        log_level: Level::Info,
        faults: faults.unwrap_or(FaultConfig::OFF),
        ..Default::default()
    };
    if let Some(dc) = args.opt("deadline-check") {
        emu.server.deadline_check = parse_deadline_check(dc)?;
    }
    let result = Emulator::new(scenario, client, emu).run();
    let mut out = format!("{result}");
    if want_timeline {
        if let Some(tl) = &result.timeline {
            let width: usize = args.opt_or("width", 96usize)?;
            out.push('\n');
            out.push_str(&render_timeline(tl, width));
        }
    }
    if want_log {
        out.push_str("\nscheduling log:\n");
        out.push_str(&result.log.render());
    }
    Ok(out)
}

fn all_policies() -> Vec<(String, ClientConfig)> {
    let mut v = Vec::new();
    for sched in [JobSchedPolicy::WRR, JobSchedPolicy::LOCAL, JobSchedPolicy::GLOBAL] {
        for fetch in [FetchPolicy::Orig, FetchPolicy::Hysteresis] {
            v.push((
                format!("{}+{}", sched.name(), fetch.name()),
                ClientConfig { sched_policy: sched, fetch_policy: fetch, ..Default::default() },
            ));
        }
    }
    v
}

fn cmd_compare(args: &Args) -> Result<String, CliError> {
    let LoadedScenario { scenario, faults, .. } = resolve_scenario(args)?;
    let days: f64 = args.opt_or("days", 10.0)?;
    let threads: usize = args.opt_or("threads", 0usize)?;
    let emu = EmulatorConfig {
        duration: SimDuration::from_days(days),
        faults: faults.unwrap_or(FaultConfig::OFF),
        ..Default::default()
    };
    let cmp = compare_policies(&scenario, &all_policies(), &emu, threads);
    let mut out = format!("policy comparison on {} ({days} days):\n\n", cmp.scenario_name);
    out.push_str(&cmp.table().render());
    out.push('\n');
    out.push_str(&cmp.bars(Metric::ShareViolation, 40));
    out.push_str(&cmp.bars(Metric::RpcsPerJob, 40));
    Ok(out)
}

/// `bce scenario list | validate <ref> | print <ref>` — the scenario
/// toolbox around the declarative JSON format.
fn cmd_scenario(args: &Args) -> Result<String, CliError> {
    let action = args.positional.get(1).map(String::as_str).unwrap_or("list");
    match action {
        "list" => {
            let mut out = String::from("builtin scenarios:\n");
            for name in BUILTIN_NAMES {
                out.push_str(&format!("  builtin:{name}\n"));
            }
            let dir = std::path::Path::new("scenarios");
            let mut files: Vec<String> = match std::fs::read_dir(dir) {
                Ok(entries) => entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "json"))
                    .map(|p| p.display().to_string())
                    .collect(),
                Err(_) => Vec::new(),
            };
            files.sort();
            if !files.is_empty() {
                out.push_str("\nscenario files:\n");
                for f in &files {
                    out.push_str(&format!("  {f}\n"));
                }
            }
            Ok(out)
        }
        "validate" => {
            let raw = args.positional.get(2).ok_or_else(|| {
                CliError::msg("scenario validate: expected a scenario reference".into())
            })?;
            let loaded = load_source(raw)?;
            let s = &loaded.scenario;
            Ok(format!(
                "{}: OK — {} projects, {} initial jobs, host {:.1} GFLOPS, seed {}{}\n",
                loaded.origin,
                s.projects.len(),
                s.initial_queue.len(),
                s.hardware.total_peak_flops() / 1e9,
                s.seed,
                if loaded.faults.is_some() { ", fault overlay" } else { "" },
            ))
        }
        "print" => {
            let raw = args.positional.get(2).ok_or_else(|| {
                CliError::msg("scenario print: expected a scenario reference".into())
            })?;
            let loaded = load_source(raw)?;
            let mut spec = ScenarioSpec::new(loaded.scenario);
            if let Some(f) = loaded.faults {
                spec = spec.with_faults(f);
            }
            Ok(spec.to_canonical_json())
        }
        other => Err(CliError::msg(format!(
            "unknown scenario action {other:?} (expected list, validate or print)"
        ))),
    }
}

/// `bce campaign <manifest.json>` — run a declarative campaign manifest
/// through the resumable campaign runner.
fn cmd_campaign(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::msg("expected a campaign manifest path".into()))?;
    let threads: usize = args.opt_or("threads", 0usize)?;
    let out_dir = args.opt("out").map(std::path::PathBuf::from);
    let manifest = CampaignManifest::read_from(std::path::Path::new(path))
        .map_err(|e| CliError::msg(e.to_string()))?;
    let opts = CampaignOptions::default();
    let outcome = run_manifest(&manifest, threads, &opts, out_dir.as_deref())
        .map_err(|e| CliError::msg(e.to_string()))?;
    let mut out = format!(
        "campaign {:?}: {} days, {} policies, {}/{} runs\n",
        manifest.name,
        manifest.days,
        manifest.policies.len(),
        outcome.report.completed_runs,
        outcome.report.total_runs,
    );
    for e in &outcome.report.errors {
        out.push_str(&format!("# quarantined: {e}\n"));
    }
    out.push('\n');
    out.push_str(&outcome.table);
    out.push_str(&format!("\ntable fingerprint: {:016x}\n", outcome.table_fingerprint));
    if let Some(dir) = &out_dir {
        out.push_str(&format!("wrote {}\n", dir.join("summary.json").display()));
    }
    Ok(out)
}

fn cmd_population(args: &Args) -> Result<String, CliError> {
    let days: f64 = args.opt_or("days", 2.0)?;
    let threads: usize = args.opt_or("threads", 0usize)?;
    let resume_path = args.opt("resume").map(std::path::PathBuf::from);
    let checkpoint_path =
        args.opt("checkpoint").map(std::path::PathBuf::from).or_else(|| resume_path.clone());
    let checkpoint_every: usize = args.opt_or("checkpoint-every", 0usize)?;
    let max_runs: Option<usize> = args.opt_parse("max-runs")?;
    let mut faults = FaultConfig::OFF;
    let (scenarios, mut out) = if args.opt("scenario").is_some() {
        // Single-scenario study through the unified resolver.
        if args.opt("hosts").is_some() {
            return Err(CliError::msg(
                "--scenario and --hosts conflict: a referenced scenario \
                                 replaces the sampled population"
                    .into(),
            ));
        }
        let loaded = resolve_scenario(args)?;
        faults = loaded.faults.unwrap_or(FaultConfig::OFF);
        let header = format!(
            "population study: scenario {} x {days} days (seed {})\n\n",
            loaded.scenario.name, loaded.scenario.seed
        );
        (vec![std::sync::Arc::new(loaded.scenario)], header)
    } else {
        let hosts: usize = args.opt_or("hosts", 16usize)?;
        let seed: u64 = args.opt_or("seed", 1u64)?;
        // The daemon's /campaign endpoint shares these exact
        // constructors, so a drained-and-resumed service campaign diffs
        // cleanly against this command's uninterrupted output.
        let scenarios = standard_population(hosts, seed);
        validate_all(scenarios.iter().map(|s| s.as_ref()))?;
        (scenarios, population_header(hosts, days, seed))
    };
    let emu =
        EmulatorConfig { duration: SimDuration::from_days(days), faults, ..Default::default() };
    let policies = standard_policies();

    if checkpoint_path.is_none() && max_runs.is_none() {
        let outcomes = population_study(&scenarios, &policies, &emu, threads);
        out.push_str(&population_table(&outcomes).render());
        return Ok(out);
    }

    // Crash-safe path: the resumable campaign runner. All status lines
    // start with "# " so scripts comparing tables can strip them.
    let opts = CampaignOptions {
        checkpoint_path: checkpoint_path.clone(),
        checkpoint_every_runs: checkpoint_every,
        resume: resume_path.is_some(),
        stop_after_runs: max_runs,
        ..Default::default()
    };
    let report = population_campaign(&scenarios, &policies, &emu, threads, &opts)
        .map_err(campaign_cli_error)?;
    if let Some(rec) = report.recovery.as_ref().filter(|r| r.recovered() || r.legacy) {
        out.push_str(&format!("# checkpoint recovery: {}\n", rec.describe()));
    }
    if report.resumed_runs > 0 {
        out.push_str(&format!(
            "# resumed: {}/{} runs restored from checkpoint\n",
            report.resumed_runs, report.total_runs
        ));
    }
    for e in &report.errors {
        out.push_str(&format!("# quarantined: {e}\n"));
    }
    if report.completed_runs < report.total_runs {
        out.push_str(&format!(
            "# stopped after {}/{} runs (--max-runs); finish with --resume\n",
            report.completed_runs, report.total_runs
        ));
    }
    out.push_str(&population_table(&report.outcomes).render());
    if let Some(p) = &checkpoint_path {
        out.push_str(&format!("# checkpoint: {}\n", p.display()));
    }
    Ok(out)
}

/// Classify a campaign failure for the exit code: filesystem and
/// corruption failures are I/O (exit 3); mismatches and malformed
/// documents are generic (exit 1) — the disk is fine, the request isn't.
fn campaign_cli_error(e: CampaignError) -> CliError {
    match &e {
        CampaignError::Checkpoint(CheckpointError::Io { .. } | CheckpointError::Corrupt { .. }) => {
            CliError::io(e.to_string())
        }
        _ => CliError::msg(e.to_string()),
    }
}

/// `bce chaos` — prove the checkpoint store recovers under a seeded
/// disk-fault schedule.
///
/// The harness runs the same standard population campaign twice:
/// once fault-free and uninterrupted (the reference), then again in
/// segments over a fault-injecting I/O backend, with deterministic
/// corruption of the newest checkpoint generation between segments. If
/// rotation + CRC fallback work, the recovered campaign's final table
/// is bit-identical to the reference — asserted by FNV fingerprint.
fn cmd_chaos(args: &Args) -> Result<String, CliError> {
    let hosts: usize = args.opt_or("hosts", 6usize)?;
    let days: f64 = args.opt_or("days", 1.0)?;
    let seed: u64 = args.opt_or("seed", 1u64)?;
    let threads: usize = args.opt_or("threads", 0usize)?;
    let chaos_seed: u64 = args.opt_or("chaos-seed", 42u64)?;
    let segments: usize = args.opt_or("segments", 4usize)?.max(1);
    let keep: usize = args.opt_or("keep-generations", 3usize)?;
    let fault_cfg = bce_faults::DiskFaultConfig {
        write_eio_prob: args.opt_or("eio", 0.0)?,
        write_enospc_prob: args.opt_or("enospc", 0.25)?,
        power_cut_prob: args.opt_or("power-cut", 0.0)?,
        torn_rename_prob: args.opt_or("torn-rename", 0.25)?,
        read_eio_prob: args.opt_or("read-eio", 0.0)?,
    };
    let corrupt_prob: f64 = args.opt_or("corrupt", 0.5)?;
    for (name, p) in [
        ("--eio", fault_cfg.write_eio_prob),
        ("--enospc", fault_cfg.write_enospc_prob),
        ("--power-cut", fault_cfg.power_cut_prob),
        ("--torn-rename", fault_cfg.torn_rename_prob),
        ("--read-eio", fault_cfg.read_eio_prob),
        ("--corrupt", corrupt_prob),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(CliError::validation(format!("{name} must be in [0, 1], got {p}")));
        }
    }
    let scratch = std::path::PathBuf::from(args.opt("dir").unwrap_or("target/chaos").to_string())
        .join(format!("run-{chaos_seed}"));

    let scenarios = standard_population(hosts, seed);
    validate_all(scenarios.iter().map(|s| s.as_ref()))?;
    let policies = standard_policies();
    let emu = EmulatorConfig { duration: SimDuration::from_days(days), ..Default::default() };

    let mut out = format!(
        "# chaos: {hosts} hosts x {} policies x {days} days (seed {seed}), \
         chaos seed {chaos_seed}, {segments} segments\n\
         # faults: eio {} enospc {} power-cut {} torn-rename {} read-eio {} corrupt {}\n",
        policies.len(),
        fault_cfg.write_eio_prob,
        fault_cfg.write_enospc_prob,
        fault_cfg.power_cut_prob,
        fault_cfg.torn_rename_prob,
        fault_cfg.read_eio_prob,
        corrupt_prob,
    );

    // Fault-free, uninterrupted reference.
    let reference = population_study(&scenarios, &policies, &emu, threads);
    let ref_table = population_table(&reference).render();
    let ref_fp = fnv64(ref_table.as_bytes());
    out.push_str(&format!("# reference fingerprint: {ref_fp:016x}\n"));

    // Fresh scratch store under the fault-injecting backend.
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch)
        .map_err(|e| CliError::io(format!("cannot create {}: {e}", scratch.display())))?;
    let base = scratch.join("campaign.ckpt");
    let faulty = std::sync::Arc::new(bce_statefile::FaultyIo::new(
        bce_statefile::RealIo,
        bce_faults::DiskFaultPlan::new(chaos_seed, fault_cfg),
    ));
    let io: bce_statefile::SharedIo = faulty.clone();
    // Un-faulted probe for the harness's own bookkeeping (resume
    // detection, between-segment corruption) — harness I/O must not
    // consume fault-schedule draws.
    let probe = bce_statefile::CheckpointStore::with_real_io(&base, keep);
    let mut corrupt_rng = bce_sim::Rng::stream(chaos_seed, "chaos-corrupt");

    let total = scenarios.len() * policies.len();
    let per_segment = total.div_ceil(segments).max(1);
    let max_attempts = segments * 10 + 20;
    let mut attempts = 0usize;
    let mut recoveries = 0u64;
    let mut write_failures = 0u64;
    let mut pruned = 0u64;

    let report = loop {
        attempts += 1;
        if attempts > max_attempts {
            return Err(CliError::io(format!(
                "chaos campaign did not complete within {max_attempts} attempts — \
                 the fault schedule starves every checkpoint write; lower the rates"
            )));
        }
        let opts = CampaignOptions {
            checkpoint_path: Some(base.clone()),
            checkpoint_every_runs: 1,
            resume: probe.any_checkpoint_present(),
            stop_after_runs: Some(per_segment),
            keep_generations: keep,
            io: Some(io.clone()),
        };
        match population_campaign(&scenarios, &policies, &emu, threads, &opts) {
            Ok(r) => {
                write_failures += r.checkpoint_write_failures;
                pruned += r.generations_pruned;
                if let Some(rec) = r.recovery.as_ref().filter(|x| x.recovered()) {
                    recoveries += 1;
                    out.push_str(&format!("# recovery: {}\n", rec.describe()));
                }
                if r.completed_runs >= r.total_runs {
                    break r;
                }
                // Between segments: bit rot strikes the newest
                // generation, seeded and replayable.
                if corrupt_prob > 0.0 && corrupt_rng.chance(corrupt_prob) {
                    corrupt_newest_generation(&probe, &mut corrupt_rng, &mut out)?;
                }
            }
            Err(CampaignError::Checkpoint(e)) => {
                // A failed checkpoint write or read: note it and retry
                // the segment from the last good generation. If every
                // generation is corrupt the store refuses to guess —
                // the harness restarts the campaign *explicitly*.
                out.push_str(&format!("# checkpoint failure (segment retried): {e}\n"));
                if bce_controller::CampaignCheckpoint::read_from(&base).is_err()
                    && probe.any_checkpoint_present()
                {
                    out.push_str(
                        "# every generation corrupt: clearing store, restarting campaign\n",
                    );
                    for gen in probe.generations_on_disk().unwrap_or_default() {
                        let _ = std::fs::remove_file(probe.generation_path(gen));
                    }
                    let _ = std::fs::remove_file(&base);
                }
            }
            Err(e) => return Err(CliError::msg(format!("chaos campaign failed: {e}"))),
        }
    };

    let table = population_table(&report.outcomes).render();
    let fp = fnv64(table.as_bytes());
    let stats = faulty.stats();
    out.push_str(&format!(
        "# injected: {stats}\n\
         # recoveries: {recoveries}, checkpoint write failures: {write_failures}, \
         generations pruned: {pruned}, attempts: {attempts}\n"
    ));
    out.push_str(&table);
    if fp == ref_fp {
        out.push_str(&format!(
            "# chaos: PASS — recovered fingerprint {fp:016x} matches fault-free reference\n"
        ));
        Ok(out)
    } else {
        Err(CliError::msg(format!(
            "chaos: FAIL — recovered table fingerprint {fp:016x} != fault-free \
             reference {ref_fp:016x}\n{out}"
        )))
    }
}

/// Damage the newest on-disk generation in a seeded, replayable way:
/// truncate it, flip one bit, or zero-fill a range. Only strikes when a
/// fallback generation exists — all-corrupt liveness is exercised by the
/// store's own tests, not the end-to-end fingerprint harness.
fn corrupt_newest_generation(
    probe: &bce_statefile::CheckpointStore,
    rng: &mut bce_sim::Rng,
    out: &mut String,
) -> Result<(), CliError> {
    let gens = probe
        .generations_on_disk()
        .map_err(|e| CliError::io(format!("cannot list checkpoint generations: {e}")))?;
    let Some(&newest) = gens.last() else { return Ok(()) };
    if gens.len() < 2 {
        return Ok(());
    }
    let path = probe.generation_path(newest);
    let mut bytes = std::fs::read(&path)
        .map_err(|e| CliError::io(format!("cannot read {}: {e}", path.display())))?;
    if bytes.is_empty() {
        return Ok(());
    }
    let what = match rng.below(3) {
        0 => {
            let cut = rng.below(bytes.len());
            bytes.truncate(cut);
            format!("truncated gen {newest} to {cut} bytes")
        }
        1 => {
            let i = rng.below(bytes.len());
            let bit = rng.below(8) as u8;
            bytes[i] ^= 1 << bit;
            format!("flipped bit {bit} of byte {i} in gen {newest}")
        }
        _ => {
            let from = rng.below(bytes.len());
            let to = (from + 1 + rng.below(bytes.len() - from)).min(bytes.len());
            bytes[from..to].fill(0);
            format!("zero-filled bytes {from}..{to} of gen {newest}")
        }
    };
    std::fs::write(&path, &bytes)
        .map_err(|e| CliError::io(format!("cannot corrupt {}: {e}", path.display())))?;
    out.push_str(&format!("# corruption: {what}\n"));
    Ok(())
}

fn cmd_export(args: &Args) -> Result<String, CliError> {
    let loaded = resolve_scenario(args)?;
    reject_fault_overlay(&loaded, "client_state.xml cannot express faults")?;
    let xml = doc_from_scenario(&loaded.scenario).render();
    match args.opt("out") {
        Some(path) => {
            std::fs::write(path, &xml)
                .map_err(|e| CliError::msg(format!("cannot write {path}: {e}")))?;
            Ok(format!("wrote {path} ({} bytes)\n", xml.len()))
        }
        None => Ok(xml),
    }
}

fn cmd_validate(args: &Args) -> Result<String, CliError> {
    let raw = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::msg("expected a scenario reference".into()))?;
    let loaded = load_source(raw)?;
    let scenario = &loaded.scenario;
    Ok(format!(
        "{}: OK — {} projects, {} initial jobs, host {:.1} GFLOPS\n",
        loaded.origin,
        scenario.projects.len(),
        scenario.initial_queue.len(),
        scenario.hardware.total_peak_flops() / 1e9
    ))
}

fn demo_fleet() -> Fleet {
    Fleet {
        hosts: vec![
            FleetHost::new("cpu-box", Hardware::cpu_only(8, 2e9)),
            FleetHost::new(
                "gpu-box",
                Hardware::cpu_only(2, 1e9).with_group(ProcType::NvidiaGpu, 1, 2e10),
            ),
            FleetHost::new("laptop", Hardware::cpu_only(2, 1.5e9)),
        ],
        projects: vec![
            ProjectSpec::new(0, "mixed", 100.0)
                .with_app(AppClass::gpu(
                    0,
                    ProcType::NvidiaGpu,
                    SimDuration::from_secs(1000.0),
                    SimDuration::from_hours(24.0),
                ))
                .with_app(AppClass::cpu(
                    1,
                    SimDuration::from_secs(2000.0),
                    SimDuration::from_hours(24.0),
                )),
            ProjectSpec::new(1, "cpu_only", 100.0).with_app(AppClass::cpu(
                2,
                SimDuration::from_secs(1000.0),
                SimDuration::from_hours(24.0),
            )),
        ],
        seed: 11,
    }
}

fn cmd_fleet(args: &Args) -> Result<String, CliError> {
    let days: f64 = args.opt_or("days", 1.0)?;
    let threads: usize = args.opt_or("threads", 0usize)?;
    let mut fleet = demo_fleet();
    if args.opt("scenario").is_some() {
        // The referenced scenario supplies the project mix and seed; the
        // demo hosts stay (the study is about cross-host shares).
        let loaded = resolve_scenario(args)?;
        reject_fault_overlay(&loaded, "the fleet study does not inject faults")?;
        fleet.projects = loaded.scenario.projects.clone();
        fleet.seed = loaded.scenario.seed;
    }
    let emu = EmulatorConfig { duration: SimDuration::from_days(days), ..Default::default() };
    let mut out = format!(
        "cross-host share enforcement (§6.2): {} hosts, {} projects, {days} days/host\n\n",
        fleet.hosts.len(),
        fleet.projects.len()
    );
    for strategy in [ShareStrategy::PerHost, ShareStrategy::CrossHost] {
        let assignment = assign_shares(&fleet, strategy);
        validate_all(host_scenarios(&fleet, &assignment).iter())?;
        let r = run_fleet(&fleet, strategy, ClientConfig::default(), &emu, threads);
        out.push_str(&format!(
            "{}: fleet share violation {:.4}, total {:.2} TFLOP-days\n",
            strategy.name(),
            r.fleet_share_violation,
            r.total_flops / 1e12 / 86_400.0
        ));
        for (host, shares) in fleet.hosts.iter().zip(&assignment) {
            let total: f64 = shares.iter().map(|(_, s)| s).sum();
            let detail: Vec<String> = shares
                .iter()
                .map(|(p, s)| {
                    let name = &fleet.projects.iter().find(|q| q.id == *p).unwrap().name;
                    format!("{name} {:.0}%", 100.0 * s / total.max(1e-9))
                })
                .collect();
            out.push_str(&format!("  {:<8} {}\n", host.name, detail.join(", ")));
        }
        out.push('\n');
    }
    Ok(out)
}

/// The {JS} x {JF} grid swept by `bce faults`: LOCAL/GLOBAL scheduling
/// crossed with ORIG/HYSTERESIS fetch (WRR is skipped — it shares the
/// LOCAL fetch path and only pads the table).
fn fault_policies() -> Vec<(String, ClientConfig)> {
    let mut v = Vec::new();
    for sched in [JobSchedPolicy::LOCAL, JobSchedPolicy::GLOBAL] {
        for fetch in [FetchPolicy::Orig, FetchPolicy::Hysteresis] {
            v.push((
                format!("{}+{}", sched.name(), fetch.name()),
                ClientConfig { sched_policy: sched, fetch_policy: fetch, ..Default::default() },
            ));
        }
    }
    v
}

fn parse_rates(args: &Args) -> Result<Vec<f64>, CliError> {
    let rates: Vec<f64> = match args.opt("rates") {
        Some(list) => list
            .split(',')
            .map(|r| {
                r.trim()
                    .parse::<f64>()
                    .map_err(|_| CliError::msg(format!("--rates: not a number: {r:?}")))
            })
            .collect::<Result<_, _>>()?,
        None => vec![0.0, 0.05, 0.1, 0.2],
    };
    if rates.is_empty() {
        return Err(CliError::msg("--rates: expected at least one rate".into()));
    }
    for &r in &rates {
        if !(0.0..=1.0).contains(&r) {
            return Err(CliError::msg(format!("--rates: rate {r} outside [0, 1]")));
        }
    }
    Ok(rates)
}

fn cmd_faults(args: &Args) -> Result<String, CliError> {
    let loaded = resolve_scenario(args)?;
    reject_fault_overlay(&loaded, "the faults command sweeps its own fault rates")?;
    let scenario = loaded.scenario;
    let days: f64 = args.opt_or("days", 2.0)?;
    let rates = parse_rates(args)?;
    let mtbf = match args.opt_parse::<f64>("mtbf")? {
        Some(m) if m <= 0.0 => return Err(CliError::msg("--mtbf must be positive".into())),
        m => m.map(SimDuration::from_secs),
    };
    let duration = SimDuration::from_days(days);

    let mut table = Table::new(&[
        "policy",
        "rate",
        "jobs",
        "errored",
        "RPCs/job",
        "RPC fail",
        "xfer fail",
        "crashes",
        "fault-waste",
        "wasted",
    ]);
    let mut identity: Option<bool> = None;
    for (name, cfg) in fault_policies() {
        for &rate in &rates {
            let mut faults = FaultConfig::with_failure_rate(rate);
            faults.crash_mtbf = mtbf;
            let emu = EmulatorConfig { duration, faults, ..Default::default() };
            let r = Emulator::new(scenario.clone(), cfg, emu).run();
            if rate == 0.0 && mtbf.is_none() {
                // Zero-fault identity: a rate-0 sweep point must be
                // bit-identical to a run that never mentions faults at all.
                let plain = EmulatorConfig { duration, ..Default::default() };
                let base = Emulator::new(scenario.clone(), cfg, plain).run();
                let same = base.merit.rpcs_per_job.to_bits() == r.merit.rpcs_per_job.to_bits()
                    && base.total_flops_used.to_bits() == r.total_flops_used.to_bits()
                    && base.jobs_completed == r.jobs_completed;
                identity = Some(identity.unwrap_or(true) && same);
            }
            let fm = &r.faults;
            table.row(&[
                name.clone(),
                format!("{rate:.2}"),
                r.jobs_completed.to_string(),
                fm.jobs_errored.to_string(),
                format!("{:.3}", r.merit.rpcs_per_job),
                fm.transient_rpc_failures.to_string(),
                fm.transfer_failures.to_string(),
                fm.crashes.to_string(),
                format!("{:.4}", fm.fault_wasted_fraction),
                format!("{:.4}", r.merit.wasted_fraction),
            ]);
        }
    }

    let mut out = format!(
        "graceful degradation under injected faults: {} ({days} days{})\n\n",
        scenario.name,
        match mtbf {
            Some(m) => format!(", crash MTBF {m}"),
            None => String::new(),
        }
    );
    out.push_str(&table.render());
    match identity {
        Some(true) => out.push_str(
            "\nzero-fault identity: OK (rate 0 reproduces the no-fault baseline bit-for-bit)\n",
        ),
        Some(false) => out
            .push_str("\nzero-fault identity: MISMATCH — fault plumbing perturbs the baseline!\n"),
        None => {}
    }
    Ok(out)
}

fn cmd_bench(args: &Args) -> Result<String, CliError> {
    let quick = args.flag("quick");
    let threads: usize = args.opt_or("threads", 0usize)?;
    let population: Option<usize> = match args.opt("population") {
        Some(p) => Some(
            p.parse().map_err(|_| CliError::msg(format!("--population: not a count: {p:?}")))?,
        ),
        None => None,
    };
    // `--scenario REF` benchmarks that scenario alongside the standard
    // set, through the same resolver as every other command.
    let extra = match args.opt("scenario") {
        Some(_) => {
            let loaded = resolve_scenario(args)?;
            reject_fault_overlay(&loaded, "the benchmark measures fault-free throughput")?;
            Some((loaded.origin, loaded.scenario))
        }
        None => None,
    };
    // The bench scenario set is built-in, but it goes through the same
    // validation gate as user submissions before any emulation starts.
    validate_all(&[
        scenario1(SimDuration::from_secs(1500.0)),
        scenario2(),
        scenario3(),
        scenario4(),
    ])?;
    let report = crate::perf_report::run_bench(quick, threads, population, extra);
    let json = crate::perf_report::to_json(&report);
    match args.opt("out") {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| CliError::msg(format!("cannot write {path}: {e}")))?;
            Ok(format!(
                "benchmark suite ({} mode):\n\n{}\nwrote {path}\n",
                if quick { "quick" } else { "full" },
                crate::perf_report::summary(&report)
            ))
        }
        None => Ok(json),
    }
}

fn cmd_fig(args: &Args) -> Result<String, CliError> {
    let n: u32 = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::msg("expected a figure number (1-6)".into()))?
        .parse()
        .map_err(|_| CliError::msg("expected a figure number (1-6)".into()))?;
    let quick = args.flag("quick");
    let mut days: f64 = args.opt_or("days", bce_bench::figs::default_days(n))?;
    if quick {
        // Same cap FigOpts::parse applies in the standalone binaries.
        days = days.min(1.0);
    }
    let json = args.opt("json").map(std::path::PathBuf::from);
    let checkpoint_every: Option<f64> = args.opt_parse("checkpoint-every")?;
    if let Some(d) = checkpoint_every {
        if !d.is_finite() || d <= 0.0 {
            return Err(CliError::msg(format!("--checkpoint-every must be positive, got {d}")));
        }
    }
    // `--scenario REF` replaces the figure's base scenario (figures 3-6).
    let scenario = match args.opt("scenario") {
        Some(_) => {
            let loaded = resolve_scenario_flag_only(args)?;
            reject_fault_overlay(&loaded, "figures run fault-free")?;
            Some(loaded.scenario)
        }
        None => None,
    };
    let opts = bce_bench::FigOpts { days, quick, json, checkpoint_every, scenario };
    // Figures run on the paper's built-in scenarios; validate them with
    // the same typed gate as user submissions before any emulation.
    validate_all(&[
        scenario1(SimDuration::from_secs(1500.0)),
        scenario2(),
        scenario3(),
        scenario4(),
    ])?;
    bce_bench::figs::run_fig(n, &opts).map_err(CliError::msg)
}

fn cmd_serve(args: &Args) -> Result<String, CliError> {
    use std::io::Write as _;

    let mut cfg = bce_serve::ServeConfig::default();
    if let Some(addr) = args.opt("addr") {
        cfg.addr = addr.to_string();
    }
    cfg.workers = args.opt_or("workers", cfg.workers)?;
    cfg.queue_depth = args.opt_or("queue-depth", cfg.queue_depth)?;
    if cfg.queue_depth == 0 {
        return Err(CliError::msg("--queue-depth must be positive".into()));
    }
    if let Some(kib) = args.opt_parse::<usize>("max-body-kib")? {
        cfg.max_body_bytes = kib.saturating_mul(1024).max(1);
    }
    if let Some(secs) = args.opt_parse::<u64>("deadline-secs")? {
        cfg.request_deadline = std::time::Duration::from_secs(secs.max(1));
    }
    cfg.max_days = args.opt_or("max-days", cfg.max_days)?;
    if !cfg.max_days.is_finite() || cfg.max_days <= 0.0 {
        return Err(CliError::msg("--max-days must be positive".into()));
    }
    if let Some(dir) = args.opt("checkpoint-dir") {
        cfg.checkpoint_dir = std::path::PathBuf::from(dir);
    }
    cfg.campaign_chunk_runs = args.opt_or("chunk", cfg.campaign_chunk_runs)?.max(1);
    if let Some(src) = args.opt("scenario") {
        // Resolve once at startup so a bad default fails here, loudly,
        // not on the first defaulted request.
        load_source(src)?;
        cfg.default_scenario = Some(src.to_string());
    }

    let server = bce_serve::Server::bind(cfg)
        .map_err(|e| CliError::msg(format!("cannot bind the listener: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::msg(format!("cannot resolve the bound address: {e}")))?;
    // `run` blocks until drained; announce readiness first so wrappers
    // (and the CI smoke job) can poll for this line.
    println!("bce-serve listening on http://{addr} (SIGTERM or SIGINT drains)");
    let _ = std::io::stdout().flush();
    let summary = server.run();
    Ok(format!("{summary}\n"))
}

/// Parse a comma-separated `--kind`/`--component` filter, validating each
/// entry against the schema's closed vocabulary so typos fail loudly.
fn parse_name_filter(
    args: &Args,
    opt: &str,
    allowed: &[&str],
) -> Result<Option<Vec<String>>, CliError> {
    let Some(list) = args.opt(opt) else { return Ok(None) };
    let names: Vec<String> = list.split(',').map(|s| s.trim().to_string()).collect();
    for n in &names {
        if !allowed.contains(&n.as_str()) {
            return Err(CliError::msg(format!(
                "--{opt}: unknown value {n:?} (expected one of: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(Some(names))
}

fn cmd_trace(args: &Args) -> Result<String, CliError> {
    use bce_obs::export::{record_to_json, to_jsonl};

    let LoadedScenario { scenario, faults, .. } = resolve_scenario(args)?;
    let client = client_config(args)?;
    let days: f64 = args.opt_or("days", 1.0)?;
    let capacity: usize = args.opt_or("capacity", 1_000_000usize)?;
    if capacity == 0 {
        return Err(CliError::msg("--capacity must be positive".into()));
    }
    let kinds = parse_name_filter(args, "kind", TraceEvent::KINDS)?;
    let components = parse_name_filter(args, "component", TraceEvent::COMPONENTS)?;
    let since: Option<f64> = args.opt_parse("since")?;
    let until: Option<f64> = args.opt_parse("until")?;
    let limit: Option<usize> = args.opt_parse("limit")?;

    let emu = EmulatorConfig {
        duration: SimDuration::from_days(days),
        trace_capacity: capacity,
        faults: faults.unwrap_or(FaultConfig::OFF),
        ..Default::default()
    };
    let result = Emulator::new(scenario.clone(), client, emu).run();

    let matches = |r: &&bce_obs::TraceRecord| {
        kinds.as_ref().is_none_or(|ks| ks.iter().any(|k| k == r.event.kind()))
            && components.as_ref().is_none_or(|cs| cs.iter().any(|c| c == r.event.component()))
            && since.is_none_or(|s| r.t.secs() >= s)
            && until.is_none_or(|u| r.t.secs() <= u)
    };
    let selected: Vec<&bce_obs::TraceRecord> =
        result.trace.records().iter().filter(matches).take(limit.unwrap_or(usize::MAX)).collect();

    if let Some(path) = args.opt("jsonl") {
        let jsonl = to_jsonl(selected.iter().copied());
        std::fs::write(path, &jsonl)
            .map_err(|e| CliError::msg(format!("cannot write {path}: {e}")))?;
    }

    let mut out =
        format!("trace of {} ({days} days): {} events recorded", scenario.name, result.trace.len());
    if result.trace.dropped() > 0 {
        out.push_str(&format!(" (+{} dropped at capacity)", result.trace.dropped()));
    }
    out.push_str(&format!(", {} matching\n\n", selected.len()));
    for r in &selected {
        out.push_str(&format!(
            "[{:>7} t={:>10.0}s {:>5}] {:>15}  {}\n",
            r.seq,
            r.t.secs(),
            r.event.component(),
            r.event.kind(),
            r.event.describe()
        ));
    }
    if let Some(path) = args.opt("jsonl") {
        out.push_str(&format!("\nwrote {} events to {path}\n", selected.len()));
        // Round-trip sanity: what we wrote must parse back to the same
        // records. Cheap relative to the emulation, and it keeps the
        // exporter honest in the face of schema drift.
        let parsed =
            bce_obs::export::parse_jsonl(&to_jsonl(selected.iter().copied())).map_err(|e| {
                CliError::msg(format!("internal: exported trace does not re-parse: {e}"))
            })?;
        debug_assert_eq!(parsed.len(), selected.len());
        if parsed.len() != selected.len()
            || !parsed.iter().zip(&selected).all(|(a, &b)| record_to_json(a) == record_to_json(b))
        {
            return Err(CliError::msg("internal: exported trace does not round-trip".into()));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cmd: &str) -> Result<String, CliError> {
        dispatch(cmd.split_whitespace().map(String::from))
    }

    #[test]
    fn help_and_unknown() {
        assert!(run("help").unwrap().contains("USAGE"));
        assert!(run("").unwrap().contains("USAGE"));
        assert!(run("frobnicate").is_err());
    }

    #[test]
    fn run_paper_scenario() {
        let out = run("run scenario1 --days 0.2 --sched local --fetch hysteresis").unwrap();
        assert!(out.contains("figures of merit"), "{out}");
        assert!(out.contains("tight"), "{out}");
    }

    #[test]
    fn run_with_timeline_and_log() {
        let out = run("run scenario2 --days 0.05 --timeline --log").unwrap();
        assert!(out.contains("timeline:"), "{out}");
        assert!(out.contains("scheduling log:"), "{out}");
    }

    #[test]
    fn bad_policy_is_error() {
        assert!(run("run scenario1 --sched bogus").is_err());
        assert!(run("run scenario1 --fetch bogus").is_err());
        assert!(run("run scenario1 --half-life -5").is_err());
    }

    #[test]
    fn unknown_option_is_error() {
        let e = run("run scenario1 --days 0.1 --wibble").unwrap_err();
        assert!(e.to_string().contains("wibble"));
    }

    #[test]
    fn compare_runs() {
        let out = run("compare scenario1 --days 0.1").unwrap();
        assert!(out.contains("JS-WRR+JF-ORIG"), "{out}");
        assert!(out.contains("JS-GLOBAL+JF-HYSTERESIS"), "{out}");
    }

    #[test]
    fn export_validate_run_cycle() {
        let dir = std::env::temp_dir().join("bce-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s2.xml");
        let p = path.to_str().unwrap();
        let out = run(&format!("export scenario2 --out {p}")).unwrap();
        assert!(out.contains("wrote"), "{out}");
        let out = run(&format!("validate {p}")).unwrap();
        assert!(out.contains("OK"), "{out}");
        let out = run(&format!("run {p} --days 0.1")).unwrap();
        assert!(out.contains("figures of merit"), "{out}");
    }

    #[test]
    fn validate_rejects_garbage() {
        let dir = std::env::temp_dir().join("bce-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.xml");
        std::fs::write(&path, "<client_state><project/></client_state>").unwrap();
        assert!(run(&format!("validate {}", path.to_str().unwrap())).is_err());
    }

    #[test]
    fn deadline_check_option() {
        assert!(run("run scenario1 --days 0.1 --deadline-check none").is_ok());
        assert!(run("run scenario1 --days 0.1 --deadline-check grace:3600").is_ok());
        assert!(run("run scenario1 --days 0.1 --deadline-check bogus").is_err());
        assert!(run("run scenario1 --days 0.1 --deadline-check grace:-5").is_err());
    }

    #[test]
    fn fleet_demo() {
        let out = run("fleet --days 0.05").unwrap();
        assert!(out.contains("per-host"), "{out}");
        assert!(out.contains("cross-host"), "{out}");
        assert!(out.contains("gpu-box"), "{out}");
    }

    #[test]
    fn population_small() {
        let out = run("population --hosts 2 --days 0.05").unwrap();
        assert!(out.contains("GLOBAL+HYST"), "{out}");
        assert!(out.contains("monotony"), "{out}");
    }

    #[test]
    fn faults_degradation_table_renders() {
        let out = run("faults scenario1 --days 0.1 --rates 0,0.3").unwrap();
        assert!(out.contains("graceful degradation"), "{out}");
        assert!(out.contains("fault-waste"), "{out}");
        assert!(out.contains("JS-LOCAL+JF-ORIG"), "{out}");
        assert!(out.contains("JS-GLOBAL+JF-HYSTERESIS"), "{out}");
        assert!(out.contains("0.30"), "{out}");
        assert!(
            out.contains("zero-fault identity: OK"),
            "rate-0 run must match the no-fault baseline: {out}"
        );
    }

    #[test]
    fn faults_with_crashes() {
        let out = run("faults scenario1 --days 0.1 --rates 0.1 --mtbf 3600").unwrap();
        assert!(out.contains("crash MTBF"), "{out}");
        // No rate-0 point when crashes are on, so no identity line.
        assert!(!out.contains("zero-fault identity"), "{out}");
    }

    #[test]
    fn faults_rejects_bad_options() {
        assert!(run("faults scenario1 --rates 1.5").is_err());
        assert!(run("faults scenario1 --rates abc").is_err());
        assert!(run("faults scenario1 --rates ").is_err());
        assert!(run("faults scenario1 --mtbf -10").is_err());
        assert!(run("faults").is_err());
    }

    #[test]
    fn bench_quick_emits_json() {
        // Tiny population so the test stays fast; --threads 2 pins the
        // recorded worker count.
        let out = run("bench --quick --threads 2 --population 4").unwrap();
        assert!(out.contains("\"bench\": \"bce\""), "{out}");
        assert!(out.contains("scenario3_fig6_60d"), "{out}");
        assert!(out.contains("\"cache_hit_rate\""), "{out}");
        assert!(out.contains("\"available_parallelism\""), "{out}");
        assert!(out.contains("\"threads_used\": 2"), "{out}");
        assert!(out.contains("\"runs\": 4"), "{out}");
        assert!(out.contains("\"streaming_runs\": 40"), "{out}");
        assert!(out.contains("\"runs_per_sec\""), "{out}");
        assert!(out.contains("\"speedup_vs_reference\""), "{out}");
        let dir = std::env::temp_dir().join("bce-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bench.json");
        let out =
            run(&format!("bench --quick --threads 2 --population 4 --out {}", p.to_str().unwrap()))
                .unwrap();
        assert!(out.contains("wrote"), "{out}");
        assert!(out.contains("population executor"), "{out}");
        let json = std::fs::read_to_string(&p).unwrap();
        assert!(json.contains("events_per_sec"));
        assert!(json.contains("streaming_runs_per_sec"));
    }

    #[test]
    fn bench_rejects_bad_population() {
        assert!(run("bench --quick --population nope").is_err());
    }

    #[test]
    fn fig_runs_through_shared_runner() {
        let out = run("fig 2").unwrap();
        assert!(out.contains("Figure 2 — round-robin simulation"), "{out}");
        assert!(out.contains("SHORTFALL(T)"), "{out}");
        assert!(run("fig 9").is_err());
        assert!(run("fig").is_err());
        assert!(run("fig two").is_err());
    }

    #[test]
    fn trace_prettyprints_decisions() {
        let out = run("trace scenario1 --days 0.1").unwrap();
        assert!(out.contains("events recorded"), "{out}");
        assert!(out.contains("rpc_reply"), "{out}");
        assert!(out.contains("scheduled"), "{out}");
    }

    #[test]
    fn trace_filters_narrow_output() {
        let all = run("trace scenario1 --days 0.1").unwrap();
        let fetch_only = run("trace scenario1 --days 0.1 --component fetch").unwrap();
        assert!(fetch_only.len() < all.len());
        assert!(!fetch_only.contains(" scheduled "), "{fetch_only}");
        let limited = run("trace scenario1 --days 0.1 --limit 3").unwrap();
        assert!(limited.contains("3 matching"), "{limited}");
        let windowed = run("trace scenario1 --days 0.1 --since 100 --until 200").unwrap();
        assert!(windowed.contains("matching"), "{windowed}");
    }

    #[test]
    fn trace_rejects_bad_filters() {
        assert!(run("trace scenario1 --days 0.1 --kind bogus").is_err());
        assert!(run("trace scenario1 --days 0.1 --component bogus").is_err());
        assert!(run("trace scenario1 --days 0.1 --capacity 0").is_err());
        assert!(run("trace").is_err());
    }

    #[test]
    fn trace_jsonl_round_trips() {
        let dir = std::env::temp_dir().join("bce-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("trace.jsonl");
        let out =
            run(&format!("trace scenario1 --days 0.1 --jsonl {}", p.to_str().unwrap())).unwrap();
        assert!(out.contains("wrote"), "{out}");
        let text = std::fs::read_to_string(&p).unwrap();
        let records = bce_obs::parse_jsonl(&text).unwrap();
        assert!(!records.is_empty());
        assert!(text.lines().all(|l| l.starts_with("{\"seq\":")));
    }

    #[test]
    fn population_threads_flag_is_deterministic() {
        let a = run("population --hosts 4 --days 0.2 --threads 1").unwrap();
        let b = run("population --hosts 4 --days 0.2 --threads 8").unwrap();
        assert_eq!(a, b, "population table must not depend on thread count");
    }

    #[test]
    fn population_kill_and_resume_matches_straight_run() {
        let dir = std::env::temp_dir().join("bce-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join(format!("pop-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&ck);
        let ck_s = ck.to_str().unwrap();

        let reference = run("population --hosts 3 --days 0.2").unwrap();
        // "Kill" after 2 of the 6 runs (budgeted stop leaves exactly the
        // on-disk state a SIGKILL there would).
        let partial = run(&format!(
            "population --hosts 3 --days 0.2 --checkpoint {ck_s} --checkpoint-every 1 --max-runs 2"
        ))
        .unwrap();
        assert!(partial.contains("# stopped after 2/6 runs"), "{partial}");
        // Resume with a different thread count; status lines are "# "
        // prefixed so the table itself must match the straight run.
        let resumed =
            run(&format!("population --hosts 3 --days 0.2 --threads 2 --resume {ck_s}")).unwrap();
        assert!(resumed.contains("# resumed: 2/6"), "{resumed}");
        let table: String =
            resumed.lines().filter(|l| !l.starts_with("# ")).collect::<Vec<_>>().join("\n");
        assert_eq!(table.trim_end(), reference.trim_end());
        let _ = std::fs::remove_file(&ck);
    }

    #[test]
    fn population_resume_errors_are_loud() {
        // Missing file: error, not a silent fresh start.
        assert!(run("population --hosts 3 --days 0.2 --resume /nonexistent/x.ckpt").is_err());
        // Mismatched campaign (different hosts): rejected.
        let dir = std::env::temp_dir().join("bce-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join(format!("pop-mismatch-{}.ckpt", std::process::id()));
        let ck_s = ck.to_str().unwrap().to_string();
        run(&format!("population --hosts 3 --days 0.2 --checkpoint {ck_s}")).unwrap();
        let err = run(&format!("population --hosts 4 --days 0.2 --resume {ck_s}")).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
        let _ = std::fs::remove_file(&ck);
    }

    #[test]
    fn fig_checkpoint_every_is_validated() {
        assert!(run("fig 1 --checkpoint-every 0").is_err());
        assert!(run("fig 1 --checkpoint-every -2").is_err());
    }

    #[test]
    fn seed_override_changes_results() {
        let a = run("run scenario1 --days 0.3 --seed 1").unwrap();
        let b = run("run scenario1 --days 0.3 --seed 2").unwrap();
        let c = run("run scenario1 --days 0.3 --seed 1").unwrap();
        assert_eq!(a, c, "same seed same output");
        assert_ne!(a, b, "different seed different output");
    }
}

//! Integration tests for the unified scenario-loading surface: the
//! `scenario` and `campaign` subcommands, the one `--scenario` flag every
//! command shares, and the single error path behind them.

use bce_cli::dispatch;

fn run(args: &[&str]) -> Result<String, String> {
    dispatch(args.iter().map(|s| s.to_string())).map_err(|e| e.to_string())
}

fn repo_file(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn scenario_list_names_builtins_and_files() {
    let out = run(&["scenario", "list"]).unwrap();
    for name in ["builtin:scenario1", "builtin:scenario4"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn scenario_print_is_canonical_and_revalidates() {
    let printed = run(&["scenario", "print", "builtin:scenario2"]).unwrap();
    let spec = bce_scenarios::ScenarioSpec::parse(&printed).expect("print output parses");
    assert_eq!(spec.to_canonical_json(), printed, "print output must be canonical");
    spec.build().expect("print output validates");
}

#[test]
fn scenario_validate_accepts_goldens_and_reports_overlay() {
    let ok = run(&["scenario", "validate", &repo_file("scenarios/scenario3.json")]).unwrap();
    assert!(ok.contains("OK"), "{ok}");
    let faulty =
        run(&["scenario", "validate", &repo_file("scenarios/unreliable_hosts.json")]).unwrap();
    assert!(faulty.contains("fault overlay"), "{faulty}");
}

#[test]
fn scenario_unknown_action_is_an_error() {
    let err = run(&["scenario", "frobnicate"]).unwrap_err();
    assert!(err.contains("frobnicate"), "{err}");
}

#[test]
fn run_from_spec_file_matches_builtin_byte_for_byte() {
    let from_builtin = run(&["run", "builtin:scenario1", "--days", "0.2"]).unwrap();
    let from_file = run(&["run", &repo_file("scenarios/scenario1.json"), "--days", "0.2"]).unwrap();
    assert_eq!(from_builtin, from_file);
}

#[test]
fn one_error_path_for_every_bad_reference() {
    // No reference at all.
    let err = run(&["run"]).unwrap_err();
    assert!(err.contains("expected a scenario reference"), "{err}");
    // Unknown builtin.
    let err = run(&["run", "builtin:scenario9"]).unwrap_err();
    assert!(err.contains("scenario9"), "{err}");
    // Positional and flag at once.
    let err = run(&["run", "scenario1", "--scenario", "scenario2"]).unwrap_err();
    assert!(err.contains("scenario given twice"), "{err}");
    // Missing file.
    let err = run(&["compare", "no/such/file.json"]).unwrap_err();
    assert!(err.contains("no/such/file.json"), "{err}");
}

#[test]
fn fault_overlay_is_rejected_where_it_cannot_apply() {
    let path = repo_file("scenarios/unreliable_hosts.json");
    let err = run(&["fig", "3", "--quick", "--scenario", &path]).unwrap_err();
    assert!(err.contains("fault overlay"), "{err}");
    let err = run(&["export", &path]).unwrap_err();
    assert!(err.contains("fault overlay"), "{err}");
}

#[test]
fn computed_figures_reject_scenario_overrides() {
    let err = run(&["fig", "1", "--quick", "--scenario", "builtin:scenario2"]).unwrap_err();
    assert!(err.contains("figures 3-6"), "{err}");
}

#[test]
fn population_scenario_flag_conflicts_with_hosts() {
    let err = run(&["population", "--scenario", "scenario1", "--hosts", "4"]).unwrap_err();
    assert!(err.contains("conflict"), "{err}");
}

#[test]
fn campaign_runs_a_manifest_and_writes_summary() {
    let dir = std::env::temp_dir().join("bce-cli-campaign-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("tiny.json");
    std::fs::write(
        &manifest,
        r#"{
  "format": "bce-campaign",
  "version": 1,
  "name": "tiny",
  "days": 0.05,
  "scenarios": ["builtin:scenario2"],
  "policies": [{"label": "GLOBAL+HYST", "sched": "global", "fetch": "hysteresis"}],
  "seeds": [1, 2]
}"#,
    )
    .unwrap();
    let out_dir = dir.join("out");
    let out = run(&[
        "campaign",
        manifest.to_str().unwrap(),
        "--threads",
        "2",
        "--out",
        out_dir.to_str().unwrap(),
    ])
    .unwrap();
    assert!(out.contains("2/2 runs"), "{out}");
    assert!(out.contains("table fingerprint:"), "{out}");
    let summary = std::fs::read_to_string(out_dir.join("summary.json")).unwrap();
    assert!(summary.contains("\"bce-campaign-summary\""), "{summary}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_rejects_a_bad_manifest() {
    let dir = std::env::temp_dir().join("bce-cli-campaign-bad");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("bad.json");
    std::fs::write(
        &manifest,
        r#"{"format": "bce-campaign", "version": 1, "name": "bad", "days": 1, "scenarios": [], "policies": "standard", "typo": 1}"#,
    )
    .unwrap();
    let err = run(&["campaign", manifest.to_str().unwrap()]).unwrap_err();
    assert!(err.contains("typo") || err.contains("unknown"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

//! One scenario resolver for every entry point.
//!
//! Each `bce` command used to grow its own ad-hoc scenario flag; this
//! module is the single way a scenario reference becomes a validated
//! [`Scenario`]. A reference is either `builtin:<name>` (or a bare
//! builtin name) or a path to a file, and files are content-sniffed:
//! a JSON scenario spec (see [`bce_core::spec`]) or a `client_state.xml`
//! state file. All loads share one typed error path ([`SourceError`])
//! and end at the same [`Scenario::validate`] gate.

use crate::import::scenario_from_state_file;
use crate::paper::{scenario1, scenario2, scenario3, scenario4};
use bce_core::spec::{ScenarioSpec, SpecError};
use bce_core::{FaultConfig, Scenario};
use bce_statefile::StateFileError;
use bce_types::{ScenarioErrors, SimDuration};
use std::path::{Path, PathBuf};

/// Names accepted by [`ScenarioSource::parse`] without a `builtin:`
/// prefix, in catalogue order.
pub const BUILTIN_NAMES: &[&str] = &["scenario1", "scenario2", "scenario3", "scenario4"];

/// The paper scenario registered under `name`, with its default
/// parameters (scenario1 uses the 1500 s latency bound of the Figure 3
/// midpoint).
pub fn builtin(name: &str) -> Option<Scenario> {
    match name {
        "scenario1" => Some(scenario1(SimDuration::from_secs(1500.0))),
        "scenario2" => Some(scenario2()),
        "scenario3" => Some(scenario3()),
        "scenario4" => Some(scenario4()),
        _ => None,
    }
}

/// A parsed scenario reference: where a scenario comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSource {
    /// A named builtin (`builtin:scenario2`, or bare `scenario2`).
    Builtin(String),
    /// A file on disk: JSON scenario spec or XML state file.
    File(PathBuf),
}

/// A resolved scenario plus the spec-level extras that live outside
/// [`Scenario`] itself.
#[derive(Debug, Clone)]
pub struct LoadedScenario {
    pub scenario: Scenario,
    /// Fault overlay from a spec's `faults` section, to be merged into the
    /// run's `EmulatorConfig` by the caller.
    pub faults: Option<FaultConfig>,
    /// Human-readable origin, for error messages and headers.
    pub origin: String,
}

/// Error from [`ScenarioSource::load`].
#[derive(Debug)]
pub enum SourceError {
    UnknownBuiltin {
        name: String,
    },
    Io {
        path: PathBuf,
        message: String,
    },
    /// A JSON spec failed to parse or validate.
    Spec {
        path: PathBuf,
        error: SpecError,
    },
    /// An XML state file failed to parse.
    StateFile {
        path: PathBuf,
        error: StateFileError,
    },
    /// A loaded scenario failed [`Scenario::validate`].
    Validation {
        origin: String,
        errors: ScenarioErrors,
    },
    /// The file starts with neither `{` (spec) nor `<` (state file).
    Unrecognized {
        path: PathBuf,
    },
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::UnknownBuiltin { name } => {
                write!(f, "unknown builtin scenario {name:?} (have: {})", BUILTIN_NAMES.join(", "))
            }
            SourceError::Io { path, message } => {
                write!(f, "cannot read {}: {message}", path.display())
            }
            SourceError::Spec { path, error } => write!(f, "{}: {error}", path.display()),
            SourceError::StateFile { path, error } => write!(f, "{}: {error}", path.display()),
            SourceError::Validation { origin, errors } => {
                write!(f, "invalid scenario {origin:?}: {errors}")
            }
            SourceError::Unrecognized { path } => write!(
                f,
                "{}: neither a JSON scenario spec (starts with '{{') nor a client_state.xml \
                 (starts with '<')",
                path.display()
            ),
        }
    }
}
impl std::error::Error for SourceError {}

impl ScenarioSource {
    /// Classify a reference. `builtin:<name>` and bare builtin names
    /// resolve to [`ScenarioSource::Builtin`]; anything else is a path.
    pub fn parse(raw: &str) -> ScenarioSource {
        if let Some(name) = raw.strip_prefix("builtin:") {
            ScenarioSource::Builtin(name.to_string())
        } else if BUILTIN_NAMES.contains(&raw) {
            ScenarioSource::Builtin(raw.to_string())
        } else {
            ScenarioSource::File(PathBuf::from(raw))
        }
    }

    /// The origin string used in headers and error messages.
    pub fn describe(&self) -> String {
        match self {
            ScenarioSource::Builtin(name) => format!("builtin:{name}"),
            ScenarioSource::File(path) => path.display().to_string(),
        }
    }

    /// Resolve to a validated scenario.
    pub fn load(&self) -> Result<LoadedScenario, SourceError> {
        match self {
            ScenarioSource::Builtin(name) => {
                let scenario = builtin(name)
                    .ok_or_else(|| SourceError::UnknownBuiltin { name: name.clone() })?;
                Ok(LoadedScenario { scenario, faults: None, origin: self.describe() })
            }
            ScenarioSource::File(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| SourceError::Io { path: path.clone(), message: e.to_string() })?;
                load_scenario_text(&text, path)
            }
        }
    }
}

/// Sniff and load scenario text that came from `path` (which is only used
/// for naming and errors — the daemon reuses this for POST bodies).
pub fn load_scenario_text(text: &str, path: &Path) -> Result<LoadedScenario, SourceError> {
    let origin = path.display().to_string();
    match text.trim_start().chars().next() {
        Some('{') => {
            let spec = ScenarioSpec::parse(text)
                .map_err(|error| SourceError::Spec { path: path.to_path_buf(), error })?;
            let (scenario, faults) = spec
                .build()
                .map_err(|error| SourceError::Spec { path: path.to_path_buf(), error })?;
            Ok(LoadedScenario { scenario, faults, origin })
        }
        Some('<') => {
            let scenario = scenario_from_state_file(text, &origin)
                .map_err(|error| SourceError::StateFile { path: path.to_path_buf(), error })?;
            scenario
                .validate()
                .map_err(|errors| SourceError::Validation { origin: origin.clone(), errors })?;
            Ok(LoadedScenario { scenario, faults: None, origin })
        }
        _ => Err(SourceError::Unrecognized { path: path.to_path_buf() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, contents: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bce-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn builtin_names_resolve_with_and_without_prefix() {
        for name in BUILTIN_NAMES {
            let bare = ScenarioSource::parse(name).load().unwrap();
            let prefixed = ScenarioSource::parse(&format!("builtin:{name}")).load().unwrap();
            assert_eq!(bare.scenario.name, prefixed.scenario.name);
            assert!(bare.faults.is_none());
        }
        assert!(matches!(
            ScenarioSource::parse("builtin:nope").load().unwrap_err(),
            SourceError::UnknownBuiltin { .. }
        ));
    }

    #[test]
    fn json_spec_files_load_with_fault_overlay() {
        let spec = ScenarioSpec::from_scenario(&scenario3())
            .with_faults(FaultConfig::with_failure_rate(0.1));
        let path = tmp("s3.json", &spec.to_canonical_json());
        let loaded = ScenarioSource::parse(path.to_str().unwrap()).load().unwrap();
        assert_eq!(loaded.scenario.name, "scenario3");
        assert_eq!(loaded.faults, Some(FaultConfig::with_failure_rate(0.1)));
        assert_eq!(loaded.scenario.projects, scenario3().projects);
    }

    #[test]
    fn xml_state_files_still_load() {
        let xml = crate::doc_from_scenario(&scenario2()).render();
        let path = tmp("s2.xml", &xml);
        let loaded = ScenarioSource::parse(path.to_str().unwrap()).load().unwrap();
        assert_eq!(loaded.scenario.projects, scenario2().projects);
        assert!(loaded.faults.is_none());
    }

    #[test]
    fn error_paths_are_typed() {
        assert!(matches!(
            ScenarioSource::parse("/nonexistent/никогда.json").load().unwrap_err(),
            SourceError::Io { .. }
        ));
        let path = tmp("garbage.txt", "plain text");
        assert!(matches!(
            ScenarioSource::parse(path.to_str().unwrap()).load().unwrap_err(),
            SourceError::Unrecognized { .. }
        ));
        let path = tmp("bad.json", "{\"format\": \"bce-scenario\"");
        assert!(matches!(
            ScenarioSource::parse(path.to_str().unwrap()).load().unwrap_err(),
            SourceError::Spec { error: SpecError::Json(_), .. }
        ));
        let path = tmp("badxml.xml", "<client_state");
        assert!(matches!(
            ScenarioSource::parse(path.to_str().unwrap()).load().unwrap_err(),
            SourceError::StateFile { .. }
        ));
    }

    #[test]
    fn invalid_spec_scenarios_fail_validation_at_load() {
        let mut s = scenario3();
        s.projects.clear();
        let path = tmp("empty.json", &ScenarioSpec::from_scenario(&s).to_canonical_json());
        let err = ScenarioSource::parse(path.to_str().unwrap()).load().unwrap_err();
        assert!(
            matches!(&err, SourceError::Spec { error: SpecError::Validation(_), .. }),
            "{err:?}"
        );
    }
}

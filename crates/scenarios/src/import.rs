//! Turning an ingested client state file into a runnable scenario — the
//! paper's web-form workflow (§4.3): an alpha tester pastes their
//! `client_state.xml`, BCE rebuilds their scenario, and the developer
//! reproduces the reported anomaly deterministically.

use bce_avail::{AvailSpec, OnOffSpec};
use bce_core::{Scenario, ScenarioBuilder};
use bce_statefile::{ClientStateDoc, StateFileError};

/// Convert a parsed state document into a scenario. Availability hints
/// (`on_frac`, `active_frac`, `cycle_mean`) become exponential on/off
/// processes with the recorded duty cycles.
pub fn scenario_from_doc(doc: &ClientStateDoc, name: impl Into<String>) -> Scenario {
    let avail = AvailSpec {
        host: OnOffSpec::duty_cycle(doc.on_frac, doc.cycle_mean),
        user_active: OnOffSpec::duty_cycle(doc.active_frac, doc.cycle_mean / 4.0),
        network: OnOffSpec::AlwaysOn,
    };
    ScenarioBuilder::new(name, doc.hardware.clone())
        .seed(doc.seed)
        .prefs(doc.prefs.clone())
        .avail(avail)
        .projects(doc.projects.iter().cloned())
        .initial_jobs(doc.initial_queue.iter().copied())
        .build_unchecked()
}

/// Parse a state file and build the scenario in one step.
pub fn scenario_from_state_file(xml: &str, name: &str) -> Result<Scenario, StateFileError> {
    let doc = ClientStateDoc::parse_str(xml)?;
    Ok(scenario_from_doc(&doc, name))
}

/// Export a scenario back to the state-file format (lossy: stochastic
/// availability is reduced to its duty cycle; traces and network models
/// are not represented).
pub fn doc_from_scenario(s: &Scenario) -> ClientStateDoc {
    let (on_frac, cycle_mean) = match s.avail.host {
        OnOffSpec::AlwaysOn => (1.0, bce_types::SimDuration::from_days(1.0)),
        OnOffSpec::AlwaysOff => (0.0, bce_types::SimDuration::from_days(1.0)),
        OnOffSpec::Exponential { up_mean, down_mean, .. } => {
            (up_mean.secs() / (up_mean.secs() + down_mean.secs()), up_mean + down_mean)
        }
    };
    let active_frac = match s.avail.user_active {
        OnOffSpec::AlwaysOn => 1.0,
        OnOffSpec::AlwaysOff => 0.0,
        OnOffSpec::Exponential { up_mean, down_mean, .. } => {
            up_mean.secs() / (up_mean.secs() + down_mean.secs())
        }
    };
    ClientStateDoc {
        hardware: s.hardware.clone(),
        prefs: s.prefs.clone(),
        projects: s.projects.clone(),
        initial_queue: s.initial_queue.clone(),
        on_frac,
        active_frac,
        cycle_mean,
        seed: s.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::scenario2;

    #[test]
    fn scenario_roundtrips_through_state_file() {
        let s = scenario2();
        let doc = doc_from_scenario(&s);
        let xml = doc.render();
        let s2 = scenario_from_state_file(&xml, "reimported").unwrap();
        assert!(s2.validate().is_ok());
        assert_eq!(s2.hardware, s.hardware);
        assert_eq!(s2.projects, s.projects);
        assert_eq!(s2.seed, s.seed);
        assert_eq!(s2.prefs, s.prefs);
    }

    #[test]
    fn bad_xml_is_an_error() {
        assert!(scenario_from_state_file("<client_state", "x").is_err());
    }

    #[test]
    fn availability_hints_become_duty_cycles() {
        let mut doc = doc_from_scenario(&scenario2());
        doc.on_frac = 0.5;
        doc.cycle_mean = bce_types::SimDuration::from_hours(2.0);
        let s = scenario_from_doc(&doc, "avail");
        match s.avail.host {
            OnOffSpec::Exponential { up_mean, down_mean, .. } => {
                assert!((up_mean.secs() - 3600.0).abs() < 1e-6);
                assert!((down_mean.secs() - 3600.0).abs() < 1e-6);
            }
            other => panic!("expected exponential, got {other:?}"),
        }
    }
}

//! # bce-scenarios — the scenario library
//!
//! The paper's four evaluation scenarios (§5), the declarative JSON
//! scenario format (re-exported as [`spec`]), the unified
//! [`ScenarioSource`] resolver every CLI command loads through,
//! import/export through the client state-file format (§4.3's web-form
//! workflow), and the Monte-Carlo population sampler of §6.2.

pub mod import;
pub mod paper;
pub mod population;
pub mod source;

/// The versioned JSON scenario-spec codec (lives in `bce-core`, surfaced
/// here so scenario tooling has one import path).
pub use bce_core::spec;

pub use bce_core::spec::{ScenarioSpec, SpecError};
pub use import::{doc_from_scenario, scenario_from_doc, scenario_from_state_file};
pub use paper::{
    all_scenarios, paper_prefs, scenario1, scenario2, scenario3, scenario4, scenario4_sized,
};
pub use population::{PopulationModel, PopulationSampler};
pub use source::{
    builtin, load_scenario_text, LoadedScenario, ScenarioSource, SourceError, BUILTIN_NAMES,
};

//! # bce-scenarios — the scenario library
//!
//! The paper's four evaluation scenarios (§5), import/export through the
//! client state-file format (§4.3's web-form workflow), and the
//! Monte-Carlo population sampler of §6.2.

pub mod import;
pub mod paper;
pub mod population;

pub use import::{doc_from_scenario, scenario_from_doc, scenario_from_state_file};
pub use paper::{
    all_scenarios, paper_prefs, scenario1, scenario2, scenario3, scenario4, scenario4_sized,
};
pub use population::{PopulationModel, PopulationSampler};

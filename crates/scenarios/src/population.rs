//! Monte-Carlo scenario population sampling (§6.2 future work:
//! "characterize the actual population of scenarios, and develop a
//! system, perhaps based on Monte-Carlo sampling, to study policies over
//! the entire population").
//!
//! The distributions below are synthetic but shaped by published
//! characterizations of the SETI@home host population (Javadi et al. [5]:
//! availability well-modeled by exponential-family on/off processes;
//! host speeds roughly log-normal; core counts concentrated on small
//! powers of two). Every draw comes from the sampler's own RNG stream, so
//! a population is reproducible from its seed.

use bce_avail::{AvailSpec, OnOffSpec};
use bce_core::{Scenario, ScenarioBuilder};
use bce_sim::{Distribution, LogNormal, Rng, Uniform};
use bce_types::{AppClass, Hardware, Preferences, ProcType, ProjectSpec, SimDuration};

/// Tunable knobs of the population distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationModel {
    /// Median per-core speed (FLOPS) and log-sigma.
    pub core_flops_median: f64,
    pub core_flops_sigma: f64,
    /// Probability weights for 1, 2, 4, 8 cores.
    pub core_count_weights: [f64; 4],
    /// Probability the host has a GPU.
    pub gpu_probability: f64,
    /// GPU/CPU speed ratio range.
    pub gpu_ratio: Uniform,
    /// Probability weights for 1..=max attached projects.
    pub max_projects: u32,
    /// Host availability fraction range.
    pub host_on_frac: Uniform,
    /// Mean availability cycle length range (seconds).
    pub cycle_mean: Uniform,
    /// Job runtime median (seconds) and log-sigma across projects.
    pub runtime_median: f64,
    pub runtime_sigma: f64,
    /// Latency-bound/runtime slack factor range.
    pub slack_factor: Uniform,
}

impl Default for PopulationModel {
    fn default() -> Self {
        PopulationModel {
            core_flops_median: 2e9,
            core_flops_sigma: 0.4,
            core_count_weights: [0.15, 0.35, 0.35, 0.15],
            gpu_probability: 0.2,
            gpu_ratio: Uniform { lo: 5.0, hi: 30.0 },
            max_projects: 6,
            host_on_frac: Uniform { lo: 0.3, hi: 1.0 },
            cycle_mean: Uniform { lo: 4.0 * 3600.0, hi: 48.0 * 3600.0 },
            runtime_median: 3000.0,
            runtime_sigma: 0.8,
            slack_factor: Uniform { lo: 3.0, hi: 50.0 },
        }
    }
}

impl PopulationModel {
    /// A fleet shaped by the 2019 BOINC host census (Anderson, "BOINC: A
    /// Platform for Volunteer Computing", 2019): faster medians with a
    /// wider spread than the 2011 defaults, many-core hosts common, a
    /// third of hosts with (much faster) GPUs, longer jobs, and tighter
    /// deadlines.
    pub fn boinc2019() -> Self {
        PopulationModel {
            core_flops_median: 3.3e9,
            core_flops_sigma: 0.5,
            core_count_weights: [0.08, 0.22, 0.42, 0.28],
            gpu_probability: 0.33,
            gpu_ratio: Uniform { lo: 10.0, hi: 80.0 },
            max_projects: 4,
            host_on_frac: Uniform { lo: 0.2, hi: 1.0 },
            cycle_mean: Uniform { lo: 2.0 * 3600.0, hi: 72.0 * 3600.0 },
            runtime_median: 7200.0,
            runtime_sigma: 1.0,
            slack_factor: Uniform { lo: 2.0, hi: 20.0 },
        }
    }

    /// Look up a named model (`default` or `boinc2019`) — the names
    /// accepted by campaign manifests.
    pub fn named(name: &str) -> Option<Self> {
        match name {
            "default" => Some(PopulationModel::default()),
            "boinc2019" => Some(PopulationModel::boinc2019()),
            _ => None,
        }
    }
}

/// Draws scenarios from the population.
pub struct PopulationSampler {
    model: PopulationModel,
    rng: Rng,
    next_index: u64,
}

impl PopulationSampler {
    pub fn new(model: PopulationModel, seed: u64) -> Self {
        PopulationSampler { model, rng: Rng::stream(seed, "population"), next_index: 0 }
    }

    pub fn model(&self) -> &PopulationModel {
        &self.model
    }

    /// Draw the next scenario.
    pub fn sample(&mut self) -> Scenario {
        let m = &self.model;
        let idx = self.next_index;
        self.next_index += 1;
        let rng = &mut self.rng;

        // Hardware.
        let cores = [1u32, 2, 4, 8][rng.pick_weighted(&m.core_count_weights)];
        let core_flops =
            LogNormal::from_median(m.core_flops_median, m.core_flops_sigma).sample(rng);
        let mut hw =
            Hardware::cpu_only(cores, core_flops).with_mem(4e9 * (1.0 + rng.uniform() * 7.0));
        let has_gpu = rng.chance(m.gpu_probability);
        if has_gpu {
            let ratio = m.gpu_ratio.sample(rng);
            let gpu_type = if rng.chance(0.7) { ProcType::NvidiaGpu } else { ProcType::AtiGpu };
            hw = hw.with_group(gpu_type, 1, core_flops * ratio).with_vram(1e9);
        }

        // Availability.
        let on_frac = m.host_on_frac.sample(rng);
        let cycle = SimDuration::from_secs(m.cycle_mean.sample(rng));
        let avail = AvailSpec {
            host: OnOffSpec::duty_cycle(on_frac, cycle),
            user_active: OnOffSpec::duty_cycle(rng.range(0.0, 0.5), SimDuration::from_hours(2.0)),
            network: OnOffSpec::AlwaysOn,
        };

        // Projects.
        let nprojects = 1 + rng.below(m.max_projects as usize);
        let mut builder = ScenarioBuilder::new(format!("pop{idx:05}"), hw.clone())
            .seed(rng.next_u64())
            .prefs(Preferences::default())
            .avail(avail);
        for p in 0..nprojects {
            let share = [100.0, 100.0, 200.0, 50.0, 400.0][rng.below(5)];
            let runtime = LogNormal::from_median(m.runtime_median, m.runtime_sigma).sample(rng);
            let slack = m.slack_factor.sample(rng);
            let latency = SimDuration::from_secs(runtime * slack);
            let mut spec = ProjectSpec::new(p as u32, format!("pop-p{p}"), share);
            let gpu_project = has_gpu && rng.chance(0.4);
            spec = spec.with_app(
                AppClass::cpu(2 * p as u32, SimDuration::from_secs(runtime), latency).with_cv(0.1),
            );
            if gpu_project {
                let gpu_type =
                    hw.present_types().find(|t| t.is_gpu()).expect("gpu present when gpu_project");
                spec = spec.with_app(
                    AppClass::gpu(
                        2 * p as u32 + 1,
                        gpu_type,
                        SimDuration::from_secs(runtime / 4.0),
                        latency,
                    )
                    .with_cv(0.1),
                );
            }
            builder = builder.project(spec);
        }
        builder.build_unchecked()
    }

    /// Draw `n` scenarios.
    pub fn sample_many(&mut self, n: usize) -> Vec<Scenario> {
        (0..n).map(|_| self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_validate() {
        let mut s = PopulationSampler::new(PopulationModel::default(), 42);
        for scenario in s.sample_many(50) {
            assert!(scenario.validate().is_ok(), "{}: {:?}", scenario.name, scenario.validate());
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = PopulationSampler::new(PopulationModel::default(), 7);
        let mut b = PopulationSampler::new(PopulationModel::default(), 7);
        for _ in 0..20 {
            let (sa, sb) = (a.sample(), b.sample());
            assert_eq!(sa.seed, sb.seed);
            assert_eq!(sa.projects.len(), sb.projects.len());
            assert_eq!(sa.hardware, sb.hardware);
        }
    }

    #[test]
    fn population_is_diverse() {
        let mut s = PopulationSampler::new(PopulationModel::default(), 11);
        let scenarios = s.sample_many(100);
        let with_gpu = scenarios.iter().filter(|s| s.hardware.has_gpu()).count();
        assert!((5..60).contains(&with_gpu), "gpu hosts: {with_gpu}");
        let core_counts: std::collections::HashSet<u32> =
            scenarios.iter().map(|s| s.hardware.ninstances(ProcType::Cpu)).collect();
        assert!(core_counts.len() >= 3, "core variety: {core_counts:?}");
        let project_counts: std::collections::HashSet<usize> =
            scenarios.iter().map(|s| s.projects.len()).collect();
        assert!(project_counts.len() >= 3);
    }

    #[test]
    fn gpu_apps_only_on_gpu_hosts() {
        let mut s = PopulationSampler::new(PopulationModel::default(), 13);
        for scenario in s.sample_many(100) {
            for p in &scenario.projects {
                for t in p.proc_types() {
                    if t.is_gpu() {
                        assert!(scenario.hardware.ninstances(t) > 0);
                    }
                }
            }
        }
    }
}

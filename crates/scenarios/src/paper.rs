//! The paper's four evaluation scenarios (§5).
//!
//! * Scenario 1: CPU only, two projects.
//! * Scenario 2: 4 CPUs and 1 GPU, GPU 10× faster than one CPU; two
//!   projects, one with CPU jobs, one with both.
//! * Scenario 3: CPU only; two projects, one with very long low-slack
//!   jobs.
//! * Scenario 4: CPU and GPU; twenty projects with varying job types.
//!
//! Unless otherwise specified the emulation period is 10 days; the
//! concrete job parameters the paper leaves open are fixed here and
//! documented per scenario.

use bce_core::{Scenario, ScenarioBuilder};
use bce_types::{AppClass, Hardware, Preferences, ProcType, ProjectSpec, SimDuration};

/// Preferences used across the paper scenarios: a small work buffer
/// (min 15 minutes + 15 extra) and always-available computing, so policy
/// differences — not buffering artifacts — dominate the figures.
pub fn paper_prefs() -> Preferences {
    Preferences {
        work_buf_min: SimDuration::from_secs(900.0),
        work_buf_extra: SimDuration::from_secs(900.0),
        ..Default::default()
    }
}

/// Scenario 1 (§5, used for Figure 3): one 1 GFLOPS CPU, two projects
/// with equal shares. Project 0's jobs run 1000 s with the given latency
/// bound (the paper sweeps 1000–2000 s); project 1's jobs are identical
/// but with a loose 24 h bound.
pub fn scenario1(latency_bound: SimDuration) -> Scenario {
    ScenarioBuilder::new("scenario1", Hardware::cpu_only(1, 1e9))
        .seed(101)
        .prefs(Preferences {
            // A shallow queue (~one job in flight per project): deeper
            // queues make every batch-mate of a tight job unsaveable by
            // any scheduling policy, obscuring the EDF-vs-WRR contrast
            // the figure studies.
            work_buf_min: SimDuration::from_secs(450.0),
            work_buf_extra: SimDuration::from_secs(450.0),
            ..Default::default()
        })
        .project(ProjectSpec::new(0, "tight", 100.0).with_app(
            // Mild runtime variance breaks deterministic lock-step
            // resonances between fetch batching and the latency bound.
            AppClass::cpu(0, SimDuration::from_secs(1000.0), latency_bound).with_cv(0.05),
        ))
        .project(
            ProjectSpec::new(1, "loose", 100.0).with_app(
                AppClass::cpu(1, SimDuration::from_secs(1000.0), SimDuration::from_hours(24.0))
                    .with_cv(0.05),
            ),
        )
        .build()
        .expect("scenario1 is valid")
}

/// Scenario 2 (§5, Figure 4): 4 CPUs (1 GFLOPS each) and 1 GPU 10× faster
/// than one CPU. Two equal-share projects: project 0 has CPU jobs only,
/// project 1 has both CPU and GPU jobs.
pub fn scenario2() -> Scenario {
    let hw = Hardware::cpu_only(4, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10);
    ScenarioBuilder::new("scenario2", hw)
        .seed(102)
        .prefs(paper_prefs())
        .project(
            ProjectSpec::new(0, "cpu_only", 100.0).with_app(
                AppClass::cpu(0, SimDuration::from_secs(3000.0), SimDuration::from_hours(24.0))
                    .with_cv(0.05),
            ),
        )
        .project(
            ProjectSpec::new(1, "cpu_gpu", 100.0)
                .with_app(
                    AppClass::cpu(1, SimDuration::from_secs(3000.0), SimDuration::from_hours(24.0))
                        .with_cv(0.05),
                )
                .with_app(
                    AppClass::gpu(
                        2,
                        ProcType::NvidiaGpu,
                        SimDuration::from_secs(1000.0),
                        SimDuration::from_hours(24.0),
                    )
                    .with_cv(0.05),
                ),
        )
        .build()
        .expect("scenario2 is valid")
}

/// Scenario 3 (§5, Figure 6): CPU only (one 1 GFLOPS CPU); project 0 has
/// very long (10⁶ s ≈ 11.6 days) low-slack jobs that are immediately
/// deadline-endangered; project 1 has normal jobs.
pub fn scenario3() -> Scenario {
    ScenarioBuilder::new("scenario3", Hardware::cpu_only(1, 1e9))
        .seed(103)
        .prefs(paper_prefs())
        .project(
            ProjectSpec::new(0, "long_low_slack", 100.0).with_app(
                // Slack 10% of the runtime: the job must run nearly
                // exclusively to meet its deadline.
                AppClass::cpu(0, SimDuration::from_secs(1e6), SimDuration::from_secs(1.1e6))
                    .with_cv(0.0),
            ),
        )
        .project(
            ProjectSpec::new(1, "normal", 100.0).with_app(
                AppClass::cpu(1, SimDuration::from_secs(2000.0), SimDuration::from_hours(24.0))
                    .with_cv(0.05),
            ),
        )
        .build()
        .expect("scenario3 is valid")
}

/// Scenario 4 (§5, Figure 5): CPU and GPU host, twenty projects with
/// varying job types: a mix of CPU-only, GPU-only and mixed projects with
/// varying runtimes and latency bounds. Deterministically generated from
/// the project index.
pub fn scenario4() -> Scenario {
    scenario4_sized(20)
}

/// Scenario 4 with a configurable project count (used by sweeps).
pub fn scenario4_sized(nprojects: u32) -> Scenario {
    let hw = Hardware::cpu_only(4, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10);
    let mut b = ScenarioBuilder::new("scenario4", hw).seed(104).prefs(Preferences {
        // A couple of hours of buffer: enough for hysteresis batching to
        // matter with 20 projects.
        work_buf_min: SimDuration::from_hours(1.0),
        work_buf_extra: SimDuration::from_hours(1.0),
        ..Default::default()
    });
    for i in 0..nprojects {
        // Job mix varies by index: runtimes 500–4000 s, every third
        // project supplies GPU work, every fifth is GPU-only.
        let runtime = 500.0 + 250.0 * (i % 15) as f64;
        let latency = SimDuration::from_hours(12.0 + (i % 5) as f64 * 12.0);
        let mut p = ProjectSpec::new(i, format!("proj{i:02}"), 100.0);
        let gpu_only = i % 5 == 4;
        let has_gpu = gpu_only || i % 3 == 0;
        if !gpu_only {
            p = p.with_app(
                AppClass::cpu(2 * i, SimDuration::from_secs(runtime), latency).with_cv(0.1),
            );
        }
        if has_gpu {
            p = p.with_app(
                AppClass::gpu(
                    2 * i + 1,
                    ProcType::NvidiaGpu,
                    SimDuration::from_secs(runtime / 2.0),
                    latency,
                )
                .with_cv(0.1),
            );
        }
        b = b.project(p);
    }
    // `nprojects` may be zero in degenerate sweeps; the callers that do
    // that never emulate the result, so skip validation here.
    b.build_unchecked()
}

/// All four scenarios with their default parameters, for sweeps and
/// regression tests.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![scenario1(SimDuration::from_secs(1500.0)), scenario2(), scenario3(), scenario4()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_scenarios_validate() {
        for s in all_scenarios() {
            assert!(s.validate().is_ok(), "{} invalid: {:?}", s.name, s.validate());
        }
    }

    #[test]
    fn scenario1_shape() {
        let s = scenario1(SimDuration::from_secs(1200.0));
        assert_eq!(s.projects.len(), 2);
        assert_eq!(s.hardware.ninstances(ProcType::Cpu), 1);
        assert!(!s.hardware.has_gpu());
        assert_eq!(s.projects[0].apps[0].latency_bound, SimDuration::from_secs(1200.0));
    }

    #[test]
    fn scenario2_shape() {
        let s = scenario2();
        assert_eq!(s.hardware.ninstances(ProcType::Cpu), 4);
        assert_eq!(s.hardware.ninstances(ProcType::NvidiaGpu), 1);
        // GPU 10x one CPU.
        assert_eq!(
            s.hardware.flops_per_inst(ProcType::NvidiaGpu),
            10.0 * s.hardware.flops_per_inst(ProcType::Cpu)
        );
        assert!(!s.projects[0].has_apps_for(ProcType::NvidiaGpu));
        assert!(s.projects[1].has_apps_for(ProcType::NvidiaGpu));
        assert!(s.projects[1].has_apps_for(ProcType::Cpu));
    }

    #[test]
    fn scenario3_shape() {
        let s = scenario3();
        let long = &s.projects[0].apps[0];
        assert_eq!(long.runtime_mean, SimDuration::from_secs(1e6));
        // Low slack: bound only 10% above the runtime.
        assert!(long.latency_bound < long.runtime_mean * 1.2);
    }

    #[test]
    fn scenario4_shape() {
        let s = scenario4();
        assert_eq!(s.projects.len(), 20);
        let gpu_projects =
            s.projects.iter().filter(|p| p.has_apps_for(ProcType::NvidiaGpu)).count();
        let cpu_projects = s.projects.iter().filter(|p| p.has_apps_for(ProcType::Cpu)).count();
        assert!(gpu_projects >= 5, "gpu projects {gpu_projects}");
        assert!(cpu_projects >= 10, "cpu projects {cpu_projects}");
        // Varying job types: not all runtimes equal.
        let r0 = s.projects[0].apps[0].runtime_mean;
        assert!(s.projects.iter().any(|p| p.apps[0].runtime_mean != r0));
    }
}

//! Wall-clock adapters over `bce-faults`' [`RetryPolicy`]/[`RetryState`].
//!
//! The emulator's retry machinery lives in simulated time (`SimTime`);
//! the daemon's transient failures — `EMFILE` bursts in the accept loop,
//! checkpoint writes racing a full disk — live in wall time. Rather than
//! grow a second ad-hoc backoff implementation, this module maps wall
//! seconds onto the same policy arithmetic: one deterministic, tested
//! backoff curve for the whole workspace.

use bce_faults::{RetryPolicy, RetryState, RetryVerdict};
use bce_types::{SimDuration, SimTime};
use std::time::{Duration, Instant};

/// Accept-loop recovery: `EMFILE`/`ENFILE` and friends are almost always
/// transient (a shed burst is holding fds); back off briefly so the
/// burst clears, never give up — an accept loop that stops accepting is
/// an outage.
pub const ACCEPT_RETRY: RetryPolicy = RetryPolicy {
    min_delay: SimDuration::from_secs(0.01),
    max_delay: SimDuration::from_secs(0.5),
    multiplier: 2.0,
    jitter: 0.0,
    give_up_after: None,
};

/// Checkpoint-write recovery: a handful of quick retries, then give up
/// and surface the error (the campaign result is still correct; only
/// crash-safety degrades, and silently looping forever would stall the
/// drain).
pub const CHECKPOINT_RETRY: RetryPolicy = RetryPolicy {
    min_delay: SimDuration::from_secs(0.02),
    max_delay: SimDuration::from_secs(0.25),
    multiplier: 2.0,
    jitter: 0.0,
    give_up_after: Some(4),
};

/// A [`RetryState`] driven by wall-clock time.
pub struct WallRetry {
    policy: RetryPolicy,
    state: RetryState,
    origin: Instant,
}

impl WallRetry {
    pub fn new(policy: RetryPolicy) -> Self {
        WallRetry { policy, state: RetryState::new(), origin: Instant::now() }
    }

    fn now(&self) -> SimTime {
        SimTime::from_secs(self.origin.elapsed().as_secs_f64())
    }

    /// Record a failure. Returns the backoff to sleep before the next
    /// attempt, or `None` once the policy's give-up limit is reached.
    pub fn fail(&mut self) -> Option<Duration> {
        let now = self.now();
        match self.state.fail(now, &self.policy, 0.0) {
            RetryVerdict::RetryAt(until) => {
                Some(Duration::from_secs_f64((until.secs() - now.secs()).max(0.0)))
            }
            RetryVerdict::GiveUp => None,
        }
    }

    /// Record a success: resets the backoff curve.
    pub fn succeed(&mut self) {
        self.state.succeed();
    }

    pub fn consecutive_failures(&self) -> u32 {
        self.state.consecutive_failures()
    }
}

/// Run `op` under `policy`, sleeping the policy's backoff between
/// attempts, until it succeeds or the policy gives up (returning the
/// last error). Used for checkpoint writes; the accept loop drives
/// [`WallRetry`] directly because it must interleave with drain checks.
pub fn retry_io<T, E>(policy: RetryPolicy, mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
    retry_io_with(policy, &mut op, std::thread::sleep)
}

/// [`retry_io`] with an injectable sleeper, so tests can capture the
/// exact backoff schedule instead of actually sleeping.
pub fn retry_io_with<T, E>(
    policy: RetryPolicy,
    op: &mut impl FnMut() -> Result<T, E>,
    mut sleep: impl FnMut(Duration),
) -> Result<T, E> {
    let mut retry = WallRetry::new(policy);
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => match retry.fail() {
                Some(delay) => sleep(delay),
                None => return Err(e),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_io_retries_then_succeeds_with_policy_delays() {
        // Regression test for the satellite requirement: the daemon's
        // transient-I/O retries must follow the shared RetryPolicy curve
        // (doubling from min_delay), not ad-hoc sleeps.
        let mut calls = 0;
        let mut delays: Vec<Duration> = Vec::new();
        let result: Result<u32, &str> = retry_io_with(
            CHECKPOINT_RETRY,
            &mut || {
                calls += 1;
                if calls < 3 {
                    Err("transient")
                } else {
                    Ok(7)
                }
            },
            |d| delays.push(d),
        );
        assert_eq!(result, Ok(7));
        assert_eq!(calls, 3);
        assert_eq!(delays.len(), 2);
        // First delay = min_delay, second = doubled (both well under the
        // cap). Allow sub-millisecond slack for the Instant->SimTime map.
        assert!((delays[0].as_secs_f64() - 0.02).abs() < 5e-3, "{delays:?}");
        assert!((delays[1].as_secs_f64() - 0.04).abs() < 5e-3, "{delays:?}");
    }

    #[test]
    fn retry_io_gives_up_after_policy_limit() {
        let mut calls = 0;
        let result: Result<(), String> = retry_io_with(
            CHECKPOINT_RETRY,
            &mut || {
                calls += 1;
                Err(format!("fail {calls}"))
            },
            |_| {},
        );
        // give_up_after 4 = the initial attempt plus 3 retries.
        assert_eq!(calls, 4);
        assert_eq!(result.unwrap_err(), "fail 4");
    }

    #[test]
    fn accept_retry_never_gives_up_and_caps_delay() {
        let mut retry = WallRetry::new(ACCEPT_RETRY);
        let mut last = Duration::ZERO;
        for _ in 0..20 {
            let d = retry.fail().expect("accept retry must never give up");
            assert!(d <= Duration::from_millis(501), "{d:?}");
            last = d;
        }
        assert!(last >= Duration::from_millis(490), "delay should reach the cap, got {last:?}");
        retry.succeed();
        assert_eq!(retry.consecutive_failures(), 0);
        let d = retry.fail().unwrap();
        assert!(d <= Duration::from_millis(11), "reset curve restarts at min_delay, got {d:?}");
    }
}

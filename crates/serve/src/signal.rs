//! SIGTERM/SIGINT → drain-flag wiring, hand-rolled.
//!
//! The workspace has no `libc` crate, but `std` already links the C
//! library, so the two symbols needed — `signal(2)` and the integer
//! signal numbers — are declared here directly. The handler does the
//! only async-signal-safe thing possible: it sets a process-global
//! atomic, which the accept loop polls (it runs non-blocking with a
//! short poll interval precisely so a signal never has to interrupt a
//! blocking syscall).

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once a termination signal has been observed.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    use super::TERM_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `sighandler_t signal(int signum, sighandler_t handler)`.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        // Only async-signal-safe operation here: one atomic store.
        TERM_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
            signal(SIGINT, on_term as *const () as usize);
        }
    }
}

/// Install the SIGTERM/SIGINT handler (idempotent; no-op off Unix, where
/// only the in-process [`crate::ServerHandle::drain`] path exists).
pub fn install_termination_handler() {
    #[cfg(unix)]
    unix::install();
}

/// Has SIGTERM/SIGINT been received?
pub fn termination_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

/// Test hook: simulate (or clear) a received signal in-process.
pub fn set_termination_requested(v: bool) {
    TERM_REQUESTED.store(v, Ordering::SeqCst);
}

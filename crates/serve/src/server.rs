//! The daemon: listener, bounded worker pool, shedding acceptor, and the
//! graceful-drain state machine.
//!
//! Threading model (documented in DESIGN.md § service architecture):
//!
//! - One **acceptor** (the thread that called [`Server::run`]) owns the
//!   non-blocking listener. It polls `accept(2)` at a short interval so
//!   it can observe the drain flag and termination signals without ever
//!   parking in a syscall. Accepted connections go through
//!   [`AdmissionQueue::try_push`]; rejected ones are shed *by the
//!   acceptor* with a canned `503 + Retry-After` under a write timeout,
//!   so a slow shed target cannot stall admission for long.
//! - `workers` **worker threads** block on [`AdmissionQueue::pop`]. Each
//!   parses under socket read timeouts, routes, and answers. A handler
//!   panic is quarantined with `catch_unwind` and answered as `500`; the
//!   worker survives.
//! - **Drain** (SIGTERM/SIGINT or [`ServerHandle::drain`]): the queue
//!   closes (new connections shed as `Draining`), workers finish the
//!   admitted backlog, campaigns cut at the next chunk boundary and
//!   persist their checkpoint, and `run` returns once every worker exits
//!   or the drain grace expires.

use crate::handlers;
use crate::http::{self, Response};
use crate::queue::{AdmissionQueue, Rejection};
use crate::signal;
use crate::wall::{WallRetry, ACCEPT_RETRY};
use bce_obs::{CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot, TraceRecord};
use std::collections::HashSet;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything the daemon will and will not do, fixed at bind time.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7070`. Port `0` picks a free one.
    pub addr: String,
    /// Worker threads (also the number of requests in flight). `0` means
    /// [`bce_controller::resolve_threads`] decides.
    pub workers: usize,
    /// Admission-queue capacity; connection #`queue_depth + workers + 1`
    /// is shed, bounding daemon memory regardless of client behavior.
    pub queue_depth: usize,
    /// Largest accepted request body (state files can be large; 1 MiB
    /// default). Larger declared bodies are refused *before* reading.
    pub max_body_bytes: usize,
    /// Socket read timeout — a slow-loris client costs one worker at
    /// most this long.
    pub read_timeout: Duration,
    /// Socket write timeout (responses and shed notices).
    pub write_timeout: Duration,
    /// Default and maximum wall-clock budget for one `/campaign` request;
    /// on expiry the campaign parks at a chunk boundary with its
    /// checkpoint persisted and the client is told to re-POST.
    pub request_deadline: Duration,
    /// Upper bound on the emulated horizon a request may ask for.
    pub max_days: f64,
    /// Value of the `Retry-After` header on shed/parked responses.
    pub retry_after_secs: u32,
    /// Where `/campaign` checkpoints live (`<dir>/<id>.ckpt`).
    pub checkpoint_dir: PathBuf,
    /// Runs per campaign chunk: the granularity at which deadlines and
    /// drain are observed, and at which checkpoints are written.
    pub campaign_chunk_runs: usize,
    /// Typed-trace buffer capacity for `/run` (served back on `/trace`).
    pub trace_capacity: usize,
    /// How long `run` waits for workers after drain before giving up on
    /// them (they hold nothing but their own connection by then).
    pub drain_grace: Duration,
    /// Acceptor poll interval; bounds signal-to-drain latency.
    pub poll_interval: Duration,
    /// Scenario reference (builtin name or spec/state-file path) used by
    /// `/run` requests that give neither `?scenario=` nor a body.
    pub default_scenario: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7070".to_string(),
            workers: 4,
            queue_depth: 64,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(120),
            max_days: 60.0,
            retry_after_secs: 1,
            checkpoint_dir: PathBuf::from("serve-checkpoints"),
            campaign_chunk_runs: 8,
            trace_capacity: 4096,
            drain_grace: Duration::from_secs(30),
            poll_interval: Duration::from_millis(20),
            default_scenario: None,
        }
    }
}

/// Pre-registered metric handles (scope `serve`), so the hot path never
/// allocates a key.
#[derive(Clone, Copy)]
pub(crate) struct Ids {
    pub accepted: CounterId,
    pub responses_2xx: CounterId,
    pub responses_4xx: CounterId,
    pub responses_5xx: CounterId,
    pub shed_full: CounterId,
    pub shed_draining: CounterId,
    pub read_timeouts: CounterId,
    pub parse_errors: CounterId,
    pub panics_quarantined: CounterId,
    pub accept_retries: CounterId,
    pub runs_completed: CounterId,
    /// Cumulative RR-simulation reruns across all served emulations.
    pub emu_rr_runs: CounterId,
    /// Cumulative frozen-window partial refreshes across served emulations.
    pub emu_rr_frozen: CounterId,
    /// Cumulative availability flaps coalesced across served emulations.
    pub emu_flaps_coalesced: CounterId,
    /// Cumulative zero-delta availability events that skipped a reschedule.
    pub emu_avail_resched_skipped: CounterId,
    pub campaign_chunks: CounterId,
    pub campaigns_completed: CounterId,
    pub campaigns_parked: CounterId,
    /// Mid-flight campaign checkpoint writes that failed (best-effort
    /// writes; crash-safety degraded, study unaffected).
    pub ckpt_write_failures: CounterId,
    /// Resumes that had to fall back past a corrupt checkpoint
    /// generation (or loaded a deprecated legacy file).
    pub ckpt_recoveries: CounterId,
    /// Old checkpoint generations removed by rotation.
    pub ckpt_generations_pruned: CounterId,
    pub queue_depth: GaugeId,
    pub draining: GaugeId,
    pub uptime_seconds: GaugeId,
    pub request_ms: HistogramId,
}

impl Ids {
    fn register(reg: &mut MetricsRegistry) -> Ids {
        Ids {
            accepted: reg.counter("serve", "accepted_total"),
            responses_2xx: reg.counter("serve", "responses_2xx"),
            responses_4xx: reg.counter("serve", "responses_4xx"),
            responses_5xx: reg.counter("serve", "responses_5xx"),
            shed_full: reg.counter("serve", "shed_queue_full"),
            shed_draining: reg.counter("serve", "shed_draining"),
            read_timeouts: reg.counter("serve", "read_timeouts"),
            parse_errors: reg.counter("serve", "parse_errors"),
            panics_quarantined: reg.counter("serve", "panics_quarantined"),
            accept_retries: reg.counter("serve", "accept_retries"),
            runs_completed: reg.counter("serve", "runs_completed"),
            emu_rr_runs: reg.counter("emulation", "rr_runs"),
            emu_rr_frozen: reg.counter("emulation", "rr_frozen"),
            emu_flaps_coalesced: reg.counter("emulation", "flaps_coalesced"),
            emu_avail_resched_skipped: reg.counter("emulation", "avail_resched_skipped"),
            campaign_chunks: reg.counter("serve", "campaign_chunks"),
            campaigns_completed: reg.counter("serve", "campaigns_completed"),
            campaigns_parked: reg.counter("serve", "campaigns_parked"),
            ckpt_write_failures: reg.counter("checkpoint", "write_failures"),
            ckpt_recoveries: reg.counter("checkpoint", "recoveries"),
            ckpt_generations_pruned: reg.counter("checkpoint", "generations_pruned"),
            queue_depth: reg.gauge("serve", "queue_depth"),
            draining: reg.gauge("serve", "draining"),
            uptime_seconds: reg.gauge("serve", "uptime_seconds"),
            request_ms: reg.histogram(
                "serve",
                "request_ms",
                &[1.0, 5.0, 20.0, 100.0, 500.0, 2000.0, 10000.0],
            ),
        }
    }
}

/// State shared by the acceptor, the workers, and [`ServerHandle`]s.
pub(crate) struct Shared {
    pub cfg: ServeConfig,
    pub draining: AtomicBool,
    metrics: Mutex<MetricsRegistry>,
    pub ids: Ids,
    /// Trace records of the most recent completed `/run`, for `/trace`.
    pub last_trace: Mutex<Vec<TraceRecord>>,
    /// Campaign ids currently executing, so two concurrent POSTs cannot
    /// race the same checkpoint file.
    pub campaigns_in_flight: Mutex<HashSet<String>>,
    pub started: Instant,
}

impl Shared {
    pub fn inc(&self, id: CounterId) {
        self.metrics.lock().expect("metrics poisoned").inc(id);
    }
    pub fn add(&self, id: CounterId, n: u64) {
        self.metrics.lock().expect("metrics poisoned").add(id, n);
    }
    pub fn set_gauge(&self, id: GaugeId, v: f64) {
        self.metrics.lock().expect("metrics poisoned").set(id, v);
    }
    pub fn observe(&self, id: HistogramId, v: f64) {
        self.metrics.lock().expect("metrics poisoned").observe(id, v);
    }
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.lock().expect("metrics poisoned").snapshot()
    }
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.set_gauge(self.ids.draining, 1.0);
    }
}

/// What the daemon did with its life, reported when [`Server::run`]
/// returns after a drain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    pub accepted: u64,
    pub shed: u64,
    pub panics_quarantined: u64,
    pub campaigns_parked: u64,
    /// Workers that had not finished when the drain grace expired.
    pub workers_abandoned: usize,
}

impl std::fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drained: accepted {} shed {} quarantined {} parked-campaigns {} abandoned-workers {}",
            self.accepted,
            self.shed,
            self.panics_quarantined,
            self.campaigns_parked,
            self.workers_abandoned
        )
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    queue: Arc<AdmissionQueue<TcpStream>>,
}

/// A cheap handle onto a running (or bound) server: drain it, read its
/// metrics. Cloneable across threads.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    queue: Arc<AdmissionQueue<TcpStream>>,
}

impl ServerHandle {
    /// Ask the daemon to drain: stop admitting, finish in-flight work,
    /// park campaigns at the next chunk boundary, exit `run`.
    pub fn drain(&self) {
        self.shared.begin_drain();
        self.queue.close();
    }

    pub fn is_draining(&self) -> bool {
        self.shared.is_draining()
    }

    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics_snapshot()
    }
}

impl Server {
    /// Bind the listener and register the metric set. Does not accept
    /// anything until [`Server::run`].
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let mut reg = MetricsRegistry::new();
        let ids = Ids::register(&mut reg);
        let queue = Arc::new(AdmissionQueue::new(cfg.queue_depth));
        let shared = Arc::new(Shared {
            cfg,
            draining: AtomicBool::new(false),
            metrics: Mutex::new(reg),
            ids,
            last_trace: Mutex::new(Vec::new()),
            campaigns_in_flight: Mutex::new(HashSet::new()),
            started: Instant::now(),
        });
        Ok(Server { listener, shared, queue })
    }

    /// The address actually bound (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: self.shared.clone(), queue: self.queue.clone() }
    }

    /// Run until drained (signal or [`ServerHandle::drain`]). Installs
    /// the SIGTERM/SIGINT handler; the calling thread becomes the
    /// acceptor.
    pub fn run(self) -> ServeSummary {
        signal::install_termination_handler();
        let Server { listener, shared, queue } = self;
        let workers = bce_controller::resolve_threads(shared.cfg.workers);

        let (done_tx, done_rx) = mpsc::channel::<()>();
        let mut joins = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shared = shared.clone();
            let queue = queue.clone();
            let done_tx = done_tx.clone();
            joins.push(std::thread::spawn(move || {
                while let Some((stream, _admitted)) = queue.pop() {
                    serve_connection(&shared, stream);
                    shared.set_gauge(shared.ids.queue_depth, queue.len() as f64);
                }
                let _ = done_tx.send(());
            }));
        }
        drop(done_tx);

        let mut retry = WallRetry::new(ACCEPT_RETRY);
        loop {
            if signal::termination_requested() || shared.is_draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    retry.succeed();
                    shared.inc(shared.ids.accepted);
                    match queue.try_push(stream) {
                        Ok(()) => shared.set_gauge(shared.ids.queue_depth, queue.len() as f64),
                        Err((stream, why)) => shed(&shared, stream, why),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(shared.cfg.poll_interval);
                }
                Err(_) => {
                    // EMFILE and friends: transient by assumption; back
                    // off on the shared retry curve, never stop accepting.
                    shared.inc(shared.ids.accept_retries);
                    let delay = retry.fail().unwrap_or(shared.cfg.poll_interval);
                    std::thread::sleep(delay);
                }
            }
        }

        // Drain: refuse new work, let the admitted backlog finish.
        shared.begin_drain();
        queue.close();
        let deadline = Instant::now() + shared.cfg.drain_grace;
        let mut finished = 0usize;
        while finished < workers {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match done_rx.recv_timeout(left) {
                Ok(()) => finished += 1,
                Err(_) => break,
            }
        }
        for j in joins {
            if finished == workers {
                let _ = j.join();
            }
            // Otherwise leave stragglers detached: the process is about
            // to exit and joining could wait past the grace period.
        }

        let snap = shared.metrics_snapshot();
        ServeSummary {
            accepted: snap.counter("serve.accepted_total").unwrap_or(0),
            shed: snap.counter("serve.shed_queue_full").unwrap_or(0)
                + snap.counter("serve.shed_draining").unwrap_or(0),
            panics_quarantined: snap.counter("serve.panics_quarantined").unwrap_or(0),
            campaigns_parked: snap.counter("serve.campaigns_parked").unwrap_or(0),
            workers_abandoned: workers - finished,
        }
    }
}

/// Shed a connection the queue refused: canned `503 + Retry-After`,
/// written by the acceptor under the write timeout, then closed. The
/// client sees an explicit, retryable signal instead of a hang.
fn shed(shared: &Shared, mut stream: TcpStream, why: Rejection) {
    let (id, reason) = match why {
        Rejection::Full => (shared.ids.shed_full, "admission queue full"),
        Rejection::Draining => (shared.ids.shed_draining, "draining"),
    };
    shared.inc(id);
    let resp = Response::unavailable(reason, shared.cfg.retry_after_secs);
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.write_all(&resp.to_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// One admitted connection, start to finish: parse under timeouts, route
/// under `catch_unwind`, answer, account.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let start = Instant::now();
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));

    let response = match http::read_request(&mut stream, shared.cfg.max_body_bytes) {
        Ok(req) => match catch_unwind(AssertUnwindSafe(|| handlers::route(&req, shared))) {
            Ok(resp) => resp,
            Err(panic) => {
                // Quarantine: the worker answers 500 and lives on. (The
                // emulator itself is additionally supervised inside the
                // handlers; this catches everything else.)
                shared.inc(shared.ids.panics_quarantined);
                Response::text(500, format!("internal error: {}\n", panic_message(&panic)))
            }
        },
        Err(e) => {
            match e {
                http::HttpError::Timeout => shared.inc(shared.ids.read_timeouts),
                _ => shared.inc(shared.ids.parse_errors),
            }
            http::error_response(&e, shared.cfg.retry_after_secs)
        }
    };

    let class = match response.status {
        200..=299 => shared.ids.responses_2xx,
        400..=499 => shared.ids.responses_4xx,
        _ => shared.ids.responses_5xx,
    };
    shared.inc(class);
    let _ = stream.write_all(&response.to_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
    shared.observe(shared.ids.request_ms, start.elapsed().as_secs_f64() * 1000.0);
}

pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "panic of unknown type"
    }
}

//! `bce-serve`: a hardened, long-running emulation service.
//!
//! The daemon accepts scenario and state-file submissions over a
//! hand-rolled HTTP/1.1 subset (the workspace stays dependency-free) and
//! runs them through the supervised, checkpointing executor. Its
//! robustness contract:
//!
//! - **Bounded everything.** A fixed worker pool behind an explicit
//!   [`AdmissionQueue`]; when the queue is full the connection is shed
//!   immediately with `503 + Retry-After`. Header, body, and header-count
//!   caps reject oversized requests before buffering them.
//! - **Budgeted requests.** Each `/campaign` carries a wall-clock
//!   deadline; work proceeds in checkpointed chunks (the executor's
//!   `stop_after_runs`) so an expired budget parks the campaign rather
//!   than truncating it.
//! - **No wedged workers.** Socket read/write timeouts bound slow-loris
//!   clients; malformed and oversized input maps to typed `4xx`; panics
//!   are quarantined per request (`catch_unwind` at the route layer, the
//!   supervised executor underneath).
//! - **Graceful drain.** SIGTERM/SIGINT (or [`ServerHandle::drain`])
//!   stops admission, finishes admitted work, parks campaigns at a chunk
//!   boundary with their checkpoint persisted, and exits. A restarted
//!   daemon resumes a parked campaign bit-identically — the CI smoke
//!   job diffs the resumed table against an uninterrupted reference.
//! - **Observable.** `/healthz`, `/readyz`, `/metrics` (the `bce-obs`
//!   registry), and `/trace` (the last run's typed trace as JSONL).

pub mod http;
pub mod queue;
pub mod signal;
pub mod wall;

mod handlers;
mod server;

pub use http::{error_response, read_request, HttpError, Request, Response};
pub use queue::{AdmissionQueue, Rejection};
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
pub use wall::{retry_io, retry_io_with, WallRetry, ACCEPT_RETRY, CHECKPOINT_RETRY};

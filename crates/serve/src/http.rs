//! A minimal, hardened HTTP/1.1 subset — hand-rolled on `std::io`, like
//! every other parser in this workspace (the environment has no crates
//! registry, and the attack surface is small enough to own outright).
//!
//! Scope: exactly what `bce serve` needs. One request per connection
//! (`Connection: close` is always sent), `Content-Length` bodies only
//! (chunked transfer encoding is rejected with `501`), no keep-alive, no
//! pipelining, no TLS.
//!
//! Hardening is the point, not an afterthought:
//!
//! * every read happens under a socket read timeout set by the caller, so
//!   a slow-loris client produces [`HttpError::Timeout`] (`408`), never a
//!   wedged worker;
//! * the request line, header block, header count and body are all
//!   size-capped with typed errors (`400`/`413`/`431`), so oversized or
//!   garbage input degrades to a response, never to unbounded memory;
//! * the parser never panics on any byte sequence — property-tested in
//!   `tests/http_parser.rs`.

use std::io::Read;

/// Upper bound on the request line (`GET /path?query HTTP/1.1`).
pub const MAX_REQUEST_LINE: usize = 4096;
/// Upper bound on the whole header block.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Upper bound on the number of header fields.
pub const MAX_HEADERS: usize = 64;

/// Typed request-side failure, each mapping to one status code. The
/// daemon turns these into responses; nothing here can panic a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header syntax, or body framing (`400`).
    Malformed(String),
    /// The client stopped sending before the message was complete (`400`).
    Truncated(String),
    /// A read hit the socket timeout (`408`).
    Timeout,
    /// Request line or header block over the caps (`431`).
    HeadersTooLarge,
    /// Declared or actual body larger than the configured cap (`413`).
    BodyTooLarge { limit: usize },
    /// `Transfer-Encoding` or another framing we deliberately do not
    /// implement (`501`).
    Unsupported(String),
    /// Method not in the route table (`405`).
    MethodNotAllowed,
    /// Any other socket-level failure; the connection is just dropped.
    Io(String),
}

impl HttpError {
    /// The status code this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) | HttpError::Truncated(_) => 400,
            HttpError::Timeout => 408,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::Unsupported(_) => 501,
            HttpError::MethodNotAllowed => 405,
            HttpError::Io(_) => 400,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::Truncated(m) => write!(f, "truncated request: {m}"),
            HttpError::Timeout => write!(f, "timed out reading request"),
            HttpError::HeadersTooLarge => write!(f, "request headers too large"),
            HttpError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            HttpError::Unsupported(m) => write!(f, "unsupported: {m}"),
            HttpError::MethodNotAllowed => write!(f, "method not allowed"),
            HttpError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}
impl std::error::Error for HttpError {}

fn io_err(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e.to_string()),
    }
}

/// A parsed request. Header names are folded to lowercase; the target is
/// split into path and query at the first `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// Raw query string (without the `?`), empty if absent.
    pub query: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == lower).map(|(_, v)| v.as_str())
    }

    /// Iterate `key=value` pairs of the query string (no percent-decoding
    /// beyond `%20`/`+` for spaces — the daemon's parameters are all
    /// alphanumeric tokens and numbers).
    pub fn query_params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.query
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
    }

    pub fn param(&self, name: &str) -> Option<&str> {
        self.query_params().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// Parse a typed query parameter; `None` when absent, `Err` with a
    /// user-facing message when present but malformed.
    pub fn param_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.param(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("query parameter {name}={v:?} is malformed")),
        }
    }
}

/// Read from `stream` until the end of the header block (`\r\n\r\n`),
/// never consuming past it by buffering at most one read's overshoot —
/// the overshoot is returned as the start of the body.
fn read_head(stream: &mut impl Read) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut head: Vec<u8> = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf).map_err(io_err)?;
        if n == 0 {
            return Err(HttpError::Truncated("connection closed inside the header block".into()));
        }
        head.extend_from_slice(&buf[..n]);
        // Search for the terminator across the chunk boundary.
        if let Some(pos) = find_terminator(&head) {
            let body_start = head.split_off(pos + 4);
            head.truncate(pos);
            return Ok((head, body_start));
        }
        if head.len() > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse one request from the stream. `max_body` caps the body size; the
/// caller is responsible for having set a read timeout on the socket.
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    let (head, body_prefix) = read_head(stream)?;
    let head = std::str::from_utf8(&head)
        .map_err(|_| HttpError::Malformed("header block is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");

    let request_line = lines.next().ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(HttpError::HeadersTooLarge);
    }
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed(format!("bad method {method:?}")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(format!("bad request target {target:?}")));
    }
    if !(version == "HTTP/1.1" || version == "HTTP/1.0") || parts.next().is_some() {
        return Err(HttpError::Malformed(format!("bad request line {request_line:?}")));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    let mut req = Request { method, path, query, headers, body: Vec::new() };

    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::Unsupported("transfer-encoding (use Content-Length)".into()));
    }
    let content_length: usize = match req.header("content-length") {
        None => 0,
        Some(v) => {
            v.parse().map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?
        }
    };
    if content_length > max_body {
        // Declared oversize: reject before reading a single body byte, so
        // a hostile client cannot make the daemon buffer the payload.
        return Err(HttpError::BodyTooLarge { limit: max_body });
    }
    if body_prefix.len() > content_length {
        return Err(HttpError::Malformed("body longer than Content-Length".into()));
    }

    let mut body = body_prefix;
    body.reserve(content_length - body.len());
    let mut buf = [0u8; 4096];
    while body.len() < content_length {
        let want = (content_length - body.len()).min(buf.len());
        let n = stream.read(&mut buf[..want]).map_err(io_err)?;
        if n == 0 {
            return Err(HttpError::Truncated(format!(
                "connection closed after {} of {content_length} body bytes",
                body.len()
            )));
        }
        body.extend_from_slice(&buf[..n]);
    }
    req.body = body;
    Ok(req)
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After`).
    pub extra: Vec<(&'static str, String)>,
}

impl Response {
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            extra: Vec::new(),
        }
    }

    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            extra: Vec::new(),
        }
    }

    /// A `503` shed/drain response carrying `Retry-After`.
    pub fn unavailable(reason: &str, retry_after_secs: u32) -> Self {
        let mut r = Response::text(503, format!("unavailable: {reason}\n"));
        r.extra.push(("Retry-After", retry_after_secs.to_string()));
        r
    }

    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra.push((name, value.into()));
        self
    }

    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Serialize head + body. `Connection: close` is always sent — the
    /// daemon handles exactly one request per connection.
    pub fn to_bytes(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut head = String::with_capacity(128);
        let _ = write!(head, "HTTP/1.1 {} {}\r\n", self.status, self.reason());
        let _ = write!(head, "Content-Type: {}\r\n", self.content_type);
        let _ = write!(head, "Content-Length: {}\r\n", self.body.len());
        for (k, v) in &self.extra {
            let _ = write!(head, "{k}: {v}\r\n");
        }
        head.push_str("Connection: close\r\n\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Build the response for a request-side error.
pub fn error_response(e: &HttpError, retry_after_secs: u32) -> Response {
    let r = Response::text(e.status(), format!("{e}\n"));
    match e {
        // 408/413 clients may retry with a fixed body or slower link.
        HttpError::Timeout => r.with_header("Retry-After", retry_after_secs.to_string()),
        _ => r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut std::io::Cursor::new(raw.to_vec()), 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse(b"GET /campaign?hosts=4&days=2 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/campaign");
        assert_eq!(r.param("hosts"), Some("4"));
        assert_eq!(r.param_parse::<f64>("days").unwrap(), Some(2.0));
        assert_eq!(r.param("missing"), None);
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(b"POST /run HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn body_split_across_head_read_is_reassembled() {
        // The body starts in the same TCP segment as the header terminator.
        let mut raw = b"POST /run HTTP/1.1\r\nContent-Length: 3\r\n\r\nab".to_vec();
        raw.push(b'c');
        let r = parse(&raw).unwrap();
        assert_eq!(r.body, b"abc");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"FROB\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"\r\n\r\n",
        ] {
            let e = parse(raw).unwrap_err();
            assert_eq!(e.status(), 400, "{raw:?} -> {e}");
        }
    }

    #[test]
    fn rejects_bad_headers() {
        assert_eq!(parse(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse(b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse(b"GET / HTTP/1.1\r\n: x\r\n\r\n").unwrap_err().status(), 400);
    }

    #[test]
    fn truncated_requests_are_typed() {
        assert!(matches!(parse(b"GET / HT").unwrap_err(), HttpError::Truncated(_)));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err(),
            HttpError::Truncated(_)
        ));
    }

    #[test]
    fn oversized_declared_body_rejected_before_read() {
        let e = parse(b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err();
        assert!(matches!(e, HttpError::BodyTooLarge { limit: 1024 }));
        assert_eq!(e.status(), 413);
    }

    #[test]
    fn oversized_headers_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "a".repeat(20_000)).as_bytes());
        assert_eq!(parse(&raw).unwrap_err(), HttpError::HeadersTooLarge);
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..100 {
            raw.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert_eq!(parse(&raw).unwrap_err(), HttpError::HeadersTooLarge);
    }

    #[test]
    fn chunked_encoding_unsupported() {
        let e = parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), 501);
    }

    #[test]
    fn response_serializes_with_close_and_extra_headers() {
        let bytes = Response::unavailable("queue full", 3).to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 3\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("Content-Length: "), "{text}");
        assert!(text.ends_with("unavailable: queue full\n"), "{text}");
    }

    #[test]
    fn error_responses_map_statuses() {
        assert_eq!(error_response(&HttpError::Timeout, 1).status, 408);
        assert_eq!(error_response(&HttpError::MethodNotAllowed, 1).status, 405);
        assert_eq!(error_response(&HttpError::BodyTooLarge { limit: 9 }, 1).status, 413);
    }
}

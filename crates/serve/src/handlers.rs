//! Request routing and the endpoint implementations.
//!
//! Every handler returns a [`Response`]; none may panic by contract
//! (the worker additionally wraps routing in `catch_unwind`, and the
//! emulator itself runs under the supervised executor). Untrusted input
//! — query strings, XML state files — maps to typed `4xx` responses.

use crate::http::{Request, Response};
use crate::server::Shared;
use crate::wall::{retry_io, WallRetry, CHECKPOINT_RETRY};
use bce_client::{ClientConfig, DeadlineOrder, FetchPolicy, JobSchedPolicy};
use bce_controller::{
    population_campaign, population_header, population_table, run_supervised, standard_policies,
    standard_population, CampaignError, CampaignOptions, RunSpec,
};
use bce_core::{EmulatorConfig, FaultConfig, Scenario};
use bce_obs::to_jsonl;
use bce_scenarios::{builtin, load_scenario_text};
use bce_types::SimDuration;
use std::time::{Duration, Instant};

const INDEX: &str = "bce-serve: volunteer-computing emulation daemon\n\
\n\
  GET  /healthz                liveness\n\
  GET  /readyz                 readiness (503 while draining)\n\
  GET  /metrics[?format=json]  daemon metrics\n\
  GET  /trace                  typed trace of the last /run (JSONL)\n\
  POST /run?scenario=..&days=..&sched=..&fetch=..&seed=..\n\
       (or POST a JSON scenario spec or client_state.xml body)\n\
       one supervised emulation\n\
  POST /campaign?id=..&hosts=..&days=..&seed=..&threads=..\n\
       resumable population campaign; re-POST to resume after a drain\n";

/// Route one parsed request. Infallible by construction: every branch
/// produces a `Response`.
pub(crate) fn route(req: &Request, shared: &Shared) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/") => Response::text(200, INDEX),
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if shared.is_draining() {
                Response::unavailable("draining", shared.cfg.retry_after_secs)
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", "/metrics") => metrics(req, shared),
        ("GET", "/trace") => trace(shared),
        ("POST", "/run") => run(req, shared),
        ("POST", "/campaign") => campaign(req, shared),
        ("GET" | "POST", _) => Response::text(404, "no such endpoint\n"),
        _ => Response::text(405, "method not allowed\n"),
    }
}

fn metrics(req: &Request, shared: &Shared) -> Response {
    shared.set_gauge(shared.ids.uptime_seconds, shared.started.elapsed().as_secs_f64());
    let snap = shared.metrics_snapshot();
    match req.param("format") {
        Some("json") => Response::json(200, snap.to_json()),
        None | Some("text") => Response::text(200, snap.render()),
        Some(other) => Response::text(400, format!("unknown metrics format {other:?}\n")),
    }
}

fn trace(shared: &Shared) -> Response {
    let records = shared.last_trace.lock().expect("trace poisoned");
    if records.is_empty() {
        return Response::text(404, "no trace recorded yet; POST /run first\n");
    }
    Response::text(200, to_jsonl(records.iter()))
}

/// A typed-400 shortcut for parameter problems.
fn bad(msg: impl Into<String>) -> Response {
    let mut m = msg.into();
    if !m.ends_with('\n') {
        m.push('\n');
    }
    Response::text(400, m)
}

fn parse_days(req: &Request, default: f64, max_days: f64) -> Result<f64, Response> {
    let days: f64 = req.param_parse("days").map_err(bad)?.unwrap_or(default);
    if !days.is_finite() || days <= 0.0 {
        return Err(bad(format!("days must be a positive number, got {days}")));
    }
    if days > max_days {
        // 422: syntactically fine, semantically over budget.
        return Err(Response::text(
            422,
            format!("days={days} exceeds this daemon's budget of {max_days} emulated days\n"),
        ));
    }
    Ok(days)
}

fn parse_sched(name: &str) -> Result<JobSchedPolicy, Response> {
    Ok(match name {
        "wrr" => JobSchedPolicy::WRR,
        "local" => JobSchedPolicy::LOCAL,
        "global" => JobSchedPolicy::GLOBAL,
        "local-llf" => {
            JobSchedPolicy { deadline_order: DeadlineOrder::Llf, ..JobSchedPolicy::LOCAL }
        }
        "global-dd" => {
            JobSchedPolicy { deadline_order: DeadlineOrder::Density, ..JobSchedPolicy::GLOBAL }
        }
        other => return Err(bad(format!("unknown scheduling policy {other:?}"))),
    })
}

fn parse_fetch(name: &str) -> Result<FetchPolicy, Response> {
    Ok(match name {
        "orig" => FetchPolicy::Orig,
        "hysteresis" | "hyst" => FetchPolicy::Hysteresis,
        other => return Err(bad(format!("unknown fetch policy {other:?}"))),
    })
}

/// Resolve the scenario for `/run`: a named builtin via `?scenario=`, or
/// a posted body (JSON scenario spec or `client_state.xml`, sniffed by
/// the shared [`load_scenario_text`] resolver) — exactly one of the two.
/// A request with neither falls back to the daemon's configured default
/// scenario, if any. A spec body may carry a fault overlay, returned
/// alongside.
fn resolve_scenario(
    req: &Request,
    default: Option<&str>,
) -> Result<(Scenario, Option<FaultConfig>), Response> {
    let named = req.param("scenario");
    let has_body = !req.body.is_empty();
    let (mut scenario, faults) = match (named, has_body) {
        (Some(_), true) => {
            return Err(bad("give either ?scenario= or a scenario body, not both"));
        }
        (None, false) => {
            let Some(src) = default else {
                return Err(bad(
                    "give a scenario: ?scenario=scenario1..4 or POST a JSON spec / client_state.xml",
                ));
            };
            let loaded = bce_scenarios::ScenarioSource::parse(src)
                .load()
                .map_err(|e| Response::text(500, format!("default scenario broken: {e}\n")))?;
            (loaded.scenario, loaded.faults)
        }
        (Some(name), _) => match builtin(name) {
            Some(s) => (s, None),
            None => return Err(bad(format!("unknown builtin scenario {name:?}"))),
        },
        (None, true) => {
            let text = std::str::from_utf8(&req.body)
                .map_err(|_| bad("scenario body is not valid UTF-8"))?;
            let loaded = load_scenario_text(text, std::path::Path::new("posted-scenario"))
                .map_err(|e| Response::text(422, format!("scenario rejected: {e}\n")))?;
            (loaded.scenario, loaded.faults)
        }
    };
    if let Some(seed) = req.param_parse::<u64>("seed").map_err(bad)? {
        scenario.seed = seed;
    }
    // The typed validator gates every entry point; the full error list
    // (every problem at once) comes back in one response.
    scenario.validate().map_err(|e| Response::text(422, format!("invalid scenario:\n{e}\n")))?;
    Ok((scenario, faults))
}

/// `POST /run` — one supervised emulation of a validated scenario.
fn run(req: &Request, shared: &Shared) -> Response {
    let (scenario, faults) = match resolve_scenario(req, shared.cfg.default_scenario.as_deref()) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let days = match parse_days(req, 10.0, shared.cfg.max_days) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let mut client = ClientConfig::default();
    if let Some(s) = req.param("sched") {
        match parse_sched(s) {
            Ok(p) => client.sched_policy = p,
            Err(resp) => return resp,
        }
    }
    if let Some(f) = req.param("fetch") {
        match parse_fetch(f) {
            Ok(p) => client.fetch_policy = p,
            Err(resp) => return resp,
        }
    }
    let emu = EmulatorConfig {
        duration: SimDuration::from_days(days),
        trace_capacity: shared.cfg.trace_capacity,
        faults: faults.unwrap_or(FaultConfig::OFF),
        ..Default::default()
    };
    let label = scenario.name.clone();
    let spec =
        RunSpec::new(label.clone(), scenario, client).with_emulator(std::sync::Arc::new(emu));

    // The supervised executor quarantines an emulator panic into a typed
    // RunError; the worker and the daemon survive any scenario.
    let mut outcome = None;
    run_supervised(std::slice::from_ref(&spec), 1, |_, _, o| outcome = Some(o));
    match outcome {
        Some(Ok(result)) => {
            *shared.last_trace.lock().expect("trace poisoned") = result.trace.records().to_vec();
            shared.inc(shared.ids.runs_completed);
            shared.add(shared.ids.emu_rr_runs, result.perf.rr_runs);
            shared.add(shared.ids.emu_rr_frozen, result.perf.rr_frozen);
            shared.add(shared.ids.emu_flaps_coalesced, result.perf.flaps_coalesced);
            shared.add(shared.ids.emu_avail_resched_skipped, result.perf.avail_resched_skipped);
            let body = format!(
                "# run {label}: ok\n# fingerprint: {:016x}\n{result}",
                result.bit_fingerprint()
            );
            Response::text(200, body)
        }
        Some(Err(e)) => {
            shared.inc(shared.ids.panics_quarantined);
            Response::text(500, format!("run quarantined: {e}\n"))
        }
        None => Response::text(500, "executor returned no outcome\n"),
    }
}

/// Removes a campaign id from the in-flight set on scope exit, panics
/// included (the worker's `catch_unwind` still unwinds through this).
struct InFlight<'a> {
    shared: &'a Shared,
    id: String,
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.shared.campaigns_in_flight.lock().expect("in-flight set poisoned").remove(&self.id);
    }
}

fn valid_campaign_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// `POST /campaign` — a resumable population campaign.
///
/// The campaign executes in chunks of `campaign_chunk_runs` supervised
/// runs; between chunks the handler observes the wall deadline and the
/// drain flag. Each chunk ends with the campaign checkpoint persisted
/// (atomic rename, retried on the shared backoff policy), so a parked or
/// drained campaign resumes bit-identically when the same request is
/// POSTed again — to this process or a restarted one.
fn campaign(req: &Request, shared: &Shared) -> Response {
    let id = match req.param("id") {
        Some(id) if valid_campaign_id(id) => id.to_string(),
        Some(id) => return bad(format!("campaign id {id:?} must be 1-64 chars of [A-Za-z0-9_-]")),
        None => return bad("campaign needs an ?id= to name its checkpoint"),
    };
    let hosts: usize = match req.param_parse("hosts") {
        Ok(h) => h.unwrap_or(16),
        Err(e) => return bad(e),
    };
    if hosts == 0 || hosts > 4096 {
        return bad(format!("hosts={hosts} out of range 1..=4096"));
    }
    let days = match parse_days(req, 2.0, shared.cfg.max_days) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let seed: u64 = match req.param_parse("seed") {
        Ok(s) => s.unwrap_or(1),
        Err(e) => return bad(e),
    };
    let threads: usize = match req.param_parse("threads") {
        Ok(t) => t.unwrap_or(0),
        Err(e) => return bad(e),
    };
    let chunk: usize = match req.param_parse("chunk") {
        Ok(c) => c.unwrap_or(shared.cfg.campaign_chunk_runs).max(1),
        Err(e) => return bad(e),
    };
    let deadline_ms: u64 = match req.param_parse("deadline_ms") {
        Ok(d) => d.unwrap_or(shared.cfg.request_deadline.as_millis() as u64),
        Err(e) => return bad(e),
    };
    let budget = Duration::from_millis(deadline_ms).min(shared.cfg.request_deadline);

    // One executor per checkpoint file: a concurrent POST for the same id
    // is answered 409 instead of racing the resume protocol.
    {
        let mut inflight = shared.campaigns_in_flight.lock().expect("in-flight set poisoned");
        if !inflight.insert(id.clone()) {
            return Response::text(409, format!("campaign {id:?} is already running here\n"))
                .with_header("Retry-After", shared.cfg.retry_after_secs.to_string());
        }
    }
    let _guard = InFlight { shared, id: id.clone() };

    if let Err(e) =
        retry_io(CHECKPOINT_RETRY, || std::fs::create_dir_all(&shared.cfg.checkpoint_dir))
    {
        return Response::text(500, format!("cannot create checkpoint dir: {e}\n"));
    }
    let ckpt = shared.cfg.checkpoint_dir.join(format!("{id}.ckpt"));

    let scenarios = standard_population(hosts, seed);
    let policies = standard_policies();
    let emu = EmulatorConfig { duration: SimDuration::from_days(days), ..Default::default() };

    let deadline = Instant::now() + budget;
    let mut first_resumed = None;
    let report = loop {
        let opts = CampaignOptions {
            checkpoint_path: Some(ckpt.clone()),
            checkpoint_every_runs: 0,
            resume: false,
            stop_after_runs: Some(chunk),
            ..Default::default()
        };
        // Resume iff the generation store holds anything — including a
        // corrupt newest generation (the store falls back) or a legacy
        // pre-rotation file (version-sniffed).
        let store = opts.store().expect("checkpoint path was just set");
        let opts = CampaignOptions { resume: store.any_checkpoint_present(), ..opts };
        // A failed checkpoint *write* (CampaignError::Checkpoint on I/O)
        // is retried on the shared policy: the chunk re-runs from the
        // last good checkpoint — which rotation keeps several generations
        // of, so a torn newest generation still resumes. Mismatch is
        // never retried — it means the id is being reused for different
        // parameters.
        let mut retry = WallRetry::new(CHECKPOINT_RETRY);
        let chunk_report = loop {
            match population_campaign(&scenarios, &policies, &emu, threads, &opts) {
                Ok(r) => break Ok(r),
                Err(CampaignError::Mismatch(what)) => {
                    return Response::text(
                        409,
                        format!(
                            "campaign id {id:?} already holds a different study: {what}\n\
                             pick a new id or delete {}\n",
                            ckpt.display()
                        ),
                    );
                }
                Err(e @ CampaignError::Checkpoint(_)) => {
                    // The typed error names the operation and path, so
                    // the daemon log is actionable without strace.
                    eprintln!("bce-serve: campaign {id}: {e}; retrying");
                    match retry.fail() {
                        Some(delay) => std::thread::sleep(delay),
                        None => break Err(e),
                    }
                }
            }
        };
        let chunk_report = match chunk_report {
            Ok(r) => r,
            Err(e) => return Response::text(500, format!("campaign failed: {e}\n")),
        };
        shared.inc(shared.ids.campaign_chunks);
        shared.add(shared.ids.ckpt_write_failures, chunk_report.checkpoint_write_failures);
        shared.add(shared.ids.ckpt_generations_pruned, chunk_report.generations_pruned);
        if let Some(rec) = chunk_report.recovery.as_ref().filter(|r| r.recovered() || r.legacy) {
            shared.inc(shared.ids.ckpt_recoveries);
            eprintln!("bce-serve: campaign {id}: checkpoint recovery: {}", rec.describe());
        }
        if first_resumed.is_none() {
            first_resumed = Some(chunk_report.resumed_runs);
        }
        if chunk_report.completed_runs >= chunk_report.total_runs {
            break chunk_report;
        }
        if shared.is_draining() || crate::signal::termination_requested() {
            shared.inc(shared.ids.campaigns_parked);
            return parked(shared, &id, &ckpt, &chunk_report, "daemon draining");
        }
        if Instant::now() >= deadline {
            shared.inc(shared.ids.campaigns_parked);
            return parked(shared, &id, &ckpt, &chunk_report, "request deadline reached");
        }
    };

    shared.inc(shared.ids.campaigns_completed);
    let mut body = format!("# campaign {id}: complete ({} runs)\n", report.total_runs);
    if let Some(resumed) = first_resumed.filter(|&r| r > 0) {
        body.push_str(&format!(
            "# resumed: {resumed}/{} runs restored from checkpoint\n",
            report.total_runs
        ));
    }
    for e in &report.errors {
        body.push_str(&format!("# quarantined: {e}\n"));
    }
    let table = population_table(&report.outcomes).render();
    body.push_str(&format!("# fingerprint: {:016x}\n", fnv64(table.as_bytes())));
    body.push_str(&population_header(hosts, days, seed));
    body.push_str(&table);
    Response::text(200, body)
}

/// The partial-campaign response: the checkpoint is on disk, the client
/// re-POSTs the identical request to continue. `503 + Retry-After`
/// mirrors the shed contract so clients need one retry policy.
fn parked(
    shared: &Shared,
    id: &str,
    ckpt: &std::path::Path,
    report: &bce_controller::CampaignReport,
    why: &str,
) -> Response {
    Response::text(
        503,
        format!(
            "# campaign {id}: parked after {}/{} runs ({why})\n\
             # checkpoint: {}\n\
             # re-POST the same request to resume\n",
            report.completed_runs,
            report.total_runs,
            ckpt.display()
        ),
    )
    .with_header("Retry-After", shared.cfg.retry_after_secs.to_string())
}

/// FNV-1a over bytes, for the campaign table fingerprint.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

//! The bounded admission queue between the accept loop and the worker
//! pool — the daemon's explicit backpressure point.
//!
//! Admission control happens at `try_push`: when the queue is at
//! capacity (or the server is draining) the connection is *rejected
//! immediately* and handed back to the acceptor, which sheds it with
//! `503 + Retry-After`. Memory is therefore bounded at
//! `capacity × (one TcpStream + accept timestamp)` no matter how hard
//! clients hammer the listener; nothing ever queues unboundedly.
//!
//! `close()` starts the drain: `try_push` refuses all new work and `pop`
//! returns `None` once the backlog is empty, so every worker exits after
//! finishing what was already admitted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why `try_push` refused a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// At capacity: the client should retry after backing off.
    Full,
    /// Draining: the daemon is shutting down and admits nothing.
    Draining,
}

struct Inner<T> {
    items: VecDeque<(T, Instant)>,
    closed: bool,
}

/// A bounded MPMC queue of admitted connections.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit `item`, or reject it without blocking. On rejection the item
    /// is returned so the caller can still write a shed response on it.
    pub fn try_push(&self, item: T) -> Result<(), (T, Rejection)> {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        if inner.closed {
            return Err((item, Rejection::Draining));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, Rejection::Full));
        }
        inner.items.push_back((item, Instant::now()));
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until an item is available (returning it with the instant it
    /// was admitted) or the queue is closed *and* empty (returning
    /// `None`, the worker-exit signal).
    pub fn pop(&self) -> Option<(T, Instant)> {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        loop {
            if let Some(entry) = inner.items.pop_front() {
                return Some(entry);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("admission queue poisoned");
        }
    }

    /// Current backlog length (for the queue-depth gauge).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("admission queue poisoned").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stop admitting; wake every blocked worker. Already-admitted items
    /// still drain through `pop`.
    pub fn close(&self) {
        self.inner.lock().expect("admission queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_when_draining() {
        let q = AdmissionQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err((3, Rejection::Full)));
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err((4, Rejection::Draining)));
        // Admitted work still drains.
        assert_eq!(q.pop().map(|(v, _)| v), Some(1));
        assert_eq!(q.pop().map(|(v, _)| v), Some(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_blocks_until_push_and_workers_exit_on_close() {
        let q = Arc::new(AdmissionQueue::new(4));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0;
                while q.pop().is_some() {
                    got += 1;
                }
                got
            }));
        }
        for i in 0..10 {
            while q.try_push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 10, "every admitted item is processed exactly once");
    }
}

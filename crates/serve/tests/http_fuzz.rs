//! Hostile-input fuzzing for the HTTP layer: whatever bytes arrive, the
//! parser returns a typed error or a request — it never panics, never
//! over-reads, and never accepts an oversized body.

use bce_serve::{read_request, HttpError};
use proptest::prelude::*;

const VALID: &str = "POST /run?scenario=scenario2 HTTP/1.1\r\n\
                     Host: t\r\nContent-Length: 5\r\n\r\nhello";

fn byte_strategy() -> impl Strategy<Value = u8> {
    // Weighted toward HTTP-structural bytes so the fuzz reaches deep
    // parser states instead of failing on byte 0 every time.
    prop_oneof![
        Just(b'\r'),
        Just(b'\n'),
        Just(b' '),
        Just(b':'),
        Just(b'/'),
        Just(b'G'),
        Just(b'P'),
        Just(b'T'),
        Just(b'H'),
        Just(b'1'),
        Just(b'.'),
        any::<u8>(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512 })]

    /// Arbitrary byte soup: typed outcome, no panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(byte_strategy(), 0..2048)) {
        let mut cursor = bytes.as_slice();
        let _ = read_request(&mut cursor, 1 << 16);
    }

    /// Every truncation point of a valid request yields a typed error
    /// (or, past the body start, possibly a short body error) — never a
    /// panic, never a phantom success with the wrong body.
    #[test]
    fn truncations_of_a_valid_request_are_typed(cut in 0usize..44) {
        let raw = &VALID.as_bytes()[..cut.min(VALID.len() - 1)];
        let mut cursor = raw;
        match read_request(&mut cursor, 1 << 16) {
            Ok(req) => prop_assert!(false, "truncated request parsed: {req:?}"),
            Err(e) => {
                let code = e.status();
                prop_assert!((400..=599).contains(&code), "status {code} for {e}");
            }
        }
    }

    /// Declared Content-Length over the cap is refused up front with the
    /// typed 413, no matter what the rest of the request looks like.
    #[test]
    fn oversized_declared_bodies_are_rejected(extra in 1u64..u64::MAX / 2, cap in 1usize..1 << 20) {
        let declared = cap as u64 + extra.min(1 << 40);
        let raw = format!("POST /run HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let mut cursor = raw.as_bytes();
        let got = read_request(&mut cursor, cap);
        prop_assert_eq!(got, Err(HttpError::BodyTooLarge { limit: cap }));
    }

    /// Bodies shorter than their declared length are truncation errors,
    /// not hangs or panics.
    #[test]
    fn short_bodies_are_truncation_errors(missing in 1usize..5) {
        let raw = &VALID.as_bytes()[..VALID.len() - missing];
        let mut cursor = raw;
        match read_request(&mut cursor, 1 << 16) {
            Err(HttpError::Truncated(_)) => {}
            other => prop_assert!(false, "expected Truncated, got {other:?}"),
        }
    }
}

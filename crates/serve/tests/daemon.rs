//! End-to-end daemon tests over real sockets: observability endpoints,
//! load shedding under a concurrent burst, deadline parking, graceful
//! drain, and bit-identical resume across a daemon restart.

use bce_controller::{
    population_header, population_study, population_table, standard_policies, standard_population,
};
use bce_core::EmulatorConfig;
use bce_serve::{ServeConfig, ServeSummary, Server, ServerHandle};
use bce_types::SimDuration;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn test_cfg(checkpoint_dir: PathBuf) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 8,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        drain_grace: Duration::from_secs(60),
        checkpoint_dir,
        ..ServeConfig::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bce-serve-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(cfg: ServeConfig) -> (SocketAddr, ServerHandle, JoinHandle<ServeSummary>) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// Fire one raw request, read the whole response, split it into
/// (status, headers, body).
fn send(addr: SocketAddr, raw: &str) -> (u16, Vec<(String, String)>, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(600))).unwrap();
    s.write_all(raw.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8_lossy(&buf).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line.split_whitespace().nth(1).expect("code").parse().expect("code");
    let headers = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, String) {
    send(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, String) {
    send(addr, &format!("POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
}

/// The non-comment part of a campaign/population report (what the CI
/// smoke job diffs).
fn table_of(body: &str) -> String {
    body.lines().filter(|l| !l.starts_with("# ")).collect::<Vec<_>>().join("\n")
}

#[test]
fn observability_run_and_drain_end_to_end() {
    let dir = scratch_dir("obs");
    let (addr, handle, join) = start(test_cfg(dir.clone()));

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _, _) = get(addr, "/readyz");
    assert_eq!(status, 200);

    // No trace before the first run.
    let (status, _, _) = get(addr, "/trace");
    assert_eq!(status, 404);

    // One supervised run; the response carries the bit fingerprint.
    let (status, _, body) = post(addr, "/run?scenario=scenario2&days=0.5&seed=42");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("# fingerprint: "), "{body}");

    // Determinism through the full HTTP stack: same request, same bytes.
    let (_, _, again) = post(addr, "/run?scenario=scenario2&days=0.5&seed=42");
    assert_eq!(body, again);

    // The run populated /trace and the counters.
    let (status, _, trace) = get(addr, "/trace");
    assert_eq!(status, 200);
    assert!(trace.lines().count() > 0);
    let (status, _, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("serve.runs_completed"), "{metrics}");
    // Emulation perf counters accumulate into the daemon registry: two
    // runs of the same scenario ran some RR simulations.
    assert!(metrics.contains("emulation.rr_runs"), "{metrics}");
    assert!(metrics.contains("emulation.rr_frozen"), "{metrics}");
    assert!(metrics.contains("emulation.flaps_coalesced"), "{metrics}");

    // Typed 4xx for bad input, not a wedged or dead worker.
    let (status, _, _) = post(addr, "/run?scenario=nope");
    assert_eq!(status, 400);
    let (status, _, _) = post(addr, "/run?scenario=scenario2&days=1e9");
    assert_eq!(status, 422);
    let (status, _, _) = get(addr, "/nothing-here");
    assert_eq!(status, 404);
    let (status, _, _) = send(addr, "DELETE /run HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);

    // Drain: run() returns; readyz during drain is covered by the shed
    // contract (new connections are refused at admission).
    handle.drain();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.workers_abandoned, 0);
    assert!(summary.accepted >= 8);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn burst_is_shed_with_retry_after_and_admitted_work_is_uncorrupted() {
    let dir = scratch_dir("shed");
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 1, // capacity 2: one running + one queued
        ..test_cfg(dir.clone())
    };
    let (addr, handle, join) = start(cfg);

    // A burst far over capacity, all identical deterministic requests.
    let clients: Vec<_> = (0..24)
        .map(|_| std::thread::spawn(move || post(addr, "/run?scenario=scenario2&days=2&seed=9")))
        .collect();
    let results: Vec<_> = clients.into_iter().map(|c| c.join().expect("client")).collect();

    let ok: Vec<&String> =
        results.iter().filter(|(s, _, _)| *s == 200).map(|(_, _, b)| b).collect();
    let shed: Vec<_> = results.iter().filter(|(s, _, _)| *s == 503).collect();
    assert_eq!(ok.len() + shed.len(), results.len(), "only 200 or 503 may escape a burst");
    assert!(!ok.is_empty(), "at least some of the burst must be admitted");
    assert!(!shed.is_empty(), "24 clients against capacity 2 must shed");

    // Every shed response carries the retry contract; every admitted
    // response is bit-identical — overload never corrupts in-flight runs.
    for (_, headers, _) in &shed {
        assert_eq!(header(headers, "retry-after"), Some("1"));
    }
    for body in &ok {
        assert_eq!(*body, ok[0], "admitted runs must stay deterministic under shedding");
    }

    handle.drain();
    join.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_parks_on_deadline_and_resumes_bit_identically_across_restart() {
    let dir = scratch_dir("campaign");
    let cfg = ServeConfig { campaign_chunk_runs: 2, ..test_cfg(dir.clone()) };
    let (addr, handle, join) = start(cfg.clone());

    // deadline_ms=0: the budget expires at the first chunk boundary, so
    // the campaign parks deterministically with its checkpoint on disk.
    let q = "/campaign?id=study-a&hosts=4&days=0.1&seed=7&threads=1&deadline_ms=0";
    let (status, headers, body) = post(addr, q);
    assert_eq!(status, 503, "{body}");
    assert_eq!(header(&headers, "retry-after"), Some("1"));
    assert!(body.contains("parked after 2/8 runs"), "{body}");
    assert!(dir.join("study-a.ckpt.1").exists(), "park must persist the checkpoint generation");

    // Kill this daemon entirely; a fresh one (same checkpoint dir, as
    // after a restart) must finish the campaign from the checkpoint.
    handle.drain();
    join.join().expect("server thread");
    let (addr2, handle2, join2) = start(cfg);
    let (status, _, body) = post(addr2, "/campaign?id=study-a&hosts=4&days=0.1&seed=7&threads=1");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("# resumed: 2/8"), "{body}");
    assert!(body.contains("campaign study-a: complete (8 runs)"), "{body}");

    // Bit-identical to the uninterrupted study computed in-process.
    let emu = EmulatorConfig { duration: SimDuration::from_days(0.1), ..EmulatorConfig::default() };
    let outcomes = population_study(&standard_population(4, 7), &standard_policies(), &emu, 1);
    let reference =
        format!("{}{}", population_header(4, 0.1, 7), population_table(&outcomes).render());
    assert_eq!(table_of(&body), table_of(&reference));

    // Re-POSTing a finished campaign is idempotent (everything resumes).
    let (status, _, again) = post(addr2, "/campaign?id=study-a&hosts=4&days=0.1&seed=7&threads=1");
    assert_eq!(status, 200);
    assert_eq!(table_of(&again), table_of(&body));

    // Reusing the id for a different study is refused, not clobbered.
    let (status, _, body) = post(addr2, "/campaign?id=study-a&hosts=4&days=0.2&seed=7&threads=1");
    assert_eq!(status, 409, "{body}");

    handle2.drain();
    join2.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_parks_a_running_campaign_at_a_chunk_boundary() {
    let dir = scratch_dir("drain");
    let cfg = ServeConfig { campaign_chunk_runs: 1, ..test_cfg(dir.clone()) };
    let (addr, handle, join) = start(cfg);

    // 32 single-run chunks: plenty of drain-check boundaries.
    let client = std::thread::spawn(move || {
        post(addr, "/campaign?id=long&hosts=16&days=1&seed=3&threads=1")
    });
    // Wait until the campaign has provably started (first checkpoint
    // lands after chunk 1), then drain mid-flight.
    let ckpt = dir.join("long.ckpt.1");
    let waited = Instant::now();
    while !ckpt.exists() {
        assert!(waited.elapsed() < Duration::from_secs(120), "campaign never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    handle.drain();

    let (status, headers, body) = client.join().expect("client");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("daemon draining"), "{body}");
    assert!(header(&headers, "retry-after").is_some());
    let summary = join.join().expect("server thread");
    assert_eq!(summary.campaigns_parked, 1);
    assert_eq!(summary.workers_abandoned, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
